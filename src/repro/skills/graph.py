"""Skill graphs: development-time capability models.

"A skill graph is a directed acyclic graph (DAG) that consists of skill
nodes, data sink nodes, data source nodes, and dependency relations between
the nodes.  A path in this DAG, starting with a main skill and ending at a
data source or data sink, represents a chain of dependencies between
abilities." (Section IV)

Edges point from a skill to the node it depends on, so the main skill is a
root (no incoming edges) and data sources/sinks are leaves (no outgoing
edges).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

import networkx as nx


class SkillGraphError(ValueError):
    """Raised for structurally invalid skill graphs."""


class NodeKind(enum.Enum):
    """The three node kinds of a skill graph."""

    SKILL = "skill"
    DATA_SOURCE = "data_source"
    DATA_SINK = "data_sink"


@dataclass(frozen=True)
class SkillNode:
    """One node of a skill graph."""

    name: str
    kind: NodeKind
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SkillGraphError("node name must be non-empty")

    @property
    def is_skill(self) -> bool:
        return self.kind == NodeKind.SKILL

    @property
    def is_leaf_kind(self) -> bool:
        return self.kind in (NodeKind.DATA_SOURCE, NodeKind.DATA_SINK)


class SkillGraph:
    """A DAG of skills, data sources and data sinks.

    Parameters
    ----------
    main_skill:
        Name of the root skill (e.g. ``"acc_driving"``); it must be added as
        a skill node before validation.
    """

    def __init__(self, main_skill: str) -> None:
        if not main_skill:
            raise SkillGraphError("main skill name must be non-empty")
        self.main_skill = main_skill
        self._graph = nx.DiGraph()
        self._nodes: Dict[str, SkillNode] = {}

    # -- construction -------------------------------------------------------------

    def add_node(self, node: SkillNode) -> SkillNode:
        if node.name in self._nodes:
            raise SkillGraphError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        self._graph.add_node(node.name)
        return node

    def add_skill(self, name: str, description: str = "") -> SkillNode:
        return self.add_node(SkillNode(name, NodeKind.SKILL, description))

    def add_data_source(self, name: str, description: str = "") -> SkillNode:
        return self.add_node(SkillNode(name, NodeKind.DATA_SOURCE, description))

    def add_data_sink(self, name: str, description: str = "") -> SkillNode:
        return self.add_node(SkillNode(name, NodeKind.DATA_SINK, description))

    def add_dependency(self, skill: str, depends_on: str, weight: float = 1.0) -> None:
        """Declare that ``skill`` depends on ``depends_on``.

        Only skill nodes may have dependencies; data sources and sinks are
        terminal.  ``weight`` expresses the relative importance of this
        dependency for weighted propagation policies.
        """
        if skill not in self._nodes:
            raise SkillGraphError(f"unknown node {skill!r}")
        if depends_on not in self._nodes:
            raise SkillGraphError(f"unknown node {depends_on!r}")
        if not self._nodes[skill].is_skill:
            raise SkillGraphError(
                f"{skill!r} is a {self._nodes[skill].kind.value} and cannot have dependencies")
        if skill == depends_on:
            raise SkillGraphError(f"node {skill!r} cannot depend on itself")
        if weight <= 0:
            raise SkillGraphError("dependency weight must be positive")
        self._graph.add_edge(skill, depends_on, weight=weight)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(skill, depends_on)
            raise SkillGraphError(
                f"adding dependency {skill!r} -> {depends_on!r} would create a cycle")

    # -- accessors --------------------------------------------------------------------

    def node(self, name: str) -> SkillNode:
        try:
            return self._nodes[name]
        except KeyError as exc:
            raise SkillGraphError(f"unknown node {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def nodes(self) -> List[SkillNode]:
        return list(self._nodes.values())

    def skills(self) -> List[SkillNode]:
        return [n for n in self._nodes.values() if n.kind == NodeKind.SKILL]

    def data_sources(self) -> List[SkillNode]:
        return [n for n in self._nodes.values() if n.kind == NodeKind.DATA_SOURCE]

    def data_sinks(self) -> List[SkillNode]:
        return [n for n in self._nodes.values() if n.kind == NodeKind.DATA_SINK]

    def dependencies_of(self, name: str) -> List[str]:
        """Direct dependencies (children) of a node."""
        if name not in self._nodes:
            raise SkillGraphError(f"unknown node {name!r}")
        return sorted(self._graph.successors(name))

    def dependents_of(self, name: str) -> List[str]:
        """Direct dependents (parents) of a node."""
        if name not in self._nodes:
            raise SkillGraphError(f"unknown node {name!r}")
        return sorted(self._graph.predecessors(name))

    def dependency_weight(self, skill: str, depends_on: str) -> float:
        try:
            return self._graph.edges[skill, depends_on]["weight"]
        except KeyError as exc:
            raise SkillGraphError(f"no dependency {skill!r} -> {depends_on!r}") from exc

    def transitive_dependencies(self, name: str) -> Set[str]:
        if name not in self._nodes:
            raise SkillGraphError(f"unknown node {name!r}")
        return set(nx.descendants(self._graph, name))

    def transitive_dependents(self, name: str) -> Set[str]:
        if name not in self._nodes:
            raise SkillGraphError(f"unknown node {name!r}")
        return set(nx.ancestors(self._graph, name))

    def paths_from_main(self) -> List[List[str]]:
        """All dependency chains from the main skill to a data source/sink."""
        leaves = [n.name for n in self.nodes() if n.is_leaf_kind]
        paths: List[List[str]] = []
        for leaf in leaves:
            for path in nx.all_simple_paths(self._graph, self.main_skill, leaf):
                paths.append(list(path))
        return sorted(paths)

    def topological_order(self) -> List[str]:
        """Nodes ordered so that every node appears after its dependents
        (i.e. leaves first, main skill last) — the evaluation order for
        bottom-up performance propagation."""
        return list(reversed(list(nx.topological_sort(self._graph))))

    # -- validation --------------------------------------------------------------------

    def validate(self) -> List[str]:
        """Return the list of structural problems (empty when well-formed).

        Checks: main skill present and a skill node; graph acyclic; every
        skill has at least one dependency; every non-main node is reachable
        from the main skill; data sources/sinks have no outgoing edges.
        """
        problems: List[str] = []
        if self.main_skill not in self._nodes:
            problems.append(f"main skill {self.main_skill!r} is not part of the graph")
            return problems
        if not self._nodes[self.main_skill].is_skill:
            problems.append(f"main skill {self.main_skill!r} is not a skill node")
        if not nx.is_directed_acyclic_graph(self._graph):
            problems.append("graph contains a cycle")
        for node in self._nodes.values():
            out_degree = self._graph.out_degree(node.name)
            if node.is_skill and out_degree == 0:
                problems.append(f"skill {node.name!r} has no dependencies "
                                "(should be refined to data sources/sinks)")
            if node.is_leaf_kind and out_degree > 0:
                problems.append(f"{node.kind.value} {node.name!r} must not have dependencies")
        reachable = set(nx.descendants(self._graph, self.main_skill)) | {self.main_skill}
        for name in self._nodes:
            if name not in reachable:
                problems.append(f"node {name!r} is not reachable from the main skill")
        return problems

    def is_valid(self) -> bool:
        return not self.validate()

    def to_networkx(self) -> nx.DiGraph:
        graph = self._graph.copy()
        for name, node in self._nodes.items():
            graph.nodes[name]["kind"] = node.kind.value
            graph.nodes[name]["description"] = node.description
        return graph
