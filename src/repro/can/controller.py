"""Conventional (stand-alone) CAN controller model — the "protocol layer".

This is the baseline against which the virtualized controller is compared:
a controller owned by a single host with prioritized transmit buffers,
acceptance filtering, and a receive FIFO.  Host-side access latencies
(register write for TX, interrupt + register read for RX) are modelled so
that the round-trip benchmark can report the *added* latency of the
virtualization wrapper, which is the paper's headline number (7–11 µs).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.can.frame import CanFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


@dataclass
class TxRequest:
    """A frame queued for transmission together with bookkeeping times."""

    frame: CanFrame
    enqueue_time: float
    start_time: Optional[float] = None
    complete_time: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.complete_time is None:
            return None
        return self.complete_time - self.enqueue_time


@dataclass
class RxMessage:
    """A received frame with delivery bookkeeping."""

    frame: CanFrame
    bus_time: float
    delivery_time: float

    @property
    def delivery_latency(self) -> float:
        return self.delivery_time - self.bus_time


@dataclass(frozen=True)
class AcceptanceFilter:
    """Classic mask/match acceptance filter: accept if (id & mask) == (match & mask)."""

    match: int
    mask: int

    def accepts(self, can_id: int) -> bool:
        return (can_id & self.mask) == (self.match & self.mask)

    @classmethod
    def accept_all(cls) -> "AcceptanceFilter":
        return cls(match=0, mask=0)

    @classmethod
    def exact(cls, can_id: int) -> "AcceptanceFilter":
        return cls(match=can_id, mask=0x1FFF_FFFF)


class CanController:
    """A stand-alone CAN controller attached to one host.

    Parameters
    ----------
    sim:
        Discrete-event simulator.
    name:
        Node name (used as frame source).
    tx_access_latency:
        Host-side latency to place a frame into the controller's TX mailbox
        (register writes across the peripheral bus).
    rx_access_latency:
        Host-side latency from end-of-frame on the bus to the frame being
        available to the application (interrupt + register reads).
    tx_queue_depth:
        Number of TX mailboxes; enqueueing beyond this drops the frame and
        counts an overflow (real controllers signal an error).
    """

    def __init__(self, sim: Simulator, name: str,
                 tx_access_latency: float = 1.0e-6,
                 rx_access_latency: float = 1.5e-6,
                 tx_queue_depth: int = 32,
                 rx_queue_depth: int = 64,
                 filters: Optional[List[AcceptanceFilter]] = None,
                 recorder: Optional[TraceRecorder] = None) -> None:
        if tx_access_latency < 0 or rx_access_latency < 0:
            raise ValueError("access latencies must be non-negative")
        if tx_queue_depth <= 0 or rx_queue_depth <= 0:
            raise ValueError("queue depths must be positive")
        self.sim = sim
        self.name = name
        self.tx_access_latency = tx_access_latency
        self.rx_access_latency = rx_access_latency
        self.tx_queue_depth = tx_queue_depth
        self.rx_queue_depth = rx_queue_depth
        self.filters = filters if filters is not None else [AcceptanceFilter.accept_all()]
        self.recorder = recorder or TraceRecorder()
        self.bus = None  # set by CanBus.attach
        self.rx_callback: Optional[Callable[[RxMessage], None]] = None

        self._tx_heap: List[Tuple[Tuple[int, int], int, TxRequest]] = []
        self._tx_counter = itertools.count()
        #: Frames accepted for transmission and not yet handed to the bus
        #: (includes frames still traversing the host access latency), used
        #: for mailbox-overflow accounting.
        self._queued = 0
        self.sent: List[TxRequest] = []
        self.received: List[RxMessage] = []
        self.tx_overflows = 0
        self.rx_overflows = 0

    # -- host-facing API ----------------------------------------------------------------

    def send(self, frame: CanFrame) -> Optional[TxRequest]:
        """Host requests transmission of a frame.

        The frame becomes visible to bus arbitration after the TX access
        latency.  Returns the TX request, or ``None`` if the mailbox
        overflowed.
        """
        if self._queued >= self.tx_queue_depth:
            self.tx_overflows += 1
            self.recorder.record(self.sim.now, "can.tx_overflow", self.name, can_id=frame.can_id)
            return None
        stamped = frame.with_source(frame.source or self.name).with_timestamp(self.sim.now)
        request = TxRequest(frame=stamped, enqueue_time=self.sim.now)
        self._queued += 1
        delay = self.tx_access_latency

        def make_visible(sim: Simulator) -> None:
            heapq.heappush(self._tx_heap,
                           (stamped.arbitration_key(), next(self._tx_counter), request))
            request.start_time = sim.now
            if self.bus is not None:
                self.bus.notify_pending()

        self.sim.schedule_in(delay, make_visible, name=f"{self.name}.tx_visible")
        return request

    def pending_tx(self) -> int:
        return len(self._tx_heap)

    # -- bus-facing API -------------------------------------------------------------------

    def peek_tx(self) -> Optional[CanFrame]:
        """Highest-priority frame waiting in the TX mailboxes (for arbitration)."""
        if not self._tx_heap:
            return None
        return self._tx_heap[0][2].frame

    def pop_tx(self) -> Optional[CanFrame]:
        if not self._tx_heap:
            return None
        _, _, request = heapq.heappop(self._tx_heap)
        self._in_flight = request
        self._queued = max(0, self._queued - 1)
        return request.frame

    def on_transmit_complete(self, frame: CanFrame, time: float) -> None:
        request = getattr(self, "_in_flight", None)
        if request is not None and request.frame is frame:
            request.complete_time = time
            self.sent.append(request)
            self._in_flight = None
        self.recorder.record(time, "can.node_tx_done", self.name, can_id=frame.can_id)

    def accepts(self, frame: CanFrame) -> bool:
        return any(f.accepts(frame.can_id) for f in self.filters)

    def on_bus_receive(self, frame: CanFrame, time: float) -> None:
        """Called by the bus at end of frame; applies acceptance filtering and
        models the host-side delivery latency."""
        if not self.accepts(frame):
            return
        if len(self.received) >= self.rx_queue_depth and self.rx_callback is None:
            self.rx_overflows += 1
            self.recorder.record(time, "can.rx_overflow", self.name, can_id=frame.can_id)
            return

        def deliver(sim: Simulator) -> None:
            message = RxMessage(frame=frame, bus_time=time, delivery_time=sim.now)
            self.received.append(message)
            self.recorder.record(sim.now, "can.rx_deliver", self.name,
                                 can_id=frame.can_id, sender=frame.source,
                                 latency=message.delivery_latency)
            if self.rx_callback is not None:
                self.rx_callback(message)

        self.sim.schedule_in(self.rx_access_latency, deliver, name=f"{self.name}.rx_deliver")

    # -- statistics -------------------------------------------------------------------------

    def tx_latencies(self) -> List[float]:
        return [r.latency for r in self.sent if r.latency is not None]

    def rx_latencies(self) -> List[float]:
        return [m.delivery_latency for m in self.received]

    def drain_received(self) -> List[RxMessage]:
        messages = list(self.received)
        self.received.clear()
        return messages
