"""Scenario: security leak in the rear-braking component (Section V, E5).

"We assume a security flaw in the software component governing rear braking.
The only viable option for the system is often to shut down the affected
component, however, this can happen in two fundamentally different ways."

The scenario runs the integrated self-aware vehicle, injects the compromise
at a configurable time and measures, per arbitration policy, whether the
vehicle stays operational, what speed it can keep, how quickly the problem
is mitigated and which layers took part in the resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.arbitration import ArbitrationPolicy
from repro.core.vehicle_system import SelfAwareVehicle, VehicleSystemConfig


@dataclass
class IntrusionScenarioResult:
    """Metrics of one intrusion scenario run."""

    policy: ArbitrationPolicy
    detection_delay_s: Optional[float]
    time_to_mitigation_s: Optional[float]
    vehicle_stopped: bool
    safe_stop_requested: bool
    final_speed_mps: float
    average_speed_after_attack_mps: float
    minimum_gap_m: Optional[float]
    braking_capability_after: float
    root_ability_after: float
    resolutions_by_layer: Dict[str, int] = field(default_factory=dict)
    events: List[str] = field(default_factory=list)

    @property
    def fail_operational(self) -> bool:
        """The vehicle kept driving (no full stop) after the attack."""
        return not self.vehicle_stopped

    @property
    def cross_layer_layers_involved(self) -> int:
        return len(self.resolutions_by_layer)


def run_intrusion_scenario(policy: ArbitrationPolicy = ArbitrationPolicy.LOWEST_ADEQUATE,
                           attack_time_s: float = 5.0,
                           duration_s: float = 40.0,
                           seed: int = 0) -> IntrusionScenarioResult:
    """Run the rear-brake intrusion scenario under the given arbitration policy.

    Parameters
    ----------
    policy:
        ``LOWEST_ADEQUATE`` is the paper's cross-layer approach;
        ``ALWAYS_ESCALATE`` models the single-layer strawman that stops the
        vehicle for every critical problem; ``LOCAL_ONLY`` confines reactions
        to the observing layer.
    attack_time_s:
        When the compromise of the rear-brake component becomes visible.
    duration_s:
        Total simulated driving time.
    """
    if attack_time_s < 0 or duration_s <= attack_time_s:
        raise ValueError("need 0 <= attack_time < duration")
    config = VehicleSystemConfig(seed=seed, arbitration_policy=policy)
    vehicle = SelfAwareVehicle(config)

    vehicle.run(attack_time_s)
    vehicle.inject_rear_brake_compromise()

    speeds_after: List[float] = []
    steps_remaining = int(round((duration_s - attack_time_s) / config.control_period_s))
    for _ in range(steps_remaining):
        vehicle.step()
        speeds_after.append(vehicle.speed_mps)

    detection_time = vehicle.ids.detection_time("brake_controller")
    detection_delay = (detection_time - attack_time_s) if detection_time is not None else None
    time_to_mitigation = vehicle.awareness.time_to_mitigation("brake_controller", attack_time_s)

    return IntrusionScenarioResult(
        policy=policy,
        detection_delay_s=detection_delay,
        time_to_mitigation_s=time_to_mitigation,
        vehicle_stopped=vehicle.stopped,
        safe_stop_requested=vehicle.safe_stop_requested,
        final_speed_mps=vehicle.speed_mps,
        average_speed_after_attack_mps=(sum(speeds_after) / len(speeds_after)
                                        if speeds_after else 0.0),
        minimum_gap_m=vehicle.minimum_gap_m(),
        braking_capability_after=vehicle.dynamics.braking_capability_ratio(),
        root_ability_after=vehicle.root_ability_score(),
        resolutions_by_layer={layer.name.lower(): count for layer, count
                              in vehicle.coordinator.resolutions_by_layer().items()},
        events=vehicle.event_log())


def compare_policies(attack_time_s: float = 5.0, duration_s: float = 40.0,
                     seed: int = 0) -> Dict[str, IntrusionScenarioResult]:
    """Run the scenario under all three arbitration policies (E5's table)."""
    return {policy.value: run_intrusion_scenario(policy, attack_time_s, duration_s, seed)
            for policy in (ArbitrationPolicy.LOWEST_ADEQUATE,
                           ArbitrationPolicy.LOCAL_ONLY,
                           ArbitrationPolicy.ALWAYS_ESCALATE)}
