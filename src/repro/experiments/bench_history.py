"""Tabulation of the machine-readable benchmark records.

Every benchmark writes a ``BENCH_<name>.json`` record (see
``benchmarks/conftest.py``) so the performance trajectory — speedups, wall
times, engine counters — survives outside CI logs.  This module loads a
directory of those records and renders them as one table per run:

``python -m repro.experiments bench-history [--dir benchmarks/records]``

It is also the CI regression gate: with ``--baseline <dir>`` the current
records are compared against a baseline set (typically the committed
records of the previous PR) and ``--fail-on-regression`` exits non-zero
when any headline speedup dropped more than ``--tolerance`` (default 30%)
below its baseline — a perf regression then fails loud instead of scrolling
past in a log.  Only records of the same ``(name, mode)`` are compared:
quick-mode smoke records (``BENCH_<name>.quick.json``) never gate against
full-fidelity runs, whose grids and absolute numbers are incomparable.

Corrupt or foreign JSON files are skipped (reported, not fatal): the
records directory accumulates across branches and interrupted runs, and a
history tool that dies on the first bad file is useless exactly when the
history is interesting.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Tuple

#: Payload keys promoted to their own table column when present.
HEADLINE_KEYS = ("speedup", "speedup_vs_pr1", "admission_speedup")

#: Absolute-throughput payload keys (e.g. the E17 service's sustained
#: admissions/sec).  They join the :func:`bench_trajectory` series so the
#: dashboard can chart them, but they never join the regression gate:
#: unlike the headline *ratios*, absolute throughput is machine-dependent,
#: and gating it would fail every PR that runs on a slower CI runner.
THROUGHPUT_KEYS = ("admissions_per_s",)


def load_bench_records(directory: str) -> Tuple[List[Dict[str, Any]], List[str]]:
    """Load every ``BENCH_*.json`` under ``directory``.

    Returns ``(records, skipped)``: parsed record documents sorted by name,
    and the file names that could not be parsed (corrupt JSON, non-dict
    top level, or a missing ``name``/``payload`` envelope).
    """
    records: List[Dict[str, Any]] = []
    skipped: List[str] = []
    for path in sorted(Path(directory).glob("BENCH_*.json")):
        # (BENCH_x.quick.json matches the same glob — both modes load.)
        try:
            with path.open("r", encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            skipped.append(path.name)
            continue
        if (not isinstance(document, dict) or "name" not in document
                or not isinstance(document.get("payload"), dict)):
            skipped.append(path.name)
            continue
        records.append(document)
    records.sort(key=lambda document: str(document["name"]))
    return records, skipped


def bench_history_rows(records: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """One table row per record: identity, provenance, headline speedup and
    a compact rendering of the remaining numeric payload metrics."""
    rows: List[Dict[str, Any]] = []
    for document in records:
        payload = document["payload"]
        headline = next((payload[key] for key in HEADLINE_KEYS
                         if isinstance(payload.get(key), (int, float))), None)
        metrics = "  ".join(
            f"{key}={value:.4g}" if isinstance(value, float) else f"{key}={value}"
            for key, value in sorted(payload.items())
            if key not in HEADLINE_KEYS
            and isinstance(value, (int, float)) and not isinstance(value, bool))
        rows.append({
            "bench": document["name"],
            "created_utc": document.get("created_utc", "?"),
            "quick": bool(document.get("quick_mode", False)),
            "speedup": "-" if headline is None else f"{headline:.2f}x",
            "metrics": metrics or "-",
        })
    return rows


def record_mode(document: Dict[str, Any]) -> str:
    """Fidelity mode of one record: ``"quick"`` (CI smoke) or ``"full"``.

    New records carry an explicit ``mode`` field; older ones predate it and
    are classified by their ``quick_mode`` flag.
    """
    mode = document.get("mode")
    if isinstance(mode, str):
        return mode
    return "quick" if document.get("quick_mode") else "full"


def bench_trajectory(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Machine-readable headline trajectory, grouped by ``(bench, mode)``.

    The table printed by ``bench-history`` is for humans; this document
    (written by ``bench-history --json``) is for tooling — the fleet
    dashboard's speedup-trajectory chart and any external tracker.  One
    series per benchmark-and-fidelity pair, so quick smoke numbers never
    blend into a full-fidelity trend; points are ordered by ``created_utc``
    (records carry UTC ISO timestamps, which sort lexicographically).
    Both metric tiers plot — the :data:`HEADLINE_KEYS` speedup ratios and
    the :data:`THROUGHPUT_KEYS` absolute rates (the latter charted but
    never regression-gated).  Records without a numeric metric from either
    tier contribute no point but are still listed under ``"unplotted"`` so
    a trajectory consumer can tell "no data" from "dropped data".
    """
    series: Dict[Tuple[str, str], Dict[str, Any]] = {}
    unplotted: List[str] = []
    for document in records:
        name, mode = str(document["name"]), record_mode(document)
        payload = document["payload"]
        headline = next(
            (key for key in HEADLINE_KEYS + THROUGHPUT_KEYS
             if isinstance(payload.get(key), (int, float))
             and not isinstance(payload.get(key), bool)), None)
        if headline is None:
            unplotted.append(f"{name}[{mode}]")
            continue
        entry = series.setdefault((name, mode),
                                  {"bench": name, "mode": mode, "points": []})
        entry["points"].append({
            "created_utc": str(document.get("created_utc", "")),
            "metric": headline,
            "value": float(payload[headline]),
        })
    for entry in series.values():
        entry["points"].sort(key=lambda point: point["created_utc"])
    return {
        "schema": 1,
        "series": [series[key] for key in sorted(series)],
        "unplotted": sorted(unplotted),
    }


def compare_bench_records(current: List[Dict[str, Any]],
                          baseline: List[Dict[str, Any]],
                          tolerance: float = 0.3) -> List[Dict[str, Any]]:
    """Headline-metric regressions of ``current`` against ``baseline``.

    Records pair up on ``(name, mode)`` — quick smoke records gate against
    quick baselines, full records against full; unpaired records on either
    side are ignored (a new benchmark has no baseline yet, a retired one no
    current run).  For every :data:`HEADLINE_KEYS` metric present and
    numeric on both sides, a drop of more than ``tolerance`` (relative,
    e.g. ``0.3`` = 30%) below the baseline value is reported.  Higher is
    better for every headline metric (they are all speedups), so only
    drops regress.  Returns one dict per regression — empty means the gate
    passes.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError("tolerance must be in [0, 1)")
    baselines = {(str(document["name"]), record_mode(document)): document
                 for document in baseline}
    regressions: List[Dict[str, Any]] = []
    for document in current:
        reference = baselines.get((str(document["name"]), record_mode(document)))
        if reference is None:
            continue
        payload, reference_payload = document["payload"], reference["payload"]
        for key in HEADLINE_KEYS:
            value, expected = payload.get(key), reference_payload.get(key)
            if not isinstance(value, (int, float)) \
                    or not isinstance(expected, (int, float)) \
                    or isinstance(value, bool) or isinstance(expected, bool):
                continue
            if value < expected * (1.0 - tolerance):
                regressions.append({
                    "bench": str(document["name"]),
                    "mode": record_mode(document),
                    "metric": key,
                    "baseline": float(expected),
                    "current": float(value),
                    "drop": 1.0 - (value / expected if expected else 0.0),
                })
    return regressions


__all__ = ["HEADLINE_KEYS", "THROUGHPUT_KEYS", "bench_history_rows",
           "bench_trajectory", "compare_bench_records", "load_bench_records",
           "record_mode"]
