"""Tests for the benchmark perf-record history tool (`bench-history`)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.bench_history import bench_history_rows, load_bench_records
from repro.experiments.cli import main


def _write_record(directory, name, payload, quick=False, **extra):
    document = {"name": name, "created_utc": "2026-08-08T12:00:00Z",
                "python": "3.x", "platform": "test", "quick_mode": quick,
                "payload": payload}
    document.update(extra)
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(document), encoding="utf-8")
    return path


@pytest.fixture
def records_dir(tmp_path):
    _write_record(tmp_path, "e12_batch_kernel",
                  {"lanes": 800, "tasks_per_lane": 16, "numpy": True,
                   "scalar_s": 0.30, "batch_s": 0.05, "speedup": 6.0})
    _write_record(tmp_path, "e9_incremental_speedup",
                  {"task_sets": 66, "pr1_baseline_s": 1.2, "incremental_s": 0.2,
                   "speedup_vs_pr1": 6.0, "reuse_rate": 0.8}, quick=True)
    _write_record(tmp_path, "e12_pure_path",
                  {"lanes": 80, "pure_python_s": 0.02, "groups_solved": 2})
    return tmp_path


class TestLoadBenchRecords:
    def test_loads_and_sorts_by_name(self, records_dir):
        records, skipped = load_bench_records(str(records_dir))
        assert [r["name"] for r in records] == [
            "e12_batch_kernel", "e12_pure_path", "e9_incremental_speedup"]
        assert skipped == []

    def test_corrupt_and_foreign_files_are_skipped_not_fatal(self, records_dir):
        (records_dir / "BENCH_broken.json").write_text("{not json", encoding="utf-8")
        (records_dir / "BENCH_list.json").write_text("[1, 2]", encoding="utf-8")
        (records_dir / "BENCH_noenvelope.json").write_text(
            json.dumps({"speedup": 2.0}), encoding="utf-8")
        (records_dir / "unrelated.json").write_text("0", encoding="utf-8")
        records, skipped = load_bench_records(str(records_dir))
        assert len(records) == 3
        assert sorted(skipped) == ["BENCH_broken.json", "BENCH_list.json",
                                   "BENCH_noenvelope.json"]

    def test_empty_directory(self, tmp_path):
        assert load_bench_records(str(tmp_path)) == ([], [])


class TestBenchHistoryRows:
    def test_headline_speedup_is_promoted(self, records_dir):
        records, _ = load_bench_records(str(records_dir))
        rows = bench_history_rows(records)
        by_bench = {row["bench"]: row for row in rows}
        assert by_bench["e12_batch_kernel"]["speedup"] == "6.00x"
        assert by_bench["e9_incremental_speedup"]["speedup"] == "6.00x"
        assert by_bench["e12_pure_path"]["speedup"] == "-"

    def test_rows_carry_provenance_and_metrics(self, records_dir):
        records, _ = load_bench_records(str(records_dir))
        rows = bench_history_rows(records)
        by_bench = {row["bench"]: row for row in rows}
        assert by_bench["e9_incremental_speedup"]["quick"] is True
        assert by_bench["e12_batch_kernel"]["quick"] is False
        assert "lanes=800" in by_bench["e12_batch_kernel"]["metrics"]
        assert "batch_s=0.05" in by_bench["e12_batch_kernel"]["metrics"]
        # The headline key stays out of the catch-all metrics column.
        assert "speedup=" not in by_bench["e12_batch_kernel"]["metrics"]

    def test_booleans_are_not_mistaken_for_metrics(self, records_dir):
        records, _ = load_bench_records(str(records_dir))
        row = next(r for r in bench_history_rows(records)
                   if r["bench"] == "e12_batch_kernel")
        assert "numpy=" not in row["metrics"]


class TestCli:
    def test_bench_history_command(self, records_dir, capsys):
        assert main(["bench-history", "--dir", str(records_dir)]) == 0
        out = capsys.readouterr().out
        assert "e12_batch_kernel" in out
        assert "6.00x" in out

    def test_bench_history_warns_on_corrupt_records(self, records_dir, capsys):
        (records_dir / "BENCH_broken.json").write_text("{", encoding="utf-8")
        assert main(["bench-history", "--dir", str(records_dir)]) == 0
        captured = capsys.readouterr()
        assert "BENCH_broken.json" in captured.err
        assert "e12_pure_path" in captured.out

    def test_bench_history_missing_directory(self, tmp_path, capsys):
        assert main(["bench-history", "--dir", str(tmp_path / "nope")]) == 2
        assert "not a directory" in capsys.readouterr().err

    def test_bench_history_empty_directory(self, tmp_path, capsys):
        assert main(["bench-history", "--dir", str(tmp_path)]) == 0
        assert "no BENCH_*.json records" in capsys.readouterr().out
