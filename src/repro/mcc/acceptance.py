"""Viewpoint acceptance tests run by the MCC.

"Viewpoint-specific analyses can be implemented as separate entities in the
MCC ... This process is assisted by formal analyses that a) can guide the
(mapping) decisions and b) work as acceptance tests." (Section II.A)

Each acceptance test wraps one of the analyses from :mod:`repro.analysis`
behind a uniform interface so the integration process can run them all and
collect a per-viewpoint verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.compositional import (CanAnalysisError, CauseEffectChain,
                                          FrameSpec, SystemAnalysis,
                                          SystemAnalysisResult,
                                          SystemConfigurationError)
from repro.analysis.compositional import SystemModel as AnalysisSystemModel
from repro.analysis.cpa import ResponseTimeAnalysis
from repro.analysis.incremental import IncrementalResponseTimeAnalysis
from repro.analysis.safety import SafetyAnalysis
from repro.analysis.threat import ThreatModel
from repro.contracts.model import Contract
from repro.platform.resources import Platform, ResourceError
from repro.platform.tasks import Task, TaskSet


@dataclass
class AcceptanceResult:
    """The verdict of one acceptance test."""

    viewpoint: str
    passed: bool
    findings: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.passed


class AcceptanceTest(Protocol):
    """Interface of an MCC acceptance test."""

    viewpoint: str

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate a candidate configuration."""
        ...  # pragma: no cover - protocol


def tasksets_from_mapping(contracts: List[Contract], mapping: Dict[str, str],
                          priorities: Dict[str, int]) -> Dict[str, TaskSet]:
    """Build per-processor task sets from a candidate configuration.

    This is exactly the derivation the timing acceptance test performs, so
    callers that want to *prefetch* analyses (e.g. batched fleet-wave
    admission) can compute the same task sets — and therefore the same cache
    fingerprints — ahead of the acceptance run.
    """
    tasksets: Dict[str, TaskSet] = {}
    for contract in contracts:
        timing = contract.timing
        if timing is None:
            continue
        processor = mapping.get(contract.component)
        if processor is None:
            continue
        task_name = f"{contract.component}.task"
        task = Task.from_requirement(task_name, timing,
                                     priority=priorities.get(task_name, 0),
                                     component=contract.component,
                                     criticality=contract.asil.name)
        tasksets.setdefault(processor, TaskSet()).add(task)
    return tasksets


class TimingAcceptanceTest:
    """Worst-case response-time analysis of every processor.

    When given an :class:`~repro.analysis.cache.AnalysisCache`, the per-
    processor busy-window analyses are memoized on the task-set fingerprint:
    in a change campaign only the processor whose task set actually changed
    is re-analysed, the others are answered from the cache.  Without a
    cache, a private :class:`IncrementalResponseTimeAnalysis` engine still
    carries busy-window state across change requests, so the changed
    processor itself is only re-analysed below the priority of its delta.
    """

    viewpoint = "timing"

    def __init__(self, speed_factor: float = 1.0,
                 cache: Optional[AnalysisCache] = None) -> None:
        self.speed_factor = speed_factor
        self.cache = cache
        self._engine = IncrementalResponseTimeAnalysis() if cache is None else None

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the timing viewpoint of a candidate configuration."""
        findings: List[str] = []
        metrics: Dict[str, float] = {}
        tasksets = tasksets_from_mapping(contracts, mapping, priorities)
        for processor_name, taskset in sorted(tasksets.items()):
            analysis = ResponseTimeAnalysis(taskset, speed_factor=self.speed_factor)
            metrics[f"{processor_name}.utilization"] = analysis.utilization()
            if self.cache is not None:
                results = self.cache.analyse(taskset, speed_factor=self.speed_factor)
            else:
                results = self._engine.analyse(taskset, speed_factor=self.speed_factor)
            for task_name, result in results.items():
                if result.wcrt is not None:
                    metrics[f"{task_name}.wcrt"] = result.wcrt
                if not result.schedulable:
                    wcrt = f"{result.wcrt:.4f}s" if result.wcrt is not None else "unbounded"
                    findings.append(
                        f"{task_name} on {processor_name}: WCRT {wcrt} exceeds "
                        f"deadline {result.task.deadline:.4f}s")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not findings,
                                findings=findings, metrics=metrics)


@dataclass(frozen=True)
class MessageSpec:
    """One CAN message stream of the distributed wiring.

    ``sender``/``receiver`` are component names; the frame's activation rate
    is the sender's contract period, its identifier decides bus arbitration.
    The message is *active* only while both endpoints are deployed and
    mapped — a partially deployed chain simply is not checked yet.
    """

    name: str
    sender: str
    receiver: str
    can_id: int
    dlc: int = 8
    bus: str = "can0"
    extended: bool = False


@dataclass(frozen=True)
class DistributedChainSpec:
    """An end-to-end deadline over a chain of components and messages.

    ``stages`` interleaves component names and :class:`MessageSpec` names
    (e.g. ``("sensor", "sensor_data", "control", "actuator")``); consecutive
    component stages are treated as a direct activation dependency on their
    processors.  ``deadline`` bounds the latency from the first stage's
    activation to the last stage's completion.
    """

    name: str
    stages: Tuple[str, ...]
    deadline: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "stages", tuple(self.stages))
        if not self.stages:
            raise ValueError(f"chain {self.name!r}: stages must not be empty")
        if self.deadline <= 0:
            raise ValueError(f"chain {self.name!r}: deadline must be positive")


class DistributedTimingAcceptanceTest:
    """System-level timing viewpoint: CPUs, buses and end-to-end deadlines.

    Where :class:`TimingAcceptanceTest` checks every processor in isolation,
    this test builds a compositional system model from the candidate
    configuration — per-processor task sets, CAN segments carrying the
    declared :class:`MessageSpec` streams (plus any background frames), and
    the activation links between them — runs the event-model propagation
    fixpoint of :class:`~repro.analysis.compositional.SystemAnalysis`, and
    verdicts a) per-item schedulability *under propagated jitter* and b) the
    jitter-aware latency of every active :class:`DistributedChainSpec`
    against its end-to-end deadline.  An update that keeps every ECU locally
    schedulable can therefore still be rejected for breaking a distributed
    cause-effect deadline — the case the per-processor test cannot see.

    One :class:`SystemAnalysis` instance (optionally backed by a shared
    :class:`AnalysisCache`) is reused across change requests, so acceptance
    sweeps benefit from memoized/incrementally re-derived busy windows.
    """

    viewpoint = "distributed-timing"

    def __init__(self, messages: Sequence[MessageSpec],
                 chains: Sequence[DistributedChainSpec] = (),
                 background_frames: Optional[Mapping[str, Sequence[FrameSpec]]] = None,
                 speed_factor: float = 1.0,
                 cache: Optional[AnalysisCache] = None,
                 max_iterations: int = 64) -> None:
        self.messages = list(messages)
        self.chains = list(chains)
        self._validate_messages()
        self._validate_chain_stages()
        self.background_frames = {bus: list(frames)
                                  for bus, frames in (background_frames or {}).items()}
        self.speed_factor = speed_factor
        self.analysis = SystemAnalysis(cache=cache, max_iterations=max_iterations)
        #: The most recent fixpoint result, for scenario/report introspection.
        self.last_result: Optional[SystemAnalysisResult] = None
        #: Chain name -> jitter-aware latency of the last evaluated candidate
        #: (``None`` while a chain is partially deployed or unbounded).
        self.last_chain_latencies: Dict[str, Optional[float]] = {}
        #: Metrics of the last evaluated candidate.
        self.last_metrics: Dict[str, float] = {}

    def _validate_messages(self) -> None:
        """Fail loudly at construction on message sets the activation-link
        model cannot express.

        Each receiver task is *activated* by its incoming message stream, so
        it can have at most one activating message; a second message to the
        same receiver would otherwise surface, much later, as a permanent
        per-candidate rejection with a model-internal error.  Additional
        traffic a component merely consumes belongs in ``background_frames``.
        """
        seen: Dict[str, str] = {}
        for message in self.messages:
            previous = seen.get(message.receiver)
            if previous is not None:
                raise ValueError(
                    f"component {message.receiver!r} receives both "
                    f"{previous!r} and {message.name!r}; the activation-link "
                    "model supports one activating message per receiver — "
                    "model additional consumed traffic as background frames")
            seen[message.receiver] = message.name

    def _validate_chain_stages(self) -> None:
        """Reject chains whose stages contradict the declared message wiring.

        A component stage next to a message stage must be that message's
        endpoint — this catches the typo'd stage name that would otherwise
        keep the chain permanently dormant (it would look like a component
        that is simply never deployed, silently disabling the deadline
        check).
        """
        by_name = {message.name: message for message in self.messages}
        for chain in self.chains:
            stages = chain.stages
            for index, stage in enumerate(stages):
                message = by_name.get(stage)
                if message is None:
                    continue
                if index > 0 and stages[index - 1] not in by_name \
                        and stages[index - 1] != message.sender:
                    raise ValueError(
                        f"chain {chain.name!r}: stage {stages[index - 1]!r} "
                        f"precedes message {stage!r} but its sender is "
                        f"{message.sender!r}")
                if index + 1 < len(stages) and stages[index + 1] not in by_name \
                        and stages[index + 1] != message.receiver:
                    raise ValueError(
                        f"chain {chain.name!r}: stage {stages[index + 1]!r} "
                        f"follows message {stage!r} but its receiver is "
                        f"{message.receiver!r}")

    # -- model construction ------------------------------------------------

    def _active_messages(self, components: Dict[str, Contract],
                         mapping: Dict[str, str]) -> List[MessageSpec]:
        active = []
        for message in self.messages:
            sender = components.get(message.sender)
            receiver = components.get(message.receiver)
            if sender is None or receiver is None:
                continue  # endpoint not deployed yet
            if sender.timing is None or receiver.timing is None:
                continue
            if message.sender not in mapping or message.receiver not in mapping:
                continue
            active.append(message)
        return active

    def _chain_hops(self, chain: DistributedChainSpec,
                    components: Dict[str, Contract], mapping: Dict[str, str],
                    active_messages: Dict[str, MessageSpec]
                    ) -> Optional[List[Tuple[str, str]]]:
        """Resource/item hops of a chain, or ``None`` while partially deployed."""
        hops: List[Tuple[str, str]] = []
        for stage in chain.stages:
            if stage in active_messages:
                hops.append((active_messages[stage].bus, stage))
            elif any(message.name == stage for message in self.messages):
                return None  # message exists but is not active yet
            elif (stage in components and stage in mapping
                  and components[stage].timing is not None):
                # Components without a timing contract have no task to
                # analyse; like an undeclared endpoint, they keep the chain
                # dormant rather than rejecting every candidate.
                hops.append((mapping[stage], f"{stage}.task"))
            else:
                return None
        return hops

    def _build_model(self, contracts: List[Contract], mapping: Dict[str, str],
                     priorities: Dict[str, int], platform: Platform,
                     findings: List[str]
                     ) -> Tuple[Optional[AnalysisSystemModel],
                                Dict[str, List[Tuple[str, str]]]]:
        components = {contract.component: contract for contract in contracts}
        tasksets = tasksets_from_mapping(contracts, mapping, priorities)
        model = AnalysisSystemModel()
        for processor_name, taskset in sorted(tasksets.items()):
            model.add_processor(processor_name, taskset,
                                speed_factor=self.speed_factor)

        active = self._active_messages(components, mapping)
        frames_by_bus: Dict[str, List[FrameSpec]] = {
            bus: list(frames) for bus, frames in self.background_frames.items()}
        for message in active:
            sender = components[message.sender]
            try:
                frames_by_bus.setdefault(message.bus, []).append(FrameSpec(
                    name=message.name, can_id=message.can_id,
                    period=sender.timing.period, dlc=message.dlc,
                    extended=message.extended, sender=message.sender))
            except CanAnalysisError as exc:
                findings.append(f"message {message.name}: {exc}")
                return None, {}
        for bus_name, frames in sorted(frames_by_bus.items()):
            try:
                bitrate = platform.network(bus_name).bandwidth_bps
            except ResourceError:
                findings.append(f"bus {bus_name!r} is not a network of the platform")
                return None, {}
            try:
                model.add_bus(bus_name, frames, bitrate)
            except (SystemConfigurationError, CanAnalysisError) as exc:
                # Duplicate stream names/identifiers (e.g. a message colliding
                # with background traffic) reject the candidate, they must
                # not abort the admission process.
                findings.append(str(exc))
                return None, {}

        for message in active:
            sender_task = (mapping[message.sender], f"{message.sender}.task")
            receiver_task = (mapping[message.receiver], f"{message.receiver}.task")
            try:
                if not model.has_link(*sender_task, message.bus, message.name):
                    model.connect(*sender_task, message.bus, message.name)
                if not model.has_link(message.bus, message.name, *receiver_task):
                    model.connect(message.bus, message.name, *receiver_task)
            except SystemConfigurationError as exc:
                findings.append(f"message {message.name}: {exc}")
                return None, {}

        active_by_name = {message.name: message for message in active}
        chain_hops: Dict[str, List[Tuple[str, str]]] = {}
        for chain in self.chains:
            hops = self._chain_hops(chain, components, mapping, active_by_name)
            if hops is None:
                continue  # chain not fully deployed yet
            for (src_res, src), (dst_res, dst) in zip(hops, hops[1:]):
                if model.has_link(src_res, src, dst_res, dst):
                    continue
                try:
                    model.connect(src_res, src, dst_res, dst)
                except SystemConfigurationError as exc:
                    findings.append(f"chain {chain.name}: {exc}")
                    return None, {}
            chain_hops[chain.name] = hops
        return model, chain_hops

    # -- the acceptance run ------------------------------------------------

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the distributed timing viewpoint of a candidate."""
        findings: List[str] = []
        metrics: Dict[str, float] = {}
        self.last_chain_latencies = {}
        self.last_metrics = metrics
        self.last_result = None
        model, chain_hops = self._build_model(contracts, mapping, priorities,
                                              platform, findings)
        if model is None:
            return AcceptanceResult(viewpoint=self.viewpoint, passed=False,
                                    findings=findings, metrics=metrics)

        result = self.analysis.analyse(model)
        self.last_result = result
        metrics["system.iterations"] = float(result.iterations)
        for bus_name, bus in model.buses.items():
            busy = sum(frame.transmission_time(bus.bitrate_bps) / frame.period
                       for frame in bus.frames)
            metrics[f"{bus_name}.utilization"] = busy
        if result.diverged or not result.converged:
            findings.append("event-model propagation diverged: no bounded "
                            "system-level fixpoint exists for this candidate")
        else:
            for resource_name, per_item in sorted(result.results.items()):
                for item_name, item_result in per_item.items():
                    if item_result.schedulable:
                        continue
                    wcrt = (f"{item_result.wcrt:.4f}s" if item_result.wcrt is not None
                            else "unbounded")
                    findings.append(
                        f"{item_name} on {resource_name}: WCRT {wcrt} exceeds "
                        f"deadline {item_result.task.deadline:.4f}s under "
                        "propagated jitter")
        for chain in self.chains:
            hops = chain_hops.get(chain.name)
            # A dormant chain (some component not deployed yet) is skipped,
            # but observably so.
            metrics[f"{chain.name}.active"] = float(hops is not None)
            if hops is None:
                continue
            latency = result.chain_latency(
                CauseEffectChain(chain.name, hops=tuple(hops),
                                 deadline=chain.deadline))
            self.last_chain_latencies[chain.name] = latency
            if latency is None:
                findings.append(f"chain {chain.name}: end-to-end latency is "
                                "unbounded")
                continue
            metrics[f"{chain.name}.latency_s"] = latency
            if latency > chain.deadline:
                findings.append(
                    f"chain {chain.name}: end-to-end latency {latency:.4f}s "
                    f"exceeds deadline {chain.deadline:.4f}s")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not findings,
                                findings=findings, metrics=metrics)


class SafetyAcceptanceTest:
    """Safety viewpoint: ASIL consistency, redundancy and mapping independence."""

    viewpoint = "safety"

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the safety viewpoint of a candidate configuration."""
        analysis = SafetyAnalysis(contracts, mapping)
        findings = analysis.analyse()
        blocking = [str(f) for f in findings if f.blocking]
        informational = [str(f) for f in findings if not f.blocking]
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not blocking,
                                findings=blocking + informational,
                                metrics={"blocking_findings": float(len(blocking)),
                                         "informational_findings": float(len(informational))})


class SecurityAcceptanceTest:
    """Security viewpoint: threat-model analysis over the service topology."""

    viewpoint = "security"

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the security viewpoint of a candidate configuration."""
        model = ThreatModel()
        model.add_components(contracts)
        providers: Dict[str, List[str]] = {}
        for contract in contracts:
            for provision in contract.provides:
                providers.setdefault(provision.service, []).append(contract.component)
        for contract in contracts:
            for requirement in contract.requires:
                for provider in providers.get(requirement.service, []):
                    model.add_session(contract.component, provider)
        assessment = model.analyse()
        findings = [f"component {name} is under-protected for its exposure"
                    for name in assessment.under_protected]
        for path in assessment.attack_paths[:10]:
            findings.append(
                f"attack path {' -> '.join(path.path)} (exposure {path.exposure:.2f})")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=assessment.acceptable,
                                findings=findings,
                                metrics={"attack_paths": float(len(assessment.attack_paths)),
                                         "under_protected": float(len(assessment.under_protected))})


class ResourceAcceptanceTest:
    """Resource viewpoint: memory and network bandwidth budgets fit."""

    viewpoint = "resources"

    def run(self, contracts: List[Contract], mapping: Dict[str, str],
            priorities: Dict[str, int], platform: Platform) -> AcceptanceResult:
        """Evaluate the resource viewpoint of a candidate configuration."""
        findings: List[str] = []
        metrics: Dict[str, float] = {}
        memory_demand: Dict[str, float] = {}
        can_demand = 0.0
        for contract in contracts:
            resources = contract.resources
            if resources is None:
                continue
            processor = mapping.get(contract.component)
            if processor is not None:
                memory_demand[processor] = memory_demand.get(processor, 0.0) + resources.memory_kib
            can_demand += resources.can_bandwidth_bps
        for processor_name, demand in sorted(memory_demand.items()):
            available = platform.processor(processor_name).memory_kib
            metrics[f"{processor_name}.memory_demand_kib"] = demand
            if demand > available:
                findings.append(f"{processor_name}: memory demand {demand:.0f} KiB exceeds "
                                f"{available:.0f} KiB")
        total_can = sum(n.bandwidth_bps for n in platform.networks() if n.kind == "can")
        metrics["can_demand_bps"] = can_demand
        if total_can and can_demand > 0.7 * total_can:
            findings.append(
                f"CAN bandwidth demand {can_demand:.0f} bps exceeds 70% of capacity "
                f"{total_can:.0f} bps")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not findings,
                                findings=findings, metrics=metrics)


def default_acceptance_tests(cache: Optional[AnalysisCache] = None) -> List[AcceptanceTest]:
    """The standard battery of acceptance tests the MCC runs per change.

    Pass an :class:`AnalysisCache` to memoize the timing viewpoint across
    change requests — repeated acceptance sweeps (e.g. re-validating the
    same campaigns, or ``python -m repro.experiments cache-bench``) share
    one cache this way.
    """
    return [TimingAcceptanceTest(cache=cache), SafetyAcceptanceTest(),
            SecurityAcceptanceTest(), ResourceAcceptanceTest()]
