"""E17 (admission service): sustained multi-tenant admissions/sec.

The :class:`~repro.service.admission.AdmissionService` interleaves many
tenants' campaigns over the re-entrant :class:`~repro.fleet.engine.
CampaignEngine`, one wave per scheduling claim, with every tenant
publishing to and absorbing from one shared append-only analysis-cache
store.  This benchmark drives a concurrent multi-fleet workload through
the service and records:

* ``admissions_per_s`` — sustained admission throughput under concurrent
  load (absolute; charted by the trajectory panel, never regression-gated
  — it is machine-dependent).
* the **tenancy-identity** check: every tenant's service-run campaign
  result is byte-identical (canonical digest: waves, verdicts, coverage —
  cache counters excluded) to an isolated direct ``Campaign.run()`` of
  the same submission.  Sharing the store moves wall time only.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from typing import Dict, List, Optional, Tuple

import pytest

from conftest import print_table, quick_mode, write_bench_record
from repro.analysis.cache import AnalysisCache
from repro.fleet.campaign import Campaign, CampaignResult, WavePolicy
from repro.fleet.vehicle import FleetSpec, FleetVehicle, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import build_update_contract
from repro.service import AdmissionService, SubmitCampaign

SEED = 11


def _grid() -> Tuple[int, int, int]:
    """(tenants, campaigns per tenant, fleet size)."""
    return (2, 2, 10) if quick_mode() else (3, 3, 24)


def _requests(tenants: int, campaigns: int, fleet_size: int) -> List[SubmitCampaign]:
    return [SubmitCampaign(tenant=f"tenant-{t}", fleet_size=fleet_size,
                           seed=SEED + t * campaigns + c)
            for t in range(tenants) for c in range(campaigns)]


def _digest(result: CampaignResult):
    """Canonical comparison key: everything deterministic about a result.

    Cache hit/miss counters and shard telemetry legitimately differ when a
    shared store pre-warms the analysis cache — the verdicts never do.
    """
    return (result.fleet_size, result.batched, result.admitted,
            result.rejected, result.deviating, result.refined,
            result.rolled_back, result.halted, result.halted_wave,
            result.completed,
            [record.to_dict() for record in result.waves])


def _reference_result(request: SubmitCampaign) -> CampaignResult:
    """Isolated ``Campaign.run()`` of one submission — the tenancy oracle.

    Mirrors the service's provisioning (``AdmissionService._provision``)
    parameter for parameter, minus the shared store.
    """
    cache = AnalysisCache(batch_kernel=request.batch_kernel)
    spec = FleetSpec(size=request.fleet_size, seed=request.seed,
                     heterogeneity=request.heterogeneity,
                     num_variants=request.num_variants,
                     extra_components=request.extra_components)
    fleet = generate_fleet(spec, analysis_cache=cache)
    contracts = {}

    def factory(vehicle: FleetVehicle) -> ChangeRequest:
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(
                vehicle.wcet_factor, utilization=request.update_utilization,
                component=request.component)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    policy = WavePolicy(canary_size=request.canary_size,
                        wave_fractions=request.wave_fractions,
                        max_failure_rate=request.max_failure_rate,
                        rollback_on_halt=request.rollback_on_halt)
    campaign = Campaign(fleet, factory, policy=policy, analysis_cache=cache,
                        failure_injection_rate=request.failure_injection_rate,
                        feedback_seed=request.seed, workers=request.workers,
                        batch_kernel=request.batch_kernel)
    return campaign.run()


def _drive(requests: List[SubmitCampaign],
           store_dir: Optional[str],
           slots: int = 2) -> Tuple[float, Dict[str, CampaignResult]]:
    """Submit every request, wait all out; returns (wall_s, results)."""

    async def run() -> Tuple[float, Dict[str, CampaignResult]]:
        started = time.perf_counter()
        async with AdmissionService(store_dir=store_dir,
                                    slots=slots) as service:
            receipts = [await service.submit(request) for request in requests]
            for receipt in receipts:
                await service.wait(receipt.job_id)
            results = {receipt.job_id: service.result(receipt.job_id)
                       for receipt in receipts}
        return time.perf_counter() - started, results

    return asyncio.run(run())


@pytest.mark.benchmark(group="e17-admission-service")
def test_e17_multi_tenant_admission_throughput(benchmark):
    """Concurrent multi-fleet load through one shared-store service."""
    tenants, campaigns, fleet_size = _grid()
    requests = _requests(tenants, campaigns, fleet_size)
    assert tenants >= 2  # the record must pin >= 2 concurrent tenants

    # min-of-N on the shared-store service wall, fresh store per repeat so
    # every repeat measures the same cold-store protocol.
    repeats = 2 if quick_mode() else 3
    shared_wall = float("inf")
    shared_results: Dict[str, CampaignResult] = {}
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="repro_e17_") as store_dir:
            wall, results = _drive(requests, store_dir)
            if wall < shared_wall:
                shared_wall, shared_results = wall, results
    isolated_wall, _ = _drive(requests, store_dir=None)

    # Tenancy identity: per-tenant results byte-identical to isolated runs.
    receipts_order = list(shared_results)
    for job_id, request in zip(receipts_order, requests):
        assert job_id.startswith(request.tenant + "/")
        assert _digest(shared_results[job_id]) == \
            _digest(_reference_result(request))

    admitted = sum(result.admitted for result in shared_results.values())
    waves = sum(len(result.waves) for result in shared_results.values())
    store_hits = sum(result.cache_hits for result in shared_results.values())
    assert all(result.completed for result in shared_results.values())
    assert admitted == tenants * campaigns * fleet_size

    benchmark(lambda: _drive(_requests(2, 1, 6), store_dir=None))

    row = {
        "tenants": tenants,
        "campaigns_per_tenant": campaigns,
        "fleet_size": fleet_size,
        "jobs": len(requests),
        "waves": waves,
        "admitted": admitted,
        "cache_hits": store_hits,
        "shared_store_wall_s": shared_wall,
        "isolated_wall_s": isolated_wall,
        "admissions_per_s": admitted / shared_wall,
    }
    print_table("E17: multi-tenant admission service — sustained "
                "admissions/sec, shared analysis-cache store", [row])
    write_bench_record("e17_admission_service", row)
    assert row["admissions_per_s"] > 0
