"""Agreement on common velocity and minimum gap in a platoon.

The paper notes that agreeing on a common velocity or minimum distance "can
be addressed by agreement or consensus protocols" in the presence of
untrustworthy or compromised members.  We implement a trust-weighted,
median-based iterative agreement: every round, members exchange proposals,
each honest member updates its proposal towards the trimmed/weighted median
of the received values, and outlier proposals reduce the sender's
reputation.  The protocol converges for honest majorities because the median
is robust against a bounded fraction of arbitrary (Byzantine) values.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.platooning.trust import TrustModel


@dataclass(frozen=True)
class Proposal:
    """One member's proposal for the agreement variable in one round."""

    member: str
    value: float
    round_index: int


@dataclass
class ConsensusResult:
    """Outcome of an agreement run."""

    converged: bool
    value: Optional[float]
    rounds: int
    final_proposals: Dict[str, float] = field(default_factory=dict)
    excluded_members: List[str] = field(default_factory=list)

    def agreement_error(self, honest_members: Sequence[str]) -> float:
        """Maximum spread among honest members' final proposals."""
        values = [self.final_proposals[m] for m in honest_members if m in self.final_proposals]
        if len(values) < 2:
            return 0.0
        return max(values) - min(values)


def median_consensus(values: Sequence[float], weights: Optional[Sequence[float]] = None) -> float:
    """Weighted median of the values (robust aggregation primitive)."""
    if not values:
        raise ValueError("cannot aggregate an empty proposal set")
    if weights is None:
        weights = [1.0] * len(values)
    if len(weights) != len(values):
        raise ValueError("weights must match values")
    pairs = sorted(zip(values, weights), key=lambda p: p[0])
    total = sum(w for _, w in pairs)
    if total <= 0:
        raise ValueError("total weight must be positive")
    cumulative = 0.0
    for value, weight in pairs:
        cumulative += weight
        if cumulative >= total / 2.0:
            return value
    return pairs[-1][0]


class ConsensusProtocol:
    """Iterative trust-weighted median agreement.

    Parameters
    ----------
    trust:
        Trust model used to weight proposals and to learn from deviations.
    tolerance:
        Convergence threshold on the spread of honest proposals.
    max_rounds:
        Upper bound on rounds (the protocol reports non-convergence beyond it).
    step:
        Fraction by which members move towards the aggregate each round.
    """

    def __init__(self, trust: Optional[TrustModel] = None, tolerance: float = 0.1,
                 max_rounds: int = 50, step: float = 0.7,
                 outlier_factor: float = 3.0) -> None:
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if max_rounds < 1:
            raise ValueError("max_rounds must be at least 1")
        if not 0.0 < step <= 1.0:
            raise ValueError("step must be in (0, 1]")
        self.trust = trust or TrustModel()
        self.tolerance = tolerance
        self.max_rounds = max_rounds
        self.step = step
        self.outlier_factor = outlier_factor
        self.proposal_log: List[Proposal] = []

    def agree(self, initial_proposals: Dict[str, float],
              faulty_behaviour: Optional[Dict[str, Callable[[int], float]]] = None) -> ConsensusResult:
        """Run the agreement.

        Parameters
        ----------
        initial_proposals:
            Member -> initial proposal (honest members start from their own
            preferred value, e.g. the speed their sensors support in fog).
        faulty_behaviour:
            Member -> function(round) returning the (arbitrary) value a
            faulty/malicious member broadcasts instead of following the
            protocol.
        """
        if not initial_proposals:
            raise ValueError("need at least one member")
        faulty_behaviour = faulty_behaviour or {}
        proposals = dict(initial_proposals)
        honest = [m for m in proposals if m not in faulty_behaviour]
        if not honest:
            return ConsensusResult(converged=False, value=None, rounds=0,
                                   final_proposals=dict(proposals))

        rounds = 0
        for round_index in range(1, self.max_rounds + 1):
            rounds = round_index
            # Broadcast phase: faulty members may send arbitrary values.
            broadcast: Dict[str, float] = {}
            for member, value in proposals.items():
                if member in faulty_behaviour:
                    broadcast[member] = float(faulty_behaviour[member](round_index))
                else:
                    broadcast[member] = value
                self.proposal_log.append(Proposal(member, broadcast[member], round_index))

            # Trust update: penalize members whose broadcast deviates strongly
            # from the robust aggregate of everyone else.
            for member, value in broadcast.items():
                others = [v for m, v in broadcast.items() if m != member]
                if not others:
                    continue
                reference = median_consensus(others)
                spread = max(max(others) - min(others), self.tolerance)
                if abs(value - reference) > self.outlier_factor * spread:
                    self.trust.record_deviation(member)
                else:
                    self.trust.record_consistent(member, strength=0.3)

            # Aggregation phase: honest members move towards the trust-weighted
            # median of all broadcasts they accept (untrusted members weight 0).
            weights = {member: self.trust.weight(member) for member in broadcast}
            if all(weight <= 0 for weight in weights.values()):
                weights = {member: 1.0 for member in broadcast}
            aggregate = median_consensus(list(broadcast.values()),
                                         [weights[m] for m in broadcast])
            for member in honest:
                proposals[member] += self.step * (aggregate - proposals[member])

            spread = max(proposals[m] for m in honest) - min(proposals[m] for m in honest)
            if spread <= self.tolerance:
                agreed = median_consensus([proposals[m] for m in honest])
                return ConsensusResult(
                    converged=True, value=agreed, rounds=rounds,
                    final_proposals=dict(proposals),
                    excluded_members=[m for m in broadcast if self.trust.is_untrusted(m)])

        return ConsensusResult(converged=False, value=None, rounds=rounds,
                               final_proposals=dict(proposals),
                               excluded_members=[m for m in proposals
                                                 if self.trust.is_untrusted(m)])
