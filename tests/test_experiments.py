"""Tests for the experiment orchestration subsystem (repro.experiments)."""

from __future__ import annotations

import json

import pytest

from repro.experiments import (
    SCENARIOS,
    ExperimentSpec,
    Runner,
    RunSpec,
    ScenarioError,
    SpecError,
    builtin_specs,
    diff_records,
    execute_run,
    format_table,
    percentile,
    run_scenario,
    summarize,
)
from repro.experiments.aggregate import summarize_result
from repro.experiments.cli import main as cli_main
from repro.sim.random import derive_seed


class TestRegistry:
    """The scenario registry wraps all ten scenarios uniformly."""

    def test_all_ten_scenarios_registered(self):
        assert SCENARIOS.names() == ["distributed_e2e_update",
                                     "fleet_update_campaign", "fog_platooning",
                                     "infield_update", "intrusion",
                                     "intrusion_campaign",
                                     "lossy_ota_campaign", "thermal",
                                     "thermal_campaign", "weather_routing"]

    def test_unknown_scenario_raises(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            SCENARIOS.get("nope")

    def test_unknown_parameter_raises(self):
        with pytest.raises(ScenarioError, match="unknown parameters"):
            run_scenario("thermal", not_a_knob=1)

    def test_enum_coercion_from_json_level_values(self):
        record = run_scenario("thermal", strategy="no_reaction", duration_s=50.0)
        assert record["strategy"] == "no_reaction"
        with pytest.raises(ScenarioError, match="strategy"):
            run_scenario("thermal", strategy="bogus", duration_s=50.0)

    def test_records_are_json_serializable(self):
        for name, params in [
            ("intrusion", {"duration_s": 12.0, "attack_time_s": 2.0}),
            ("thermal", {"duration_s": 50.0}),
            ("fog_platooning", {}),
            ("weather_routing", {"severity": 0.7}),
            ("infield_update", {"num_requests": 5}),
            ("fleet_update_campaign", {"fleet_size": 6, "num_variants": 3,
                                       "extra_components": 2}),
        ]:
            record = run_scenario(name, **params)
            json.dumps(record)  # must not raise
            assert "sim_time_s" in record and "event_count" in record

    def test_defaults_cover_every_parameter(self):
        for scenario in SCENARIOS:
            defaults = scenario.defaults()
            assert sorted(defaults) == sorted(scenario.parameter_names())


class TestSpec:
    """Spec validation and grid expansion."""

    def test_expansion_counts_and_ids(self):
        spec = ExperimentSpec(name="s", scenario="weather_routing",
                              grid={"severity": [0.1, 0.5], "risk_aversion": 1.0})
        runs = spec.expand()
        assert spec.num_runs() == len(runs) == 2
        assert [r.run_id() for r in runs] == ["s/weather_routing#0000",
                                              "s/weather_routing#0001"]
        assert runs[0].params == {"severity": 0.1, "risk_aversion": 1.0}

    def test_seeds_multiply_runs_and_bind_seed_param(self):
        spec = ExperimentSpec(name="s", scenario="intrusion",
                              grid={"duration_s": 12.0}, seeds=[3, 4])
        runs = spec.expand()
        assert [r.params["seed"] for r in runs] == [3, 4]

    def test_base_seed_derives_per_run_seeds(self):
        spec = ExperimentSpec(name="s", scenario="intrusion",
                              grid={"duration_s": 12.0}, seeds=[0, 0],
                              base_seed=99)
        runs = spec.expand()
        seeds = [r.params["seed"] for r in runs]
        assert seeds == [derive_seed(99, "s", 0), derive_seed(99, "s", 1)]
        assert seeds[0] != seeds[1]

    def test_validation_rejects_bad_specs(self):
        with pytest.raises(SpecError, match="unknown scenario"):
            ExperimentSpec(name="s", scenario="nope").validate()
        with pytest.raises(SpecError, match="unknown parameters"):
            ExperimentSpec(name="s", scenario="thermal",
                           grid={"bogus": [1]}).validate()
        with pytest.raises(SpecError, match="seeds"):
            ExperimentSpec(name="s", scenario="thermal", seeds=[]).validate()
        with pytest.raises(SpecError, match="invalid experiment name"):
            ExperimentSpec(name="a/b", scenario="thermal").validate()
        with pytest.raises(SpecError, match="controlled by"):
            ExperimentSpec(name="s", scenario="intrusion",
                           grid={"seed": [1, 2]}).validate()

    def test_empty_axis_expands_to_zero_runs(self):
        """An empty grid axis is a degenerate-but-valid sweep: zero runs,
        zero num_runs, no error (programmatic grids filter axes empty)."""
        spec = ExperimentSpec(name="s", scenario="thermal",
                              grid={"strategy": []})
        spec.validate()
        assert spec.num_runs() == 0
        assert spec.expand() == []

    def test_json_round_trip(self):
        spec = ExperimentSpec(name="s", scenario="thermal",
                              grid={"strategy": ["cross_layer"]}, seeds=[1],
                              base_seed=7, description="d")
        clone = ExperimentSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        with pytest.raises(SpecError, match="unknown spec fields"):
            ExperimentSpec.from_dict({"name": "s", "scenario": "thermal",
                                      "bogus": 1})
        with pytest.raises(SpecError, match="missing required field"):
            ExperimentSpec.from_dict({"name": "s"})

    def test_builtin_suite_meets_sweep_floor(self):
        """The default CLI suite: >= 12 runs over >= 3 distinct scenarios."""
        specs = builtin_specs()
        for spec in specs:
            spec.validate()
        assert sum(spec.num_runs() for spec in specs) >= 12
        assert len({spec.scenario for spec in specs}) >= 3


class TestRunner:
    """Serial/parallel execution and record structure."""

    def _spec(self) -> ExperimentSpec:
        return ExperimentSpec(
            name="mix", scenario="weather_routing",
            grid={"severity": [0.0, 0.3, 0.6, 0.9]})

    def test_serial_records_in_expansion_order(self):
        result = Runner().run(self._spec())
        assert result.ok()
        assert [r.index for r in result.records] == [0, 1, 2, 3]
        assert result.records[0].wall_time_s >= 0.0
        json.dumps(result.to_dict())  # full result is JSON-serializable

    def test_parallel_records_byte_identical_to_serial(self):
        spec = ExperimentSpec(
            name="par", scenario="infield_update",
            grid={"num_requests": 6, "risky_fraction": [0.0, 0.3, 0.6]},
            seeds=[0, 1])
        serial = Runner(parallel=False).run(spec)
        parallel = Runner(parallel=True, workers=2).run(spec)
        assert parallel.parallel and parallel.workers == 2
        assert serial.canonical_json() == parallel.canonical_json()

    def test_failed_run_is_captured_not_raised(self):
        run = RunSpec(experiment="x", scenario="intrusion", index=0,
                      params={"attack_time_s": 10.0, "duration_s": 5.0, "seed": 0})
        record = execute_run(run)
        assert not record.ok
        assert "ValueError" in record.error
        assert record.metrics == {}

    def test_runner_rejects_nonpositive_workers(self):
        """``workers=0`` is an error, not a silent "auto" (a falsy-or
        default would conflate the two); ``None`` is the explicit auto."""
        with pytest.raises(ValueError):
            Runner(workers=0)
        with pytest.raises(ValueError):
            Runner(workers=-2)
        assert Runner(workers=None).workers is None  # auto-sizing survives

    def test_runner_revalidates_mutated_workers(self):
        runner = Runner(parallel=True, workers=2)
        runner.workers = 0  # post-construction mutation must not sneak by
        with pytest.raises(ValueError):
            runner.run(self._spec())

    def test_empty_grid_is_a_clean_noop(self):
        """An axis bound to zero values expands to zero runs: both the
        serial and the parallel runner return an empty, well-formed result
        instead of sizing a pool over ``len(runs) == 0``."""
        spec = ExperimentSpec(name="empty", scenario="weather_routing",
                              grid={"severity": []})
        assert spec.expand() == []
        for runner in (Runner(), Runner(parallel=True, workers=4)):
            result = runner.run(spec)
            assert result.records == []
            assert result.ok()
            assert not result.parallel
            assert result.workers == 1
            json.dumps(result.to_dict())


class TestAggregate:
    """Summary statistics and baseline diffing."""

    def test_percentile(self):
        assert percentile([1.0], 95) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 0) == 1.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 100) == 4.0
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 150)

    def test_summarize_skips_bools_and_non_numerics(self):
        result = Runner().run(ExperimentSpec(
            name="s", scenario="weather_routing", grid={"severity": [0.0, 0.9]}))
        rows = summarize(result.records)
        metrics = {row["metric"] for row in rows}
        assert "severity" in metrics
        assert "aware_takes_detour" not in metrics  # bool
        assert "aware_route" not in metrics  # list
        severity_row = next(row for row in rows if row["metric"] == "severity")
        assert severity_row["n"] == 2
        assert severity_row["mean"] == pytest.approx(0.45)

    def test_aggregation_over_zero_records(self):
        """Empty grids produce zero records; every aggregation entry point
        must degrade to empty output instead of hitting the percentile/mean
        math on empty sequences."""
        empty_result = Runner().run(ExperimentSpec(
            name="empty", scenario="weather_routing", grid={"severity": []}))
        assert summarize(empty_result.records) == []
        assert summarize_result(empty_result) == []
        assert diff_records([], empty_result.records) == []
        table = format_table("empty", summarize(empty_result.records))
        assert "(no rows)" in table

    def test_diff_records_reports_changes_and_missing_runs(self):
        result = Runner().run(ExperimentSpec(
            name="s", scenario="weather_routing", grid={"severity": [0.0]}))
        baseline = [json.loads(json.dumps(r.canonical())) for r in result.records]
        assert diff_records(baseline, result.records) == []

        mutated = [dict(entry, metrics=dict(entry["metrics"],
                                            aware_route_km=999.0))
                   for entry in baseline]
        rows = diff_records(mutated, result.records)
        assert any(row["metric"] == "aware_route_km" for row in rows)

        rows = diff_records([], result.records)
        assert rows == [{"run_id": result.records[0].run_id, "metric": "<run>",
                         "baseline": "<absent>", "current": "<present>"}]

    def test_format_table_handles_rows_and_empty(self):
        text = format_table("t", [{"a": 1.23456, "b": "x"}])
        assert "=== t ===" in text and "1.235" in text and "x" in text
        assert "(no rows)" in format_table("t", [])


class TestCli:
    """End-to-end CLI behaviour (in-process, no subprocess)."""

    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        for name in SCENARIOS.names():
            assert name in out

    def test_run_with_spec_file_and_compare(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "name": "tiny", "scenario": "weather_routing",
            "grid": {"severity": [0.0, 0.9]}}))
        out_a = tmp_path / "a.json"
        out_b = tmp_path / "b.json"
        assert cli_main(["run", "--spec", str(spec_file),
                         "--output", str(out_a)]) == 0
        assert cli_main(["run", "--spec", str(spec_file), "--parallel",
                         "--workers", "2", "--output", str(out_b)]) == 0
        capsys.readouterr()
        assert cli_main(["compare", str(out_a), str(out_b)]) == 0
        assert "no metric differences" in capsys.readouterr().out

    def test_run_rejects_bad_spec_file(self, tmp_path, capsys):
        spec_file = tmp_path / "bad.json"
        spec_file.write_text(json.dumps({"name": "x", "scenario": "nope"}))
        assert cli_main(["run", "--spec", str(spec_file)]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_compare_detects_differences(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps({
            "name": "tiny", "scenario": "weather_routing",
            "grid": {"severity": [0.0]}}))
        out_a = tmp_path / "a.json"
        cli_main(["run", "--spec", str(spec_file), "--output", str(out_a)])
        document = json.loads(out_a.read_text())
        document[0]["records"][0]["metrics"]["aware_route_km"] = 1e9
        out_b = tmp_path / "b.json"
        out_b.write_text(json.dumps(document))
        capsys.readouterr()
        assert cli_main(["compare", str(out_a), str(out_b)]) == 1
        assert "aware_route_km" in capsys.readouterr().out
