"""Longitudinal vehicle dynamics.

A point-mass longitudinal model is sufficient for every scenario in the
paper (ACC following, degraded braking, safe stop, platooning): the ego
vehicle's acceleration results from powertrain force, braking force (front
and rear circuits modelled separately so the rear-brake intrusion example
can disable one circuit), aerodynamic drag and rolling resistance.  Ambient
temperature scales the available friction so the thermal scenario couples
into the plant model as the paper describes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple


@dataclass
class VehicleParameters:
    """Physical parameters of the ego vehicle."""

    mass_kg: float = 1600.0
    drag_coefficient: float = 0.30
    frontal_area_m2: float = 2.2
    rolling_resistance: float = 0.012
    max_drive_force_n: float = 4500.0
    max_front_brake_force_n: float = 9000.0
    max_rear_brake_force_n: float = 6000.0
    #: Maximum regenerative / engine braking force available from the drive
    #: train (the fallback used when the rear brake circuit is unavailable).
    max_drivetrain_brake_force_n: float = 2200.0
    air_density: float = 1.2

    def __post_init__(self) -> None:
        if self.mass_kg <= 0:
            raise ValueError("vehicle mass must be positive")
        for name in ("max_drive_force_n", "max_front_brake_force_n",
                     "max_rear_brake_force_n", "max_drivetrain_brake_force_n"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    @property
    def max_brake_force_n(self) -> float:
        return self.max_front_brake_force_n + self.max_rear_brake_force_n

    def max_deceleration(self, friction_factor: float = 1.0) -> float:
        """Best-case deceleration (m/s^2) with all brake circuits available."""
        return self.max_brake_force_n * friction_factor / self.mass_kg


@dataclass
class VehicleState:
    """Kinematic state of the ego vehicle."""

    position_m: float = 0.0
    speed_mps: float = 0.0
    acceleration_mps2: float = 0.0
    time: float = 0.0

    def copy(self) -> "VehicleState":
        return VehicleState(self.position_m, self.speed_mps, self.acceleration_mps2, self.time)


class LongitudinalDynamics:
    """Forward-Euler integration of the longitudinal point-mass model.

    Parameters
    ----------
    parameters:
        Vehicle parameters.
    friction_factor:
        Scales the achievable brake force (1.0 dry road; lowered by the
        environment for wet/icy conditions or overheated brakes).
    """

    def __init__(self, parameters: Optional[VehicleParameters] = None,
                 initial_state: Optional[VehicleState] = None,
                 friction_factor: float = 1.0) -> None:
        self.parameters = parameters or VehicleParameters()
        self.state = initial_state or VehicleState()
        if not 0.0 < friction_factor <= 1.0:
            raise ValueError("friction factor must be in (0, 1]")
        self.friction_factor = friction_factor
        #: Per-circuit availability in [0, 1]; the intrusion scenario sets the
        #: rear circuit to 0 when the rear-brake component is shut down.
        self.front_brake_availability = 1.0
        self.rear_brake_availability = 1.0
        self.drivetrain_brake_availability = 1.0
        self.history: List[VehicleState] = []

    # -- capability queries ------------------------------------------------------------

    def available_brake_force(self) -> float:
        """Total brake force currently available (N)."""
        params = self.parameters
        return self.friction_factor * (
            params.max_front_brake_force_n * self.front_brake_availability
            + params.max_rear_brake_force_n * self.rear_brake_availability
            + params.max_drivetrain_brake_force_n * self.drivetrain_brake_availability)

    def available_deceleration(self) -> float:
        """Maximum achievable deceleration (m/s^2, positive number)."""
        return self.available_brake_force() / self.parameters.mass_kg

    def braking_capability_ratio(self) -> float:
        """Available deceleration relative to the nominal (all circuits) value."""
        nominal = (self.parameters.max_brake_force_n
                   + self.parameters.max_drivetrain_brake_force_n) / self.parameters.mass_kg
        return self.available_deceleration() / nominal if nominal > 0 else 0.0

    def stopping_distance(self, speed_mps: Optional[float] = None) -> float:
        """Distance needed to stop from the given speed at full available braking."""
        speed = self.state.speed_mps if speed_mps is None else speed_mps
        deceleration = self.available_deceleration()
        if deceleration <= 0:
            return math.inf
        return speed * speed / (2.0 * deceleration)

    def safe_speed_for_stopping_distance(self, distance_m: float) -> float:
        """Maximum speed from which the vehicle can stop within ``distance_m``
        — the quantity the ability layer uses to derive a reduced speed limit
        when braking is degraded."""
        if distance_m <= 0:
            return 0.0
        return math.sqrt(2.0 * self.available_deceleration() * distance_m)

    # -- fault injection ------------------------------------------------------------------

    def set_brake_circuit_availability(self, front: Optional[float] = None,
                                       rear: Optional[float] = None,
                                       drivetrain: Optional[float] = None) -> None:
        for name, value in (("front_brake_availability", front),
                            ("rear_brake_availability", rear),
                            ("drivetrain_brake_availability", drivetrain)):
            if value is not None:
                if not 0.0 <= value <= 1.0:
                    raise ValueError(f"{name} must be in [0, 1]")
                setattr(self, name, value)

    # -- integration ------------------------------------------------------------------------

    def resistive_forces(self, speed_mps: float) -> float:
        """Aerodynamic drag plus rolling resistance at the given speed (N)."""
        params = self.parameters
        drag = 0.5 * params.air_density * params.drag_coefficient * params.frontal_area_m2 * speed_mps ** 2
        rolling = params.rolling_resistance * params.mass_kg * 9.81 if speed_mps > 0 else 0.0
        return drag + rolling

    def step(self, dt: float, drive_command: float, brake_command: float) -> VehicleState:
        """Advance the model by ``dt`` seconds.

        ``drive_command`` and ``brake_command`` are normalized commands in
        [0, 1]; braking is distributed over the available circuits.
        """
        if dt <= 0:
            raise ValueError("dt must be positive")
        drive_command = min(max(drive_command, 0.0), 1.0)
        brake_command = min(max(brake_command, 0.0), 1.0)
        params = self.parameters

        drive_force = drive_command * params.max_drive_force_n
        brake_force = brake_command * self.available_brake_force()
        resistive = self.resistive_forces(self.state.speed_mps)

        force = drive_force - brake_force - resistive
        acceleration = force / params.mass_kg
        new_speed = self.state.speed_mps + acceleration * dt
        if new_speed < 0.0:
            # The vehicle does not roll backwards under braking/drag.
            new_speed = 0.0
            acceleration = (new_speed - self.state.speed_mps) / dt
        new_position = self.state.position_m + self.state.speed_mps * dt + 0.5 * acceleration * dt * dt

        self.state = VehicleState(position_m=new_position, speed_mps=new_speed,
                                  acceleration_mps2=acceleration, time=self.state.time + dt)
        self.history.append(self.state.copy())
        return self.state

    def reset(self, state: Optional[VehicleState] = None) -> None:
        self.state = state or VehicleState()
        self.history.clear()
