"""Enforcement of model assumptions at run time.

The MCC "can configure the monitoring facilities to enforce, e.g., the
access policy to network resources or real-time behavior where necessary"
(Section II.B).  Two enforcers are provided:

* :class:`BudgetEnforcer` — suspends tasks that exceed their execution-time
  budget within a replenishment period (a simple deferrable-server style
  mechanism that protects other tasks on the same resource).
* :class:`AccessPolicyEnforcer` — whitelist of allowed communication
  relations; violations are blocked and reported as anomalies, which is the
  hook the intrusion-detection scenario builds on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType


class EnforcementAction(enum.Enum):
    """What the enforcer did with an offending activity."""

    ALLOWED = "allowed"
    THROTTLED = "throttled"
    BLOCKED = "blocked"
    SUSPENDED = "suspended"


@dataclass
class _Budget:
    budget: float
    period: float
    consumed: float = 0.0
    window_index: int = 0
    suspended: bool = False

    @property
    def window_start(self) -> float:
        """Start time of the current replenishment window."""
        return self.window_index * self.period


class BudgetEnforcer:
    """Execution-time budget enforcement per task.

    Each task gets ``budget`` seconds of execution per ``period``; once the
    budget is exhausted the task is reported as suspended until the next
    replenishment.  This bounds the interference a misbehaving (or
    compromised) task can impose on higher-criticality tasks sharing the
    processor — the freedom-from-interference mechanism that makes
    mixed-criticality co-location acceptable to the safety viewpoint.
    """

    def __init__(self, layer: str = "platform") -> None:
        self.layer = layer
        self._budgets: Dict[str, _Budget] = {}
        self.anomalies: List[Anomaly] = []
        self.actions: List[Tuple[float, str, EnforcementAction]] = []

    def configure(self, task: str, budget: float, period: float) -> None:
        if budget <= 0 or period <= 0:
            raise ValueError("budget and period must be positive")
        if budget > period:
            raise ValueError("budget cannot exceed its replenishment period")
        self._budgets[task] = _Budget(budget=budget, period=period)

    def configured_tasks(self) -> List[str]:
        return list(self._budgets)

    def _replenish_if_due(self, entry: _Budget, time: float) -> None:
        # Window boundaries are multiples of the period (with a small
        # relative tolerance), not accumulated by repeated addition — the
        # accumulated sum drifts, which can miss a replenishment that is due
        # exactly at a boundary and then wrongly merge two windows.
        while time >= (entry.window_index + 1) * entry.period * (1.0 - 1e-12) \
                - 1e-9 * entry.period:
            entry.window_index += 1
            entry.consumed = 0.0
            entry.suspended = False

    def charge(self, time: float, task: str, execution_time: float) -> EnforcementAction:
        """Charge observed execution time; returns the enforcement decision."""
        if execution_time < 0:
            raise ValueError("execution time must be non-negative")
        entry = self._budgets.get(task)
        if entry is None:
            return EnforcementAction.ALLOWED
        self._replenish_if_due(entry, time)
        if entry.suspended:
            self.actions.append((time, task, EnforcementAction.SUSPENDED))
            return EnforcementAction.SUSPENDED
        entry.consumed += execution_time
        if entry.consumed > entry.budget:
            entry.suspended = True
            self.anomalies.append(Anomaly(
                anomaly_type=AnomalyType.BUDGET_OVERRUN, subject=task, layer=self.layer,
                severity=AnomalySeverity.WARNING, time=time,
                observed=entry.consumed, expected=entry.budget,
                details={"period": entry.period}))
            self.actions.append((time, task, EnforcementAction.SUSPENDED))
            return EnforcementAction.SUSPENDED
        self.actions.append((time, task, EnforcementAction.ALLOWED))
        return EnforcementAction.ALLOWED

    def is_suspended(self, task: str, time: float) -> bool:
        entry = self._budgets.get(task)
        if entry is None:
            return False
        self._replenish_if_due(entry, time)
        return entry.suspended

    def drain(self) -> List[Anomaly]:
        anomalies = list(self.anomalies)
        self.anomalies.clear()
        return anomalies


class AccessPolicyEnforcer:
    """Whitelist-based communication policy enforcement.

    The policy is the set of allowed (sender, receiver, service-or-id)
    triples derived from the deployed configuration's service sessions and
    CAN identifier assignments.  Any observed communication outside the
    whitelist is blocked and reported — the "monitoring communication
    behavior" mechanism of the intrusion example in Section V.
    """

    def __init__(self, layer: str = "communication") -> None:
        self.layer = layer
        self._allowed: Set[Tuple[str, str, str]] = set()
        self.anomalies: List[Anomaly] = []
        self.blocked_count = 0
        self.allowed_count = 0

    def allow(self, sender: str, receiver: str, subject: str = "*") -> None:
        self._allowed.add((sender, receiver, subject))

    def allow_many(self, triples: List[Tuple[str, str, str]]) -> None:
        for sender, receiver, subject in triples:
            self.allow(sender, receiver, subject)

    def revoke(self, sender: str, receiver: str, subject: str = "*") -> None:
        self._allowed.discard((sender, receiver, subject))

    def revoke_all_for(self, component: str) -> int:
        """Remove every rule that involves the component (containment)."""
        to_remove = {rule for rule in self._allowed if component in (rule[0], rule[1])}
        self._allowed -= to_remove
        return len(to_remove)

    def is_allowed(self, sender: str, receiver: str, subject: str = "*") -> bool:
        return ((sender, receiver, subject) in self._allowed
                or (sender, receiver, "*") in self._allowed)

    def check(self, time: float, sender: str, receiver: str,
              subject: str = "*") -> EnforcementAction:
        """Check one observed communication against the policy."""
        if self.is_allowed(sender, receiver, subject):
            self.allowed_count += 1
            return EnforcementAction.ALLOWED
        self.blocked_count += 1
        self.anomalies.append(Anomaly(
            anomaly_type=AnomalyType.ACCESS_VIOLATION, subject=sender, layer=self.layer,
            severity=AnomalySeverity.CRITICAL, time=time,
            details={"receiver": receiver, "subject": subject}))
        return EnforcementAction.BLOCKED

    def rules(self) -> List[Tuple[str, str, str]]:
        return sorted(self._allowed)

    def drain(self) -> List[Anomaly]:
        anomalies = list(self.anomalies)
        self.anomalies.clear()
        return anomalies
