"""Platform virtualization layer (Section III).

Hypervisor-based process virtualization provides temporal and spatial
segregation among mixed-criticality applications sharing a multicore
platform.  The hypervisor owns the physical functions of virtualized
peripherals (such as the CAN controller) and assigns virtual functions to
guest VMs; modifications inside one VM cannot affect other VMs.
"""

from repro.virtualization.vm import VirtualMachine, VmState, VmError
from repro.virtualization.hypervisor import Hypervisor, DeviceAssignment, IsolationViolation

__all__ = [
    "VirtualMachine",
    "VmState",
    "VmError",
    "Hypervisor",
    "DeviceAssignment",
    "IsolationViolation",
]
