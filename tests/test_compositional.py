"""Tests for the compositional multi-resource analysis subsystem.

Covers the CAN response-time analysis, the system-level event-model
propagation fixpoint (including the single-resource bit-identity criterion
and divergence detection), jitter-aware chain latency bounds, the
distributed timing acceptance test, and the fleet admission hook.
"""

from __future__ import annotations

import pytest

from repro.analysis.cache import AnalysisCache
from repro.analysis.compositional import (CanAnalysisError,
                                          CanResponseTimeAnalysis,
                                          CauseEffectChain, FrameSpec,
                                          SystemAnalysis,
                                          SystemConfigurationError, SystemModel,
                                          distributed_end_to_end_latency)
from repro.analysis.cpa import EventModel, ResponseTimeAnalysis
from repro.contracts.model import (Contract, RealTimeRequirement,
                                   SafetyRequirement, SecurityRequirement)
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.acceptance import (DistributedChainSpec,
                                  DistributedTimingAcceptanceTest, MessageSpec,
                                  default_acceptance_tests)
from repro.mcc.controller import MultiChangeController
from repro.platform.resources import NetworkResource, Platform, ProcessingResource
from repro.platform.tasks import Task, TaskSet

BITRATE = 500_000.0


def frame(name, can_id, period=0.01, dlc=8, **kwargs) -> FrameSpec:
    return FrameSpec(name, can_id=can_id, period=period, dlc=dlc, **kwargs)


class TestCanResponseTimeAnalysis:
    def test_single_frame_response_is_transmission_time(self):
        spec = frame("a", 0x100)
        result = CanResponseTimeAnalysis([spec], BITRATE).analyse()["a"]
        assert result.wcrt == pytest.approx(spec.transmission_time(BITRATE))
        assert result.converged and result.schedulable

    def test_highest_priority_frame_suffers_blocking(self):
        high = frame("high", 0x100, dlc=0)
        low = frame("low", 0x200, dlc=8)
        results = CanResponseTimeAnalysis([high, low], BITRATE).analyse()
        blocking = low.transmission_time(BITRATE)
        assert results["high"].wcrt == pytest.approx(
            blocking + high.transmission_time(BITRATE))

    def test_lower_priority_frame_suffers_interference(self):
        high = frame("high", 0x100, period=0.002)
        mid = frame("mid", 0x180, period=0.002)
        low = frame("low", 0x200, period=0.02)
        results = CanResponseTimeAnalysis([high, mid, low], BITRATE).analyse()
        tx = {f.name: f.transmission_time(BITRATE) for f in (high, mid, low)}
        # Lowest priority: no blocking, one instance of each higher stream.
        assert results["low"].wcrt == pytest.approx(tx["high"] + tx["mid"] + tx["low"])
        # Highest priority: blocked once by the longest lower-priority frame.
        assert results["high"].wcrt == pytest.approx(max(tx["mid"], tx["low"]) + tx["high"])
        assert results["low"].wcrt > results["high"].wcrt

    def test_arbitration_by_id_not_by_order(self):
        first = frame("first", 0x300, period=0.005)
        second = frame("second", 0x010, period=0.005)
        third = frame("third", 0x200, period=0.005)
        results = CanResponseTimeAnalysis([first, second, third], BITRATE).analyse()
        # "second" wins arbitration despite being listed later: it only ever
        # waits for one already-started lower-priority frame.
        assert results["second"].wcrt < results["first"].wcrt
        tx = {f.name: f.transmission_time(BITRATE) for f in (first, second, third)}
        assert results["second"].wcrt == pytest.approx(
            max(tx["first"], tx["third"]) + tx["second"])

    def test_overload_is_reported_unschedulable(self):
        frames = [frame(f"f{i}", 0x100 + i, period=0.0005) for i in range(4)]
        analysis = CanResponseTimeAnalysis(frames, BITRATE)
        assert analysis.utilization() > 1.0
        results = analysis.analyse()
        assert not all(r.schedulable for r in results.values())
        assert any(r.wcrt is None for r in results.values())

    def test_event_model_override_increases_interference(self):
        high = frame("high", 0x100, period=0.002)
        low = frame("low", 0x200, period=0.02)
        base = CanResponseTimeAnalysis([high, low], BITRATE).analyse()
        jittery = CanResponseTimeAnalysis(
            [high, low], BITRATE,
            event_models={"high": EventModel(period=0.002, jitter=0.004)}).analyse()
        assert jittery["low"].wcrt >= base["low"].wcrt

    def test_duplicate_ids_rejected(self):
        with pytest.raises(CanAnalysisError):
            CanResponseTimeAnalysis([frame("a", 0x100), frame("b", 0x100)], BITRATE)

    def test_duplicate_names_rejected(self):
        with pytest.raises(CanAnalysisError):
            CanResponseTimeAnalysis([frame("a", 0x100), frame("a", 0x101)], BITRATE)

    def test_iteration_budget_exhaustion_is_not_convergence(self):
        """Regression: running out of fixpoint iterations below the
        divergence bound must not report the (lower-bound) candidate as a
        converged WCRT."""
        high = frame("high", 0x100, period=0.002)
        low = frame("low", 0x200, period=0.02)
        result = CanResponseTimeAnalysis([high, low], BITRATE,
                                         max_iterations=1).analyse()["low"]
        assert result.wcrt is None
        assert not result.converged
        assert not result.schedulable

    def test_memo_round_trip(self):
        memo = {}
        frames = [frame("a", 0x100), frame("b", 0x200)]
        first = CanResponseTimeAnalysis(frames, BITRATE, memo=memo).analyse()
        again = CanResponseTimeAnalysis(frames, BITRATE, memo=memo).analyse()
        assert first == again
        assert len(memo) == 1

    def test_deadline_and_sender_carried_into_result(self):
        spec = frame("a", 0x100, deadline=0.004, sender="sensor")
        result = CanResponseTimeAnalysis([spec], BITRATE).analyse()["a"]
        assert result.task.deadline == 0.004
        assert result.task.component == "sensor"

    def test_parameter_validation(self):
        with pytest.raises(CanAnalysisError):
            CanResponseTimeAnalysis([frame("a", 0x100)], bitrate_bps=0.0)
        with pytest.raises(CanAnalysisError):
            FrameSpec("", can_id=0x100, period=0.01)
        with pytest.raises(CanAnalysisError):
            FrameSpec("a", can_id=0x800, period=0.01)  # beyond standard ids
        with pytest.raises(CanAnalysisError):
            FrameSpec("a", can_id=0x100, period=0.0)
        with pytest.raises(CanAnalysisError):
            FrameSpec("a", can_id=0x100, period=0.01, jitter=-1.0)
        with pytest.raises(CanAnalysisError):
            FrameSpec("a", can_id=0x100, period=0.01, deadline=0.0)
        with pytest.raises(CanAnalysisError):
            FrameSpec("a", can_id=0x100, period=0.01, dlc=12)
        with pytest.raises(CanAnalysisError):
            FrameSpec("a", can_id=0x100, period=0.01, dlc=-1)
        with pytest.raises(CanAnalysisError):
            CanResponseTimeAnalysis([frame("a", 0x100)],
                                    BITRATE).transmission_time("nope")


def two_ecu_model(bus_frames=None, link_chain=True) -> SystemModel:
    model = SystemModel()
    model.add_processor("ecu1", TaskSet([
        Task("sensor", period=0.01, wcet=0.002, priority=0),
        Task("filler1", period=0.02, wcet=0.006, priority=1)]))
    model.add_processor("ecu2", TaskSet([
        Task("control", period=0.01, wcet=0.003, priority=0),
        Task("filler2", period=0.02, wcet=0.008, priority=1)]))
    frames = bus_frames if bus_frames is not None else [
        frame("sensor_data", 0x100, period=0.01),
        frame("bg", 0x080, period=0.005)]
    model.add_bus("can0", frames, BITRATE)
    if link_chain:
        model.connect("ecu1", "sensor", "can0", "sensor_data")
        model.connect("can0", "sensor_data", "ecu2", "control")
    return model


class TestSystemModel:
    def test_duplicate_resource_rejected(self):
        model = SystemModel()
        model.add_processor("ecu1", TaskSet([Task("t", period=1.0, wcet=0.1)]))
        with pytest.raises(SystemConfigurationError):
            model.add_bus("ecu1", [frame("a", 0x100)], BITRATE)

    def test_connect_unknown_item_rejected(self):
        model = two_ecu_model()
        with pytest.raises(SystemConfigurationError):
            model.connect("ecu1", "nope", "can0", "sensor_data")

    def test_second_activation_source_rejected(self):
        model = two_ecu_model()
        with pytest.raises(SystemConfigurationError):
            model.connect("ecu1", "filler1", "ecu2", "control")

    def test_chain_requires_nonempty_hops(self):
        with pytest.raises(SystemConfigurationError):
            CauseEffectChain("empty", hops=())
        with pytest.raises(SystemConfigurationError):
            CauseEffectChain("bad", hops=(("ecu1", "a"),), deadline=0.0)

    def test_model_introspection_errors(self):
        model = two_ecu_model()
        with pytest.raises(SystemConfigurationError):
            model.items("nope")
        with pytest.raises(SystemConfigurationError):
            model.base_event_model("ecu1", "nope")
        with pytest.raises(SystemConfigurationError):
            model.best_case_response("nope", "x")
        with pytest.raises(SystemConfigurationError):
            model.add_processor("", TaskSet([Task("t", period=1.0, wcet=0.1)]))
        with pytest.raises(SystemConfigurationError):
            model.add_processor("ecu3", TaskSet([Task("t", period=1.0, wcet=0.1)]),
                                speed_factor=0.0)
        assert model.resource_names() == ["ecu1", "ecu2", "can0"]
        assert set(model.items("can0")) == {"sensor_data", "bg"}

    def test_analysis_configuration_errors(self):
        with pytest.raises(SystemConfigurationError):
            SystemAnalysis(max_iterations=0)
        with pytest.raises(SystemConfigurationError):
            SystemAnalysis().analyse()  # no model anywhere
        result = SystemAnalysis(model=two_ecu_model()).analyse()
        with pytest.raises(SystemConfigurationError):
            result.result_of("ecu1", "nope")


class TestSystemAnalysisFixpoint:
    def test_no_links_reproduces_single_resource_results_bit_identically(self):
        """Acceptance criterion: an unlinked system degenerates to isolated
        per-resource analyses with identical results."""
        model = two_ecu_model(link_chain=False)
        result = SystemAnalysis().analyse(model)
        assert result.converged and not result.diverged
        assert result.iterations == 1
        for ecu in ("ecu1", "ecu2"):
            reference = ResponseTimeAnalysis(model.processors[ecu].taskset).analyse()
            assert result.results[ecu] == reference
        bus = model.buses["can0"]
        bus_reference = CanResponseTimeAnalysis(list(bus.frames),
                                                bus.bitrate_bps).analyse()
        assert result.results["can0"] == bus_reference

    def test_no_links_bit_identity_through_cache(self):
        model = two_ecu_model(link_chain=False)
        result = SystemAnalysis(cache=AnalysisCache()).analyse(model)
        for ecu in ("ecu1", "ecu2"):
            reference = ResponseTimeAnalysis(model.processors[ecu].taskset).analyse()
            assert result.results[ecu] == reference

    def test_linked_system_converges_and_propagates_jitter(self):
        model = two_ecu_model()
        result = SystemAnalysis().analyse(model)
        assert result.converged and not result.diverged
        assert result.iterations > 1
        # The frame inherits the sensor's response-time variation ...
        frame_model = result.event_models[("can0", "sensor_data")]
        sensor = result.result_of("ecu1", "sensor")
        assert frame_model.jitter == pytest.approx(
            sensor.wcrt - model.best_case_response("ecu1", "sensor"))
        # ... and the control task inherits the frame's on top.
        control_model = result.event_models[("ecu2", "control")]
        assert control_model.jitter >= frame_model.jitter
        assert control_model.period == pytest.approx(0.01)

    @staticmethod
    def _verdicts(result):
        """Engine-independent verdict view: warm-started re-analyses may
        record fewer fixpoint `iterations`, everything else is identical."""
        return {resource: {name: (r.wcrt, r.schedulable, r.converged)
                           for name, r in per_item.items()}
                for resource, per_item in result.results.items()}

    def test_fixpoint_results_independent_of_engine_mode(self):
        model = two_ecu_model()
        cold = SystemAnalysis(incremental=False).analyse(model)
        incremental = SystemAnalysis().analyse(model)
        cached = SystemAnalysis(cache=AnalysisCache()).analyse(model)
        assert self._verdicts(cold) == self._verdicts(incremental) == \
            self._verdicts(cached)
        assert cold.event_models == incremental.event_models == cached.event_models
        assert (cold.converged, cold.iterations) == \
            (incremental.converged, incremental.iterations) == \
            (cached.converged, cached.iterations)

    def test_update_sweep_verdicts_match_cold(self):
        shared = SystemAnalysis(cache=AnalysisCache())
        for step in range(6):
            model = SystemModel()
            model.add_processor("ecu1", TaskSet([
                Task("sensor", period=0.01, wcet=0.002, priority=0),
                Task("app", period=0.02, wcet=0.004 + 0.001 * step, priority=1)]))
            model.add_processor("ecu2", TaskSet([
                Task("control", period=0.01, wcet=0.003, priority=0)]))
            model.add_bus("can0", [frame("sensor_data", 0x100, period=0.01)], BITRATE)
            model.connect("ecu1", "sensor", "can0", "sensor_data")
            model.connect("can0", "sensor_data", "ecu2", "control")
            warm = shared.analyse(model)
            cold = SystemAnalysis(incremental=False).analyse(model)
            assert self._verdicts(warm) == self._verdicts(cold)
            assert warm.event_models == cold.event_models
            assert warm.converged == cold.converged

    def test_divergent_cycle_is_detected(self):
        """A feedback cycle whose jitter grows without bound must be flagged
        as divergent, not iterated forever."""
        model = SystemModel()
        model.add_processor("ecu1", TaskSet([
            Task("a", period=0.01, wcet=0.004, priority=1),
            Task("hog", period=0.01, wcet=0.005, priority=0)]))
        model.add_processor("ecu2", TaskSet([
            Task("b", period=0.01, wcet=0.004, priority=1),
            Task("hog2", period=0.01, wcet=0.005, priority=0)]))
        model.connect("ecu1", "a", "ecu2", "b")
        model.connect("ecu2", "b", "ecu1", "a")
        result = SystemAnalysis(max_iterations=40).analyse(model)
        assert result.diverged
        assert not result.converged
        assert not result.schedulable

    def test_jitter_limit_trips_divergence_early(self):
        model = two_ecu_model()
        result = SystemAnalysis(jitter_limit=1e-9).analyse(model)
        assert result.diverged
        assert not result.schedulable

    def test_schedulable_shorthand(self):
        assert SystemAnalysis().schedulable(two_ecu_model())

    def test_unbounded_source_response_is_divergence(self):
        model = SystemModel()
        model.add_processor("ecu1", TaskSet([
            Task("hp", period=0.001, wcet=0.0009, priority=0),
            Task("src", period=0.01, wcet=0.005, priority=1)]))
        model.add_processor("ecu2", TaskSet([
            Task("dst", period=0.01, wcet=0.001, priority=0)]))
        model.connect("ecu1", "src", "ecu2", "dst")
        result = SystemAnalysis().analyse(model)
        assert result.result_of("ecu1", "src").wcrt is None
        assert result.diverged


class TestChainLatency:
    def test_latency_is_jitter_aware_and_never_exceeds_naive_sum(self):
        model = two_ecu_model()
        result = SystemAnalysis().analyse(model)
        chain = CauseEffectChain("c", hops=(("ecu1", "sensor"),
                                            ("can0", "sensor_data"),
                                            ("ecu2", "control")), deadline=0.05)
        latency = result.chain_latency(chain)
        naive = sum(result.result_of(r, i).wcrt for r, i in chain.hops)
        assert latency is not None
        assert latency <= naive + 1e-12
        expected = (model.best_case_response("ecu1", "sensor")
                    + model.best_case_response("can0", "sensor_data")
                    + result.result_of("ecu2", "control").wcrt)
        assert latency == pytest.approx(expected)
        assert distributed_end_to_end_latency(result, chain) == latency
        assert result.chain_slack(chain) == pytest.approx(0.05 - latency)

    def test_unlinked_chain_is_rejected(self):
        model = two_ecu_model()
        result = SystemAnalysis().analyse(model)
        chain = CauseEffectChain("c", hops=(("ecu1", "filler1"),
                                            ("ecu2", "filler2")))
        with pytest.raises(SystemConfigurationError):
            result.chain_latency(chain)

    def test_single_hop_chain_is_the_wcrt(self):
        model = two_ecu_model()
        result = SystemAnalysis().analyse(model)
        chain = CauseEffectChain("c", hops=(("ecu1", "sensor"),))
        assert result.chain_latency(chain) == result.result_of("ecu1", "sensor").wcrt


def make_contract(name, period, wcet, provides=(), requires=()) -> Contract:
    contract = Contract(component=name)
    contract.add_requirement(RealTimeRequirement(period=period, wcet=wcet))
    contract.add_requirement(SafetyRequirement(asil="B"))
    contract.add_requirement(SecurityRequirement(level="MEDIUM"))
    for service in provides:
        contract.add_provided_service(service)
    for service in requires:
        contract.add_required_service(service)
    return contract


def chain_battery(deadline, cache=None):
    distributed = DistributedTimingAcceptanceTest(
        messages=[MessageSpec("sensor_data", sender="sensor", receiver="control",
                              can_id=0x100)],
        chains=[DistributedChainSpec("e2e",
                                     stages=("sensor", "sensor_data", "control"),
                                     deadline=deadline)],
        cache=cache)
    return distributed, default_acceptance_tests(cache=cache) + [distributed]


def deploy_chain(mcc):
    reports = [mcc.add_component(make_contract("sensor", 0.01, 0.002,
                                               provides=["samples"])),
               mcc.add_component(make_contract("control", 0.01, 0.003,
                                               requires=["samples"]))]
    return reports


class TestDistributedTimingAcceptanceTest:
    def test_partially_deployed_chain_is_not_checked(self, dual_core_platform):
        distributed, tests = chain_battery(deadline=0.05)
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        report = mcc.add_component(make_contract("sensor", 0.01, 0.002,
                                                 provides=["samples"]))
        assert report.accepted
        assert distributed.last_chain_latencies == {}

    def test_full_chain_is_admitted_and_measured(self, dual_core_platform):
        distributed, tests = chain_battery(deadline=0.05)
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        reports = deploy_chain(mcc)
        assert all(report.accepted for report in reports)
        latency = distributed.last_chain_latencies["e2e"]
        assert latency is not None and 0 < latency < 0.05
        assert distributed.last_result is not None
        assert distributed.last_result.converged

    def test_tight_chain_deadline_rejects_while_local_timing_passes(
            self, dual_core_platform):
        distributed, tests = chain_battery(deadline=0.004)
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        reports = deploy_chain(mcc)
        final = reports[-1]
        assert not final.accepted
        assert final.acceptance_results["timing"] is True
        assert final.acceptance_results["distributed-timing"] is False
        assert any("exceeds deadline" in finding for finding in final.findings)
        # The rejected candidate was not adopted.
        assert "control" not in mcc.model.components()

    def test_unknown_bus_is_a_finding(self, dual_core_platform):
        distributed = DistributedTimingAcceptanceTest(
            messages=[MessageSpec("m", sender="sensor", receiver="control",
                                  can_id=0x100, bus="ethernet7")],
            chains=[])
        tests = default_acceptance_tests() + [distributed]
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        reports = deploy_chain(mcc)
        assert not reports[-1].accepted
        assert any("ethernet7" in finding for finding in reports[-1].findings)
        # A construction failure must not leave a stale fixpoint result from
        # an earlier candidate behind.
        assert distributed.last_result is None

    def test_message_colliding_with_background_traffic_is_a_finding(
            self, dual_core_platform):
        """Regression: a duplicate CAN id used to escape run() as an
        uncaught CanAnalysisError and abort the whole admission."""
        distributed = DistributedTimingAcceptanceTest(
            messages=[MessageSpec("sensor_data", sender="sensor",
                                  receiver="control", can_id=0x100)],
            chains=[],
            background_frames={"can0": [frame("bg", 0x100, period=0.01)]})
        tests = default_acceptance_tests() + [distributed]
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        reports = deploy_chain(mcc)
        assert not reports[-1].accepted
        assert any("duplicate arbitration id" in finding
                   for finding in reports[-1].findings)

    def test_two_messages_to_one_receiver_fail_at_construction(self):
        """Regression: CAN fan-in onto one receiver used to become a
        permanent per-candidate rejection with a model-internal error."""
        with pytest.raises(ValueError, match="one activating message"):
            DistributedTimingAcceptanceTest(
                messages=[MessageSpec("m1", sender="sensor", receiver="control",
                                      can_id=0x100),
                          MessageSpec("m2", sender="imu", receiver="control",
                                      can_id=0x110)],
                chains=[])

    def test_typoed_chain_stage_next_to_a_message_is_rejected_at_construction(self):
        """Regression: a stage name that matches neither the message's
        endpoint nor any message used to leave the chain silently dormant."""
        with pytest.raises(ValueError, match="receiver"):
            DistributedTimingAcceptanceTest(
                messages=[MessageSpec("m", sender="sensor", receiver="control",
                                      can_id=0x100)],
                chains=[DistributedChainSpec(
                    "e2e", stages=("sensor", "m", "controll"), deadline=0.05)])
        with pytest.raises(ValueError, match="sender"):
            DistributedTimingAcceptanceTest(
                messages=[MessageSpec("m", sender="sensor", receiver="control",
                                      can_id=0x100)],
                chains=[DistributedChainSpec(
                    "e2e", stages=("sensr", "m", "control"), deadline=0.05)])

    def test_chain_component_without_timing_contract_keeps_chain_dormant(
            self, dual_core_platform):
        """Regression: a timing-less chain component used to surface as an
        internal 'no item logger.task' error rejecting every candidate."""
        distributed = DistributedTimingAcceptanceTest(
            messages=[MessageSpec("m", sender="sensor", receiver="control",
                                  can_id=0x100)],
            chains=[DistributedChainSpec(
                "e2e", stages=("sensor", "m", "control", "logger"),
                deadline=0.05)])
        tests = default_acceptance_tests() + [distributed]
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        reports = deploy_chain(mcc)
        logger = Contract(component="logger")
        logger.add_requirement(SafetyRequirement(asil="QM"))
        logger.add_requirement(SecurityRequirement(level="MEDIUM"))
        reports.append(mcc.add_component(logger))
        assert all(report.accepted for report in reports)
        assert distributed.last_metrics["e2e.active"] == 0.0

    def test_dormant_chain_is_observable_in_metrics(self, dual_core_platform):
        distributed, tests = chain_battery(deadline=0.05)
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        mcc.add_component(make_contract("sensor", 0.01, 0.002,
                                        provides=["samples"]))
        assert distributed.last_metrics["e2e.active"] == 0.0
        mcc.add_component(make_contract("control", 0.01, 0.003,
                                        requires=["samples"]))
        assert distributed.last_metrics["e2e.active"] == 1.0

    def test_conflicting_activation_sources_are_a_finding(self, dual_core_platform):
        """A chain hop that would link directly onto a receiver already
        activated by a message is a rejection finding, not a crash."""
        distributed = DistributedTimingAcceptanceTest(
            messages=[MessageSpec("m1", sender="sensor", receiver="control",
                                  can_id=0x100)],
            chains=[DistributedChainSpec("direct", stages=("sensor", "control"),
                                         deadline=0.05)])
        tests = default_acceptance_tests() + [distributed]
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        reports = deploy_chain(mcc)
        assert not reports[-1].accepted
        assert any("activation source" in finding
                   for finding in reports[-1].findings)

    def test_background_traffic_lengthens_the_chain(self, dual_core_platform):
        quiet, quiet_tests = chain_battery(deadline=0.05)
        mcc = MultiChangeController(dual_core_platform,
                                    acceptance_tests=quiet_tests)
        deploy_chain(mcc)
        noisy = DistributedTimingAcceptanceTest(
            messages=[MessageSpec("sensor_data", sender="sensor",
                                  receiver="control", can_id=0x100)],
            chains=[DistributedChainSpec("e2e",
                                         stages=("sensor", "sensor_data", "control"),
                                         deadline=0.05)],
            background_frames={"can0": [frame("bg", 0x050, period=0.001)]})
        mcc2 = MultiChangeController(
            dual_core_platform,
            acceptance_tests=default_acceptance_tests() + [noisy])
        deploy_chain(mcc2)
        assert noisy.last_chain_latencies["e2e"] > quiet.last_chain_latencies["e2e"]

    def test_shared_cache_reuses_analyses_across_requests(self, dual_core_platform):
        cache = AnalysisCache()
        distributed, tests = chain_battery(deadline=0.05, cache=cache)
        mcc = MultiChangeController(dual_core_platform, acceptance_tests=tests)
        deploy_chain(mcc)
        assert cache.hits > 0


class TestFleetDistributedAdmission:
    def _factory(self, deadline):
        def build(variant, platform):
            return [DistributedTimingAcceptanceTest(
                messages=[MessageSpec("object_list", sender="perception",
                                      receiver="planner", can_id=0x100)],
                chains=[DistributedChainSpec(
                    "sense-plan", stages=("perception", "object_list", "planner"),
                    deadline=deadline)])]
        return build

    def test_fleet_admits_with_relaxed_distributed_deadline(self):
        spec = FleetSpec(size=4, num_variants=2, seed=7)
        vehicles = generate_fleet(spec,
                                  extra_acceptance_tests=self._factory(0.5))
        assert len(vehicles) == 4
        for vehicle in vehicles:
            assert "perception" in vehicle.mcc.model.components()
            assert "planner" in vehicle.mcc.model.components()

    def test_fleet_generation_fails_loudly_on_impossible_chain_deadline(self):
        """A distributed deadline no build can meet must reject the core
        baseline — and that is a hard error, not a silently thinner fleet."""
        spec = FleetSpec(size=4, num_variants=2, seed=7)
        with pytest.raises(RuntimeError, match="rejected its baseline"):
            generate_fleet(spec, extra_acceptance_tests=self._factory(1e-4))
