"""Campaign observability: tracer, engine instrumentation, metrics bridge,
pinned telemetry schema, numpy-optional metric summaries and the dashboard.

The load-bearing guarantees pinned here:

* **Read-only tracing** — a traced campaign returns a field-for-field
  identical :class:`CampaignResult` to an untraced one, and traced pooled
  runs stay byte-identical (canonical records) to traced sequential runs
  at any worker count (hypothesis-seeded differential).
* **Deterministic traces** — ``deterministic=True`` strips every
  wall-clock field and makes equal runs write byte-identical JSONL files.
* **Pinned telemetry schema** — ``shard_telemetry`` rows carry exactly
  :data:`SHARD_TELEMETRY_SCHEMA` (documented in docs/ARCHITECTURE.md);
  drift fails here before it breaks external consumers.
* **Offline dashboard** — ``report`` renders self-contained HTML with no
  scripts and no network references from any subset of inputs.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.monitoring.metrics as metrics_module
from repro.fleet.shard import SHARD_TELEMETRY_SCHEMA
from repro.monitoring.metrics import MetricSeries
from repro.observability import (WALL_CLOCK_FIELDS, CampaignTracer,
                                 TraceError, cache_efficiency,
                                 campaign_metric_registry,
                                 flatten_result_documents, load_trace,
                                 render_dashboard, shard_imbalance,
                                 wave_latencies)
from repro.observability.metrics_bridge import (ADMISSION_SOURCE,
                                                CACHE_SOURCE, SHARD_SOURCE,
                                                WAVE_SOURCE)
from test_parallel_campaign import campaign_digest, fleet_digest, run_campaign


class TestTracerUnit:
    def test_emit_orders_and_contextualizes(self):
        tracer = CampaignTracer()
        first = tracer.emit("wave.begin", wave=0, staged=5)
        second = tracer.emit("vehicle.admit", wave=0, vehicle="veh0001",
                             accepted=True)
        assert first["seq"] == 0 and second["seq"] == 1
        assert second["vehicle"] == "veh0001" and second["accepted"] is True
        assert "t_s" in first and "pid" in first
        assert len(tracer) == 2
        assert [e["event"] for e in tracer.select("wave.begin")] == ["wave.begin"]

    def test_deterministic_mode_strips_wall_clock_fields(self):
        tracer = CampaignTracer(deterministic=True)
        record = tracer.emit("shard.execute", wave=1, shard=0,
                             elapsed_s=0.5, worker_pid=4242, items=3)
        assert set(record) & WALL_CLOCK_FIELDS == set()
        assert record["items"] == 3

    def test_ingest_renumbers_and_inherits_wave(self):
        tracer = CampaignTracer(deterministic=True)
        tracer.emit("wave.begin", wave=2)
        count = tracer.ingest([
            {"event": "shard.item", "seq": 99, "vehicle": "veh0003",
             "elapsed_s": 0.1},
            {"event": "shard.item", "wave": 7, "vehicle": "veh0004"},
        ], wave=2)
        assert count == 2
        items = tracer.select("shard.item")
        assert [e["seq"] for e in items] == [1, 2]
        # Worker-supplied wave wins; the parent's only fills gaps.
        assert [e["wave"] for e in items] == [2, 7]
        assert all("elapsed_s" not in e for e in items)

    def test_flush_writes_jsonl_and_streams_appends(self, tmp_path):
        path = tmp_path / "deep" / "trace.jsonl"
        tracer = CampaignTracer(path=str(path))
        tracer.emit("campaign.begin", fleet_size=10)
        assert tracer.flush() == 1
        tracer.emit("campaign.end", admitted=10)
        assert tracer.flush() == 1
        assert tracer.flush() == 0
        events = load_trace(str(path))
        assert [e["event"] for e in events] == ["campaign.begin",
                                               "campaign.end"]

    def test_context_manager_flushes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with CampaignTracer(path=str(path)) as tracer:
            tracer.emit("wave.begin", wave=0)
        assert len(load_trace(str(path))) == 1

    def test_keep_events_false_bounds_memory(self, tmp_path):
        tracer = CampaignTracer(path=str(tmp_path / "t.jsonl"),
                                keep_events=False)
        tracer.emit("wave.begin", wave=0)
        assert tracer.events == [] and len(tracer) == 1
        assert tracer.flush() == 1

    def test_load_trace_rejects_damage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"event": "ok"}\nnot json\n', encoding="utf-8")
        with pytest.raises(TraceError):
            load_trace(str(path))
        path.write_text('[1, 2]\n', encoding="utf-8")
        with pytest.raises(TraceError):
            load_trace(str(path))
        path.write_text('{"no_event": 1}\n', encoding="utf-8")
        with pytest.raises(TraceError):
            load_trace(str(path))
        with pytest.raises(TraceError):
            load_trace(str(tmp_path / "missing.jsonl"))


class TestTracedCampaigns:
    def test_trace_covers_every_layer(self, tmp_path):
        tracer = CampaignTracer(path=str(tmp_path / "trace.jsonl"))
        _, _, result = run_campaign(40, 2, 4, tracer=tracer)
        kinds = {event["event"] for event in tracer.events}
        assert {"campaign.begin", "wave.begin", "shard.plan",
                "shard.execute", "shard.item", "vehicle.admit",
                "feedback.observe", "wave.end", "campaign.end"} <= kinds
        # The campaign flushed at run end without an explicit close.
        file_events = load_trace(str(tmp_path / "trace.jsonl"))
        assert len(file_events) == len(tracer.events)
        ends = tracer.select("campaign.end")
        assert len(ends) == 1
        assert ends[0]["admitted"] == result.admitted
        assert ends[0]["waves"] == len(result.waves)

    def test_tracer_none_leaves_result_unchanged_field_for_field(self):
        fleet_a, _, traced = run_campaign(25, 7, 1, failure_rate=0.2,
                                          tracer=CampaignTracer())
        fleet_b, _, untraced = run_campaign(25, 7, 1, failure_rate=0.2)
        assert campaign_digest(traced) == campaign_digest(untraced)
        assert fleet_digest(fleet_a) == fleet_digest(fleet_b)
        # Field-for-field, counters included: same worker layout, so even
        # the non-canonical fields must agree.
        assert traced.cache_hits == untraced.cache_hits
        assert traced.cache_misses == untraced.cache_misses
        assert traced.engine_reuse_rate == untraced.engine_reuse_rate

    def test_deterministic_trace_is_byte_identical_across_runs(self, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            tracer = CampaignTracer(path=str(path), deterministic=True)
            run_campaign(20, 3, 1, failure_rate=0.3, tracer=tracer)
        assert paths[0].read_bytes() == paths[1].read_bytes()
        for event in load_trace(str(paths[0])):
            assert set(event) & WALL_CLOCK_FIELDS == set()

    def test_traced_run_matches_untraced_canonical_record(self):
        # The tracer must not perturb the scenario's canonical record
        # either (the experiments layer extracts from the same result).
        from repro.scenarios.fleet_campaign import run_fleet_campaign_scenario
        traced = run_fleet_campaign_scenario(
            fleet_size=18, seed=5, trace_path=os.devnull)
        untraced = run_fleet_campaign_scenario(fleet_size=18, seed=5)
        assert traced.waves == untraced.waves
        assert traced.admitted == untraced.admitted
        assert traced.completed == untraced.completed

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.data_too_large])
    @given(size=st.integers(min_value=8, max_value=28),
           seed=st.integers(min_value=0, max_value=2 ** 16),
           failure_rate=st.sampled_from([0.0, 0.2, 0.5]))
    def test_traced_pooled_equals_traced_sequential(self, size, seed,
                                                    failure_rate):
        fleet_1, _, result_1 = run_campaign(
            size, seed, 1, failure_rate=failure_rate,
            tracer=CampaignTracer(deterministic=True))
        fleet_4, _, result_4 = run_campaign(
            size, seed, 4, failure_rate=failure_rate,
            tracer=CampaignTracer(deterministic=True))
        assert campaign_digest(result_1) == campaign_digest(result_4)
        assert fleet_digest(fleet_1) == fleet_digest(fleet_4)


class TestShardTelemetrySchema:
    def test_pooled_rows_match_pinned_schema_exactly(self):
        _, _, result = run_campaign(40, 2, 4)
        assert result.shard_telemetry
        for row in result.shard_telemetry:
            assert set(row) == set(SHARD_TELEMETRY_SCHEMA)
            for key, expected_type in SHARD_TELEMETRY_SCHEMA.items():
                assert isinstance(row[key], expected_type), (key, row[key])

    def test_traced_shard_execute_events_carry_the_schema_fields(self):
        tracer = CampaignTracer()
        _, _, result = run_campaign(40, 2, 4, tracer=tracer)
        executes = tracer.select("shard.execute")
        assert len(executes) == len(result.shard_telemetry)
        for event in executes:
            assert set(SHARD_TELEMETRY_SCHEMA) <= set(event)


class TestMetricsBridge:
    def test_wave_latencies_from_wall_clock_trace(self):
        events = [
            {"event": "wave.begin", "wave": 0, "t_s": 1.0},
            {"event": "wave.end", "wave": 0, "t_s": 1.5},
            {"event": "wave.begin", "wave": 1, "t_s": 2.0},
            {"event": "wave.end", "wave": 1, "t_s": 3.25},
            {"event": "wave.begin", "wave": 2},  # deterministic: no t_s
            {"event": "wave.end", "wave": 2},
        ]
        assert wave_latencies(events) == {0: 0.5, 1: 1.25}

    def test_shard_imbalance_max_over_mean(self):
        telemetry = [
            {"wave": 0, "shard": 0, "elapsed_s": 1.0},
            {"wave": 0, "shard": 1, "elapsed_s": 3.0},
            {"wave": 1, "shard": 0, "elapsed_s": 2.0},
        ]
        imbalance = shard_imbalance(telemetry)
        assert imbalance[0] == pytest.approx(1.5)
        assert imbalance[1] == 1.0  # single shard: balanced by definition

    def test_shard_imbalance_falls_back_to_item_counts(self):
        telemetry = [{"wave": 0, "items": 1}, {"wave": 0, "items": 3}]
        assert shard_imbalance(telemetry)[0] == pytest.approx(1.5)

    def test_cache_efficiency_omits_lookupless_waves(self):
        telemetry = [
            {"wave": 0, "cache_hits": 3, "cache_misses": 1},
            {"wave": 0, "cache_hits": 1, "cache_misses": 3},
            {"wave": 1, "cache_hits": 0, "cache_misses": 0},
        ]
        assert cache_efficiency(telemetry) == {0: 0.5}

    def test_registry_folds_a_real_campaign(self):
        tracer = CampaignTracer()
        _, _, result = run_campaign(40, 2, 4, tracer=tracer)
        registry = campaign_metric_registry(result, events=tracer.events)
        assert WAVE_SOURCE in registry.sources()
        assert SHARD_SOURCE in registry.sources()
        assert ADMISSION_SOURCE in registry.sources()
        waves = registry.get(WAVE_SOURCE, "admitted")
        assert waves is not None
        assert sum(waves.values()) == result.admitted
        imbalance = registry.get(SHARD_SOURCE, "imbalance")
        assert imbalance is not None and min(imbalance.values()) >= 1.0
        latency = registry.get(ADMISSION_SOURCE, "latency_s")
        assert latency is not None and all(v >= 0.0 for v in latency.values())

    def test_registry_accepts_round_tripped_wave_dicts(self):
        class Plain:
            waves = [{"index": 0, "kind": "canary", "size": 2, "admitted": 2,
                      "rejected": 0, "failure_rate": 0.0}]
            shard_telemetry = [{"wave": 0, "shard": 0, "items": 2,
                               "elapsed_s": 0.5, "cache_hits": 1,
                               "cache_misses": 1}]
        registry = campaign_metric_registry(Plain())
        assert registry.last(WAVE_SOURCE, "admitted") == 2.0
        assert registry.last(CACHE_SOURCE, "hit_rate") == 0.5


class TestNumpyOptionalMetrics:
    def test_pure_python_summary_matches_numpy(self, monkeypatch):
        series = MetricSeries("test.series", window=64)
        for index, value in enumerate([1.0, 2.5, -3.0, 4.25, 0.0]):
            series.sample(float(index), value)
        with_numpy = series.summary()
        monkeypatch.setattr(metrics_module, "_np", None)
        pure = series.summary()
        assert pure.count == with_numpy.count
        assert pure.mean == pytest.approx(with_numpy.mean)
        assert pure.minimum == with_numpy.minimum
        assert pure.maximum == with_numpy.maximum
        assert pure.std == pytest.approx(with_numpy.std)  # population ddof=0
        assert pure.last == with_numpy.last

    def test_pure_python_empty_summary(self, monkeypatch):
        monkeypatch.setattr(metrics_module, "_np", None)
        summary = MetricSeries("test.empty").summary()
        assert summary.count == 0 and summary.mean != summary.mean

    def test_env_gate_disables_numpy(self):
        env = dict(os.environ, REPRO_FORCE_PURE_BATCH="1")
        import subprocess
        import sys
        code = ("import repro.monitoring.metrics as m; "
                "print(m.numpy_available())")
        proc = subprocess.run([sys.executable, "-c", code], env=env,
                              capture_output=True, text=True, check=True)
        assert proc.stdout.strip() == "False"


class TestDashboard:
    @staticmethod
    def _campaign_record():
        return {
            "run_id": "e10_small/000", "experiment": "e10_small",
            "scenario": "fleet_update_campaign", "index": 0, "params": {},
            "metrics": {
                "admitted": 4, "rejected": 1, "halted": False,
                "waves": [
                    {"index": 0, "kind": "canary", "size": 2, "admitted": 2,
                     "rejected": 0, "deviating": 0, "undelivered": 0,
                     "rolled_back": 0, "failure_rate": 0.0},
                    {"index": 1, "kind": "fraction", "size": 3, "admitted": 2,
                     "rejected": 1, "deviating": 0, "undelivered": 0,
                     "rolled_back": 0, "failure_rate": 1 / 3},
                ],
            },
        }

    @staticmethod
    def _distributed_record():
        return {
            "run_id": "e11/000", "scenario": "distributed_e2e_update",
            "metrics": {"rejected_by_viewpoint": {"timing": 3, "safety": 1},
                        "rejected_distributed_only": 2},
        }

    def test_full_page_is_offline_and_self_contained(self):
        trace = [
            {"event": "wave.begin", "wave": 0, "t_s": 0.0},
            {"event": "shard.execute", "wave": 0, "shard": 0, "items": 2,
             "elapsed_s": 0.2, "cache_hits": 3, "cache_misses": 1},
            {"event": "wave.end", "wave": 0, "t_s": 0.4},
        ]
        bench = [{"name": "e10", "mode": "full", "quick_mode": False,
                  "created_utc": "2026-08-08T12:00:00Z",
                  "payload": {"speedup": 2.0}}]
        page = render_dashboard(
            run_records=[self._campaign_record(),
                         self._distributed_record()],
            trace=trace, bench_records=bench)
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page
        assert "http" not in page.replace("http://www.w3.org/2000/svg", "")
        for section in ["Admission funnel", "Wave outcomes",
                        "Rejection reasons", "Cache efficiency",
                        "Admission latency", "Trace event volume",
                        "Latest benchmark speedups"]:
            assert section in page, section
        # rejected_distributed_only surfaces as its own reason bar.
        assert "distributed only" in page
        # Balanced markup for the generated chart containers.
        for tag in ["svg", "section", "table", "details", "figure", "path"]:
            assert page.count(f"<{tag}") == page.count(f"</{tag}>"), tag

    def test_empty_inputs_still_render_valid_page(self):
        page = render_dashboard()
        assert page.startswith("<!DOCTYPE html>")
        assert "No campaign run records" in page
        assert "No tracer files" in page
        assert "No BENCH_*.json records" in page

    def test_speedup_trajectory_appears_with_multi_point_series(self):
        bench = [
            {"name": "e10", "mode": "full",
             "created_utc": "2026-08-01T00:00:00Z",
             "payload": {"speedup": 1.5}},
            {"name": "e10", "mode": "full",
             "created_utc": "2026-08-08T00:00:00Z",
             "payload": {"speedup": 2.5}},
        ]
        page = render_dashboard(bench_records=bench)
        assert "Speedup trajectory" in page

    def test_values_are_escaped(self):
        record = self._campaign_record()
        record["run_id"] = "<img src=x>"
        page = render_dashboard(run_records=[record])
        assert "<img" not in page

    def test_flatten_result_documents(self):
        documents = [[{"records": [{"run_id": "a"}, {"run_id": "b"}]},
                      {"records": [{"run_id": "c"}]}],
                     {"records": [{"run_id": "d"}]}]
        flattened = flatten_result_documents(documents)
        assert [entry["run_id"] for entry in flattened] == ["a", "b", "c", "d"]


class TestReportCli:
    def test_report_renders_from_files(self, tmp_path, capsys):
        from repro.experiments.cli import main
        results = tmp_path / "results.json"
        results.write_text(json.dumps([{"records": [
            TestDashboard._campaign_record()]}]), encoding="utf-8")
        trace_path = tmp_path / "trace.jsonl"
        tracer = CampaignTracer(path=str(trace_path))
        tracer.emit("wave.begin", wave=0)
        tracer.close()
        bench_dir = tmp_path / "records"
        bench_dir.mkdir()
        (bench_dir / "BENCH_e10.json").write_text(json.dumps(
            {"name": "e10", "created_utc": "2026-08-08T12:00:00Z",
             "quick_mode": False, "payload": {"speedup": 2.0}}),
            encoding="utf-8")
        output = tmp_path / "sub" / "dashboard.html"
        assert main(["report", "--results", str(results),
                     "--trace", str(trace_path),
                     "--bench-dir", str(bench_dir),
                     "--output", str(output)]) == 0
        page = output.read_text(encoding="utf-8")
        assert page.startswith("<!DOCTYPE html>")
        assert "Admission funnel" in page
        assert "dashboard written to" in capsys.readouterr().out

    def test_report_fails_loud_on_corrupt_inputs(self, tmp_path, capsys):
        from repro.experiments.cli import main
        bad = tmp_path / "bad.json"
        bad.write_text("{nope", encoding="utf-8")
        assert main(["report", "--results", str(bad),
                     "--output", str(tmp_path / "o.html")]) == 2
        assert "cannot read results" in capsys.readouterr().err
        bad_trace = tmp_path / "bad.jsonl"
        bad_trace.write_text("not json\n", encoding="utf-8")
        assert main(["report", "--trace", str(bad_trace),
                     "--output", str(tmp_path / "o.html")]) == 2
