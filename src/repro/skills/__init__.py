"""Skill and ability graphs (Section IV of the paper).

A *skill graph* is a directed acyclic graph of skill nodes, data source
nodes and data sink nodes modelling which abilities a driving function needs
and how they depend on each other.  Instantiated with implementations and
metrics it becomes an *ability graph* used during operation to monitor the
current system performance, propagate degradations towards the main skill,
and drive graceful-degradation decisions.
"""

from repro.skills.graph import NodeKind, SkillNode, SkillGraph, SkillGraphError
from repro.skills.ability import (
    AbilityLevel,
    Ability,
    AbilityGraph,
    PropagationPolicy,
)
from repro.skills.degradation import (
    DegradationAction,
    DegradationActionKind,
    DegradationPlan,
    DegradationManager,
    OperationalRestriction,
    RedundancySwitch,
)
from repro.skills.acc_example import build_acc_skill_graph, build_acc_ability_graph, ACC_MAIN_SKILL

__all__ = [
    "NodeKind",
    "SkillNode",
    "SkillGraph",
    "SkillGraphError",
    "AbilityLevel",
    "Ability",
    "AbilityGraph",
    "PropagationPolicy",
    "DegradationAction",
    "DegradationActionKind",
    "DegradationPlan",
    "DegradationManager",
    "OperationalRestriction",
    "RedundancySwitch",
    "build_acc_skill_graph",
    "build_acc_ability_graph",
    "ACC_MAIN_SKILL",
]
