"""E1 (Fig. 1): automated in-field integration through the MCC.

Regenerates the acceptance behaviour of the CCC integration process: a batch
of change requests (a configurable fraction of them risky) is integrated
against a shared mixed-criticality platform; the table reports acceptance
rate, rejection reasons and deployed configuration growth, plus a mapping-
strategy ablation.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.mcc.mapping import MappingStrategy
from repro.scenarios.infield_update import run_infield_update_scenario


@pytest.mark.benchmark(group="e1-ccc-integration")
def test_e1_update_campaign_acceptance(benchmark):
    """Acceptance behaviour over a 30-request campaign with 30% risky updates."""

    def campaign():
        return run_infield_update_scenario(num_requests=30, seed=7, risky_fraction=0.3)

    result = benchmark(campaign)
    rows = [{
        "requests": result.total_requests,
        "accepted": result.accepted,
        "rejected": result.rejected,
        "acceptance_rate": result.acceptance_rate,
        "unsafe_accepted": result.unsafe_update_accepted,
        "final_version": result.final_version,
        "deployed_components": result.deployed_components,
    }]
    print_table("E1: MCC in-field update campaign (30 requests, 30% risky)", rows)
    print_table("E1: rejections by viewpoint",
                [{"viewpoint": vp, "rejections": count}
                 for vp, count in sorted(result.rejected_by_viewpoint.items())])
    # The MCC must block every unsafe update while accepting a useful share.
    assert not result.unsafe_update_accepted
    assert result.rejected > 0
    assert result.accepted > 0


@pytest.mark.benchmark(group="e1-ccc-integration")
def test_e1_risky_fraction_sweep(benchmark):
    """Acceptance rate as a function of the risky-update fraction."""

    fractions = [0.0, 0.2, 0.4, 0.6]

    def sweep():
        return [run_infield_update_scenario(num_requests=20, seed=11, risky_fraction=f)
                for f in fractions]

    results = benchmark(sweep)
    rows = [{"risky_fraction": f, "accepted": r.accepted, "rejected": r.rejected,
             "acceptance_rate": r.acceptance_rate}
            for f, r in zip(fractions, results)]
    print_table("E1: acceptance rate vs risky-update fraction", rows)
    rates = [r.acceptance_rate for r in results]
    assert rates[0] >= rates[-1]


@pytest.mark.benchmark(group="e1-ccc-integration")
def test_e1_mapping_strategy_ablation(benchmark):
    """Ablation: first-fit vs worst-fit vs best-fit placement heuristics."""

    strategies = [MappingStrategy.FIRST_FIT, MappingStrategy.WORST_FIT, MappingStrategy.BEST_FIT]

    def sweep():
        return [run_infield_update_scenario(num_requests=25, seed=13, risky_fraction=0.2,
                                            mapping_strategy=s, deploy=False)
                for s in strategies]

    results = benchmark(sweep)
    rows = [{"strategy": s.value, "accepted": r.accepted,
             "acceptance_rate": r.acceptance_rate}
            for s, r in zip(strategies, results)]
    print_table("E1 ablation: mapping strategy", rows)
    assert all(r.accepted > 0 for r in results)
