"""Staged update campaigns across a simulated fleet.

The unit of work at production scale is not one change request but a
*campaign*: the same logical update rolled out to N vehicles in staged waves
(canary -> percentage waves -> full), with per-vehicle admission through each
vehicle's own MCC, monitor feedback consumed between waves, and a policy that
halts — and optionally rolls back — a wave whose rejection/deviation rate
exceeds the tolerated threshold.

Admission is *batched* along two axes:

* **Analysis batching.**  Before a wave's vehicles integrate, the campaign
  previews the distinct candidate task sets
  (:meth:`~repro.mcc.integration.IntegrationProcess.preview_tasksets`) and
  pushes them through the shared
  :class:`~repro.analysis.cache.AnalysisCache` as one
  :meth:`~repro.analysis.cache.AnalysisCache.analyse_many` batch, so the
  incremental engine warm-starts near-identical vehicles off each other.
* **Verdict dedupe.**  Vehicles whose model, platform shape and request are
  *identical* (same variant, same adopted contract objects, same mapping
  state) are one integration, not N: the first vehicle of each equivalence
  group runs the full process, the rest replay its verdict and mapping
  decision through
  :meth:`~repro.mcc.controller.MultiChangeController.replay_change`.

Both are exact — the cache is content-addressed, the engine bit-identical,
and the equivalence grouping keys on object identity of the adopted
contracts — so batched and sequential admission produce identical wave
verdicts; only the wall time differs (the differential harness, the fleet
tests and the E10 benchmarks all assert this).

Sharded parallel execution
--------------------------

``workers > 1`` turns the wave core into a sharded engine: each wave's *new*
representative integrations (one per equivalence group, deduped **pre-fork**)
are partitioned into :class:`~repro.fleet.shard.ShardTask` slices and run on
a ``multiprocessing`` pool; the returned
:class:`~repro.fleet.shard.ShardVerdict` objects are fanned back out
**post-join** across every group member via ``replay_change`` in the parent.
Because integration is deterministic in exactly the shipped inputs, and
because all adoption, deviation feedback (in wave order), halt checks and
rollbacks stay in the parent, the parallel path produces byte-identical
wave records, verdicts and per-vehicle rollout state to ``workers=1`` —
everything except the informational ``cache_hits``/``cache_misses``
counters, which describe the *parent process's* cache traffic and so
legitimately vary with the worker layout.

By default the pool is fed *work-stealing style*: the wave's representatives
are partitioned into more chunks than workers by the cost-model planner
(:func:`~repro.fleet.shard.plan_chunks` — congruence-structure co-location,
chunk costs balanced on measured per-group integration times from prior
waves, heavy chunks dispatched first) and pushed through
``Pool.imap_unordered``, so an idle worker pulls the next chunk off the
shared queue instead of waiting behind a straggler shard.  ``steal=False``
restores the static one-shard-per-worker round-robin layout
(:func:`~repro.fleet.shard.plan_shards`), which remains the measured
baseline of the E13 benchmark and the deterministic fallback when costs are
unknown.  Either way the layout moves wall time only — the differential
harness pins byte-identical verdicts across layouts.

``cache_path`` adds a persistent on-disk
:meth:`~repro.analysis.cache.AnalysisCache.save_snapshot` of the shared
cache: loaded at run start, rewritten at run end (halts included), with
fork-started workers inheriting the live cache copy-on-write and
spawn-started workers reading the snapshot — so wave N+1 reuses wave N's
analyses in memory, and an entirely new campaign run over the same fleet
warm-starts from the previous run on disk.  ``cache_store`` is the
concurrent-writer alternative: an append-only
:class:`~repro.analysis.cache_store.SegmentStore` directory that every
worker appends its newly derived analyses to *mid-wave* (lock-free, each
writer owns its segment) and polls between chunks, so siblings reuse each
other's busy-window fixpoints before the wave has even joined — not just at
the next run's warm start.  ``checkpoint_path`` (or the
in-memory :attr:`Campaign.last_checkpoint`) captures a halted campaign —
aggregate result plus per-vehicle MCC snapshots at the halting wave's start
— so a remediated campaign can :meth:`Campaign.run` with ``resume_from=``
and continue where it stopped.

Execution itself lives in :mod:`repro.fleet.engine`: this module holds the
campaign *description* (fleet, policy, knobs, result/checkpoint types and
the wave planner), while :class:`~repro.fleet.engine.CampaignEngine` is the
re-entrant wave stepper that :meth:`Campaign.run` drives to completion —
and that the fleet admission service (:mod:`repro.service`) drives one wave
at a time.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.cache_store import SegmentStore
from repro.fleet.adversity import AdversityModel
from repro.fleet.vehicle import FleetVehicle, VehicleState
from repro.mcc.configuration import ChangeRequest
from repro.observability.tracer import CampaignTracer

#: Builds the per-vehicle change request of the campaign's update.
UpdateFactory = Callable[[FleetVehicle], ChangeRequest]

#: Absolute slack on the halt threshold comparison, in *vehicles*.  The
#: failure count is an integer but the tolerated count is a float product
#: (``max_failure_rate * size``) that can round below the mathematically
#: equal integer (``(1/49) * 49 == 0.9999...``); the slack keeps an
#: exactly-at-threshold wave tolerated for any fleet far below a billion
#: vehicles.
_HALT_SLACK = 1e-9


class CampaignError(ValueError):
    """Raised for invalid campaign or wave-policy configuration."""


@dataclass(frozen=True)
class WavePolicy:
    """Staging and halting policy of a campaign.

    ``canary_size`` vehicles go first (0 disables the canary wave); the
    remainder is released in waves at the cumulative ``wave_fractions`` of
    the post-canary fleet (a final full wave is implied when the last
    fraction is below 1).

    ``max_failure_rate`` is the highest **tolerated** failure rate of one
    wave — failures being rejections plus post-deployment deviations.  The
    halt comparison is strict (*exceeds*, not *reaches*): a wave at exactly
    the threshold passes, ``max_failure_rate=1.0`` never halts.  Two edge
    semantics are pinned explicitly (see :meth:`halts`): a zero threshold is
    zero tolerance — **any** failed vehicle halts, without relying on
    floating-point strictness — and the exactly-at-threshold comparison is
    performed on integer failure counts with an absolute slack, so binary
    rounding of the tolerated count (``(1/49) * 49 < 1``) cannot turn a
    tolerated wave into a halt.
    ``rollback_on_halt`` then rolls the admitted vehicles of the halting
    wave back to their pre-wave state.
    """

    canary_size: int = 2
    wave_fractions: Tuple[float, ...] = (0.1, 0.3, 1.0)
    max_failure_rate: float = 0.3
    rollback_on_halt: bool = True
    refine_on_deviation: bool = False

    def __post_init__(self) -> None:
        if self.canary_size < 0:
            raise CampaignError("canary_size must be non-negative")
        if not 0.0 <= self.max_failure_rate <= 1.0:
            raise CampaignError("max_failure_rate must be in [0, 1]")
        previous = 0.0
        for fraction in self.wave_fractions:
            if not 0.0 < fraction <= 1.0:
                raise CampaignError(f"wave fraction {fraction} not in (0, 1]")
            if fraction < previous:
                raise CampaignError("wave_fractions must be non-decreasing")
            previous = fraction

    def halts(self, failures: int, size: int) -> bool:
        """Whether a wave with ``failures`` failed vehicles of ``size`` halts.

        A clean wave never halts (even at a zero threshold); a zero
        threshold halts on any failure; otherwise the integer failure count
        must strictly exceed the tolerated count ``max_failure_rate * size``
        beyond float rounding slack.  Empty waves are never planned, but a
        ``size <= 0`` input degrades to "no halt" rather than dividing by
        zero.
        """
        if failures <= 0 or size <= 0:
            return False
        if self.max_failure_rate == 0.0:
            return True
        return failures > self.max_failure_rate * size + _HALT_SLACK


@dataclass
class WaveRecord:
    """Outcome of one executed wave.

    Under an adversity model a wave's staged membership and its executed
    membership can differ: ``undelivered`` vehicles were staged but never
    received the update this wave (they carry into the next wave or are
    ``abandoned`` once their retry budget is spent), ``retried`` counts the
    members that were carried *into* this wave from earlier failed
    deliveries, and ``discounted`` counts deviation reports the feedback
    grader attributed to suspected-compromised senders — still recorded as
    deviating, but excluded from the halt decision.  All four stay zero on
    an unperturbed campaign.
    """

    index: int
    kind: str
    vehicle_ids: List[str]
    admitted: int = 0
    rejected: int = 0
    deviating: int = 0
    refined: int = 0
    rolled_back: int = 0
    undelivered: int = 0
    retried: int = 0
    abandoned: int = 0
    discounted: int = 0

    @property
    def size(self) -> int:
        return len(self.vehicle_ids)

    @property
    def delivered(self) -> int:
        """Members that actually received the update this wave."""
        return self.size - self.undelivered

    @property
    def failures(self) -> int:
        """Failed vehicles of the wave: rejections plus deviations."""
        return self.rejected + self.deviating

    @property
    def effective_failures(self) -> int:
        """Failures that count towards the halt decision (discount applied)."""
        return max(self.failures - self.discounted, 0)

    @property
    def failure_rate(self) -> float:
        """Failures over wave size (0.0 for a degenerate empty wave)."""
        return self.failures / self.size if self.size else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"index": self.index, "kind": self.kind, "size": self.size,
                "admitted": self.admitted, "rejected": self.rejected,
                "deviating": self.deviating, "refined": self.refined,
                "rolled_back": self.rolled_back,
                "undelivered": self.undelivered, "retried": self.retried,
                "abandoned": self.abandoned, "discounted": self.discounted,
                "failure_rate": self.failure_rate}


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign run."""

    fleet_size: int
    batched: bool
    waves: List[WaveRecord] = field(default_factory=list)
    admitted: int = 0
    rejected: int = 0
    deviating: int = 0
    refined: int = 0
    rolled_back: int = 0
    #: Adversity accounting (all zero on an unperturbed campaign):
    #: ``undelivered`` counts deferred delivery *events* (a vehicle dropped
    #: twice before succeeding contributes two), ``retried`` counts
    #: carried-member wave slots, ``abandoned`` counts vehicles whose retry
    #: budget was exhausted (permanently not updated) and ``discounted``
    #: counts deviation reports excluded from halt decisions because the
    #: IDS suspected their sender.
    undelivered: int = 0
    retried: int = 0
    abandoned: int = 0
    discounted: int = 0
    halted: bool = False
    halted_wave: Optional[int] = None
    cache_hits: int = 0
    cache_misses: int = 0
    engine_reuse_rate: float = 0.0
    #: Per-shard execution telemetry of the pooled waves (one dict per
    #: executed shard: wave/shard indices, item count, worker pid, wall
    #: time, cache hit/miss deltas, store publish/absorb counts).  Purely
    #: informational — like the cache counters it varies with the worker
    #: layout and is excluded from canonical records and byte-parity.
    shard_telemetry: List[Dict[str, object]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """Whether the campaign ran its staged rollout to the end.

        Requires at least one executed wave and no halt: a degenerate
        campaign over an empty fleet (zero waves planned) reports neither
        ``completed`` nor ``halted`` — it did not successfully roll anything
        out, it had nothing to do.
        """
        return bool(self.waves) and not self.halted

    @property
    def vehicles_updated(self) -> int:
        """Vehicles running the update after the campaign (net of rollback)."""
        return self.admitted - self.rolled_back

    @property
    def update_coverage(self) -> float:
        """Updated fraction of the fleet (0.0, not NaN, for an empty fleet)."""
        return self.vehicles_updated / self.fleet_size if self.fleet_size else 0.0

    @property
    def acceptance_rate(self) -> float:
        """Admitted fraction of attempted admissions (0.0 when none ran)."""
        attempted = self.admitted + self.rejected
        return self.admitted / attempted if attempted else 0.0


#: Builtins a checkpoint pickle may reference by name.  Most builtin
#: containers (dict, list, tuple, str, numbers) are encoded as dedicated
#: opcodes and never go through ``find_class``; these are the few that do
#: and are harmless to construct.
_SAFE_BUILTINS = frozenset({"bytearray", "complex", "frozenset", "range",
                            "set", "slice"})


class _CheckpointUnpickler(pickle.Unpickler):
    """Allowlist unpickler behind :meth:`CampaignCheckpoint.load`.

    ``pickle.load`` on an untrusted file is arbitrary code execution — a
    crafted ``__reduce__`` payload runs *during* load, long before any
    ``isinstance`` check can reject it.  A checkpoint written by
    :meth:`CampaignCheckpoint.save` only ever references this package's own
    classes (campaign/vehicle/MCC/contract types — verified against real
    checkpoints) plus a handful of safe builtins, so everything else is
    refused at the ``find_class`` seam — the only place a pickle can name a
    callable.
    """

    def find_class(self, module: str, name: str):
        if module == "repro" or module.startswith("repro."):
            return super().find_class(module, name)
        if module == "builtins" and name in _SAFE_BUILTINS:
            return super().find_class(module, name)
        raise pickle.UnpicklingError(
            f"checkpoint pickle references forbidden global {module}.{name}")


@dataclass
class CampaignCheckpoint:
    """A campaign frozen at a wave boundary, ready to resume.

    Two producers write these: a policy **halt** freezes the campaign at
    the start of its halting wave (``result`` aggregates the waves executed
    *before* it; halting-wave members are stored at their pre-wave state
    regardless of the rollback policy, so the remediated wave re-runs from
    scratch), and :meth:`CampaignEngine.checkpoint
    <repro.fleet.engine.CampaignEngine.checkpoint>` serializes **any** wave
    boundary of a stepped campaign (all executed waves committed, nothing
    in flight — no rewind needed).  Either way the checkpoint is the
    serialized :class:`~repro.fleet.engine.CampaignState`: ``next_wave`` is
    the wave cursor, ``result`` the running aggregate, ``vehicle_states``
    every fleet vehicle's portable MCC snapshot and rollout flags, and
    ``cost_model`` the EWMA cost seeds (wall-time-only; the retry carry is
    structurally empty wherever checkpoints are legal — they require
    ``adversity=None``).  The checkpoint pickles cleanly —
    :meth:`save`/:meth:`load` move it across processes and runs — and
    :meth:`Campaign.run` with ``resume_from=`` continues where it stopped.
    """

    next_wave: int
    result: CampaignResult
    vehicle_states: List[VehicleState]
    #: EWMA integration-cost seeds by value-based shard-group label
    #: (absent in checkpoints pickled before the field existed; resume
    #: treats those as a cold model).
    cost_model: Dict[Hashable, float] = field(default_factory=dict)

    def save(self, path: str) -> None:
        """Pickle this checkpoint to ``path`` (atomic replace).

        The checkpoint is the recovery artifact of a halted campaign, so a
        crash mid-write must never leave a truncated file where a valid
        earlier checkpoint used to be: the pickle lands in a temp file that
        replaces ``path`` only once fully written.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(self, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    @staticmethod
    def load(path: str) -> "CampaignCheckpoint":
        """Load a checkpoint previously written by :meth:`save`.

        Unpickling goes through the restricted :class:`_CheckpointUnpickler`
        — a corrupt, foreign or malicious pickle raises
        :class:`CampaignError` instead of executing whatever its reduce
        payloads name.
        """
        with open(path, "rb") as stream:
            try:
                checkpoint = _CheckpointUnpickler(stream).load()
            except Exception as error:
                raise CampaignError(
                    f"{path!r} is not a loadable campaign checkpoint: "
                    f"{error}") from error
        if not isinstance(checkpoint, CampaignCheckpoint):
            raise CampaignError(f"{path!r} is not a campaign checkpoint")
        return checkpoint


def plan_waves(vehicles: Sequence[FleetVehicle],
               policy: WavePolicy) -> List[Tuple[str, List[FleetVehicle]]]:
    """Deterministic wave partition of a fleet: canary, staged, full.

    Every returned wave is non-empty; an empty fleet yields no waves (the
    degenerate campaign executes nothing) and a single-vehicle fleet yields
    exactly one (canary when enabled).  The last wave always covers the
    remaining fleet even when ``wave_fractions`` stops short of 1.0, and a
    canary at least as large as the fleet simply is the whole rollout.
    """
    ordered = list(vehicles)
    if not ordered:
        return []
    waves: List[Tuple[str, List[FleetVehicle]]] = []
    cursor = 0
    if policy.canary_size > 0:
        canary = ordered[:policy.canary_size]
        waves.append(("canary", canary))
        cursor = len(canary)
    remainder = ordered[cursor:]
    released = 0
    fractions = list(policy.wave_fractions)
    if not fractions or fractions[-1] < 1.0:
        fractions.append(1.0)
    for fraction in fractions:
        if released >= len(remainder):
            break
        target = min(len(remainder), max(released + 1,
                                         round(fraction * len(remainder))))
        wave = remainder[released:target]
        kind = "full" if target == len(remainder) else "wave"
        waves.append((kind, wave))
        released = target
    return waves


class Campaign:
    """Rolls one update out across a fleet in staged waves.

    Parameters
    ----------
    vehicles:
        The fleet, in rollout order.
    update_factory:
        Builds the per-vehicle :class:`ChangeRequest` (vehicles of different
        variants typically get variant-scaled contracts of the same logical
        update).
    policy:
        Staging/halting policy.
    analysis_cache:
        The shared cache used for batched admission.  Required when
        ``batch_admission`` is on; for the full effect the fleet should have
        been generated with the same cache.
    batch_admission:
        Prefetch every wave's candidate task sets through
        ``analysis_cache.analyse_many`` before the per-vehicle integrations.
    failure_injection_rate:
        Probability that an updated vehicle's observed execution time exceeds
        its contracted budget (simulated field failure).
    feedback_seed:
        Seed of the simulated monitor feedback stream; per-vehicle draws are
        derived from it and the vehicle index, so feedback is identical for
        batched and sequential admission.
    workers:
        Size of the sharded execution pool.  ``1`` (the default) runs
        everything in-process; ``> 1`` ships each wave's new representative
        integrations to a ``multiprocessing`` pool (requires
        ``batch_admission`` — sharding *is* the deduped admission path) and
        produces byte-identical wave records, verdicts and vehicle state
        (only the informational parent-side cache counters vary with the
        worker layout).  When the campaign itself runs
        inside a daemonic pool worker (which may not fork children, e.g.
        under the parallel experiment runner), shard execution transparently
        falls back to in-process — same verdicts, only wall time differs.
    cache_path:
        Optional on-disk snapshot of the shared analysis cache.  Loaded (if
        present) at run start and rewritten when the run ends — halt
        included — so whole re-runs and resumed campaigns warm-start from
        every previously derived analysis.  (Within a run, wave N+1
        warm-starts from wave N through the live caches: the parent's, and
        each worker's fork-inherited or snapshot-seeded copy.)  Requires an
        ``analysis_cache``.
    checkpoint_path:
        Where to write a :class:`CampaignCheckpoint` when the campaign
        halts (also kept in memory as :attr:`last_checkpoint`).
    batch_kernel:
        Route the shared cache's cold-miss batches through the vectorized
        lockstep busy-window kernel
        (:class:`~repro.analysis.batch.BatchResponseTimeAnalysis`).
        Verdicts are bit-identical either way; only the wave-prefetch wall
        time changes.  Requires an ``analysis_cache``.
    shard_planner:
        ``"cost"`` (the default) partitions pooled waves with the
        cost-model planner (:func:`~repro.fleet.shard.plan_chunks`):
        congruence-structure co-location, chunk costs balanced on measured
        per-group integration times from prior waves.  ``"round_robin"``
        uses the deterministic :func:`~repro.fleet.shard.plan_shards`
        fallback.  Layout moves wall time only, never verdicts.
    steal:
        Dispatch shard tasks through ``Pool.imap_unordered`` so idle
        workers pull the next chunk the moment they finish (work
        stealing).  ``False`` restores the barrier-style ``Pool.map``
        dispatch of one static shard per worker.
    start_method:
        ``multiprocessing`` start method of the shard pool (``"fork"``,
        ``"spawn"``, ``"forkserver"`` or ``None`` for the platform
        default).  Spawn-started workers cannot inherit the parent cache
        copy-on-write; they warm-start from ``cache_path`` and/or
        ``cache_store`` instead — verdicts are identical either way.
    cache_store:
        Directory of an append-only
        :class:`~repro.analysis.cache_store.SegmentStore` shared by the
        parent and every worker.  Workers publish their newly derived
        analyses to it mid-wave and absorb their siblings' between chunks;
        the parent seeds it with the provisioning analyses before the pool
        starts and folds everything back at run end.  Mutually exclusive
        with ``cache_path`` (one durable warm-start medium per campaign);
        requires an ``analysis_cache``.
    adversity:
        Optional :class:`~repro.fleet.adversity.AdversityModel` perturbing
        the wave loop: lossy update delivery (undelivered vehicles carry
        into later waves, extra ``straggler`` waves run after the planned
        rollout until every retry budget is spent), forged monitor feedback
        graded by an IDS (suspected senders' deviations are recorded but
        *discounted* from the halt decision) and perturbed admission inputs
        (e.g. thermally inflated WCETs).  All adversity decisions execute
        in the parent in wave order from seeded streams, so perturbed
        campaigns keep the byte-parity guarantee across worker layouts.
        Mutually exclusive with ``resume_from`` — a delivery-perturbed
        staging cannot be validated against the static wave plan.
    tracer:
        Optional :class:`~repro.observability.tracer.CampaignTracer`.  When
        set, the wave loop, the shard executor, the adversity seams and the
        shared analysis cache report structured events into it (flushed to
        its JSONL path at run end); see ``docs/OBSERVABILITY.md`` for the
        event taxonomy.  Tracing is strictly read-only: traced campaigns
        produce field-for-field identical results to untraced ones at any
        worker count, and ``tracer=None`` (the default) leaves every
        instrumentation site a single attribute test — the zero-overhead
        path.
    """

    def __init__(self, vehicles: Sequence[FleetVehicle],
                 update_factory: UpdateFactory,
                 policy: Optional[WavePolicy] = None,
                 analysis_cache: Optional[AnalysisCache] = None,
                 batch_admission: bool = True,
                 failure_injection_rate: float = 0.0,
                 feedback_seed: int = 0,
                 workers: int = 1,
                 cache_path: Optional[str] = None,
                 checkpoint_path: Optional[str] = None,
                 batch_kernel: bool = False,
                 shard_planner: str = "cost",
                 steal: bool = True,
                 start_method: Optional[str] = None,
                 cache_store: Optional[str] = None,
                 adversity: Optional[AdversityModel] = None,
                 tracer: Optional[CampaignTracer] = None) -> None:
        if not 0.0 <= failure_injection_rate <= 1.0:
            raise CampaignError("failure_injection_rate must be in [0, 1]")
        if batch_admission and analysis_cache is None:
            raise CampaignError("batched admission needs a shared analysis cache")
        if workers < 1:
            raise CampaignError("workers must be at least 1")
        if workers > 1 and not batch_admission:
            raise CampaignError("sharded execution (workers > 1) requires "
                                "batched admission — sharding runs one "
                                "integration per equivalence group")
        if cache_path is not None and analysis_cache is None:
            raise CampaignError("cache_path needs an analysis cache to snapshot")
        if batch_kernel and analysis_cache is None:
            raise CampaignError("batch_kernel needs a shared analysis cache")
        if shard_planner not in ("cost", "round_robin"):
            raise CampaignError("shard_planner must be 'cost' or "
                                f"'round_robin', not {shard_planner!r}")
        if start_method not in (None, "fork", "spawn", "forkserver"):
            raise CampaignError(f"unknown start_method {start_method!r}")
        if cache_store is not None and analysis_cache is None:
            raise CampaignError("cache_store needs an analysis cache to share")
        if cache_store is not None and cache_path is not None:
            raise CampaignError("cache_path and cache_store are mutually "
                                "exclusive — pick one warm-start medium")
        if batch_kernel:
            analysis_cache.engine.batch_kernel = True
        self.batch_kernel = batch_kernel
        self.vehicles = list(vehicles)
        self.update_factory = update_factory
        self.policy = policy if policy is not None else WavePolicy()
        self.analysis_cache = analysis_cache
        self.batch_admission = batch_admission
        self.failure_injection_rate = failure_injection_rate
        self.feedback_seed = feedback_seed
        self.workers = workers
        self.cache_path = cache_path
        self.checkpoint_path = checkpoint_path
        self.shard_planner = shard_planner
        self.steal = steal
        self.start_method = start_method
        self.cache_store = cache_store
        self.adversity = adversity
        self.tracer = tracer
        if tracer is not None and analysis_cache is not None:
            # The shared cache reports its lookup/merge events into the
            # same trace (observation only; never pickled into workers).
            analysis_cache.tracer = tracer
        #: The checkpoint written at the most recent halt (None before).
        self.last_checkpoint: Optional[CampaignCheckpoint] = None
        #: EWMA of measured integration seconds per shard-group label,
        #: carried across waves and runs of this campaign object.  Seeds
        #: the cost-model planner; wall-time-only by construction.
        self._cost_model: Dict[Hashable, float] = {}
        #: Parent-side handle on ``cache_store`` plus the keys known to be
        #: durable there (so run-end publication ships only the delta).
        self._parent_store: Optional[SegmentStore] = None
        self._store_keys: set = set()
        #: One-shot latch of :meth:`run` (see its docstring).
        self._ran = False

    # -- execution ---------------------------------------------------------

    def run(self, resume_from: Optional[CampaignCheckpoint] = None
            ) -> CampaignResult:
        """Execute the campaign and return its aggregate result.

        With ``resume_from`` the fleet is first rewound to the checkpoint
        (halting-wave members to their pre-wave state) and execution
        continues at the checkpointed wave; the returned result aggregates
        the checkpointed waves plus everything executed now.

        ``run()`` is **one-shot**: a finished (or failed) run leaves
        per-run state behind — :attr:`last_checkpoint`, EWMA cost seeds,
        adopted vehicle models, cache-counter baselines — so re-entering
        the same instance would silently compute something other than a
        fresh campaign.  A second call raises :class:`CampaignError`;
        construct a new ``Campaign`` (passing ``resume_from=`` to continue
        a checkpointed rollout) instead.  Wave-by-wave execution with
        explicit boundaries is available through
        :class:`~repro.fleet.engine.CampaignEngine` directly.
        """
        if self._ran:
            raise CampaignError(
                "this Campaign instance already ran; run() is one-shot "
                "because a run mutates per-run state (last_checkpoint, "
                "cost-model seeds, vehicle models) — construct a fresh "
                "Campaign, with resume_from= to continue a checkpoint")
        self._ran = True
        from repro.fleet.engine import CampaignEngine
        engine = CampaignEngine(self, resume_from=resume_from)
        try:
            while not engine.done:
                engine.step()
        except BaseException:
            # The error path must never leak the worker pool; caches and
            # the trace stay unflushed, exactly as before the engine split.
            engine.close()
            raise
        return engine.finalize()

