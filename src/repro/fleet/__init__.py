"""Fleet-scale update campaigns (the MCC at production scale).

The paper's Multi-Change Controller admits in-field updates per vehicle; a
production deployment serves *fleets* — the same logical update rolled out to
many vehicles with heterogeneous platform models.  This package provides the
two halves of that workload:

* :mod:`repro.fleet.vehicle` — deterministic generation of a heterogeneous
  fleet (variant-clustered platforms, scaled WCETs, differing CAN topologies
  and baseline component sets), each vehicle with its own MCC.
* :mod:`repro.fleet.campaign` — the staged rollout engine: canary and
  percentage waves, batched admission through a shared analysis cache and
  the incremental CPA engine, per-vehicle monitor/deviation feedback between
  waves, and halt/rollback when a wave's failure rate crosses the policy
  threshold.

Scenario E10 (``repro.scenarios.fleet_campaign``) wires both into the
experiment registry.
"""

from repro.fleet.vehicle import (
    FleetSpec,
    FleetVehicle,
    VehicleState,
    VehicleVariant,
    build_vehicle_platform,
    generate_fleet,
    generate_variants,
    variant_contracts,
)
from repro.fleet.campaign import (
    Campaign,
    CampaignCheckpoint,
    CampaignError,
    CampaignResult,
    WavePolicy,
    WaveRecord,
    plan_waves,
)
from repro.fleet.shard import (
    ShardItem,
    ShardResult,
    ShardTask,
    ShardVerdict,
    execute_shard,
    plan_shards,
)

__all__ = [
    "FleetSpec",
    "FleetVehicle",
    "VehicleState",
    "VehicleVariant",
    "build_vehicle_platform",
    "generate_fleet",
    "generate_variants",
    "variant_contracts",
    "Campaign",
    "CampaignCheckpoint",
    "CampaignError",
    "CampaignResult",
    "WavePolicy",
    "WaveRecord",
    "plan_waves",
    "ShardItem",
    "ShardResult",
    "ShardTask",
    "ShardVerdict",
    "execute_shard",
    "plan_shards",
]
