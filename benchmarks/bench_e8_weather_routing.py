"""E8 (Section V): weather-aware route planning under uncertainty.

Regenerates the alpine-pass-vs-detour decision: the self-aware planner,
knowing its own degraded capability in snow/fog, abandons the shorter pass
beyond a crossover forecast severity, while the weather-agnostic baseline
keeps choosing it.

All runs drive through the scenario registry (``repro.experiments``); the
crossover search keeps using the scenario module's dedicated helper.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.experiments import run_scenario
from repro.scenarios.weather_routing import crossover_severity


@pytest.mark.benchmark(group="e8-weather-routing")
def test_e8_severity_sweep(benchmark):
    """Route choice of the aware vs baseline planner across severities."""
    severities = [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]

    def sweep():
        return [run_scenario("weather_routing", severity=s) for s in severities]

    records = benchmark(sweep)
    rows = [{"severity": r["severity"],
             "aware_route_km": r["aware_route_km"],
             "aware_detour": r["aware_takes_detour"],
             "baseline_route_km": r["baseline_route_km"],
             "baseline_detour": r["baseline_takes_detour"],
             "aware_exposure": r["aware_exposure"],
             "baseline_exposure": r["baseline_exposure"]}
            for r in records]
    print_table("E8: route choice vs forecast severity (self-aware vs baseline)", rows)
    # Shape: a crossover exists; beyond it the aware planner detours while the
    # baseline never does, and the aware planner's adverse-weather exposure is
    # never higher than the baseline's.
    assert not records[0]["aware_takes_detour"]
    assert records[-1]["aware_takes_detour"]
    assert not any(r["baseline_takes_detour"] for r in records)
    assert all(r["aware_exposure"] <= r["baseline_exposure"] + 1e-9 for r in records)


@pytest.mark.benchmark(group="e8-weather-routing")
def test_e8_crossover_depends_on_risk_aversion(benchmark):
    """Ablation: higher risk aversion moves the crossover to milder forecasts."""
    aversions = [0.25, 1.0, 3.0]

    def sweep():
        crossovers = []
        for aversion in aversions:
            severity = None
            for step in range(0, 21):
                candidate = step / 20
                record = run_scenario("weather_routing", severity=candidate,
                                      risk_aversion=aversion)
                if record["aware_takes_detour"]:
                    severity = candidate
                    break
            crossovers.append(severity)
        return crossovers

    crossovers = benchmark(sweep)
    rows = [{"risk_aversion": a, "crossover_severity": c}
            for a, c in zip(aversions, crossovers)]
    print_table("E8 ablation: detour crossover vs risk aversion", rows)
    observed = [c for c in crossovers if c is not None]
    assert observed == sorted(observed, reverse=True)


@pytest.mark.benchmark(group="e8-weather-routing")
def test_e8_crossover_search(benchmark):
    """Find the lowest severity at which the aware planner detours."""
    crossover = benchmark(crossover_severity, 0.05)
    print(f"\nE8: the self-aware planner abandons the alpine pass from severity {crossover}")
    assert crossover is not None and 0.05 <= crossover <= 0.8
