"""CAN frame model.

Classical CAN 2.0A/B data and remote frames with 11-bit or 29-bit
identifiers.  Frame lengths are computed bit-accurately (including the
worst-case stuff-bit estimate) because the bus model derives transmission
times from them, and because arbitration is decided by the identifier value
(lower identifier = higher priority) exactly as on the physical bus.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple


class FrameType(enum.Enum):
    """CAN frame types relevant to the data path."""

    DATA = "data"
    REMOTE = "remote"
    ERROR = "error"


MAX_STANDARD_ID = 0x7FF
MAX_EXTENDED_ID = 0x1FFF_FFFF
MAX_PAYLOAD_BYTES = 8


@dataclass(frozen=True)
class CanFrame:
    """A CAN frame as seen by controllers and the bus.

    Attributes
    ----------
    can_id:
        Identifier; arbitration priority (lower wins).
    payload:
        Data bytes (0-8 for classical CAN).
    extended:
        29-bit identifier if True, 11-bit otherwise.
    frame_type:
        DATA or REMOTE (ERROR frames are generated internally by the bus).
    source:
        Name of the sending node/VF, for tracing and intrusion detection.
    timestamp:
        Creation time at the sender (filled by the controller).
    """

    can_id: int
    payload: bytes = b""
    extended: bool = False
    frame_type: FrameType = FrameType.DATA
    source: str = ""
    timestamp: float = 0.0

    def __post_init__(self) -> None:
        limit = MAX_EXTENDED_ID if self.extended else MAX_STANDARD_ID
        if not 0 <= self.can_id <= limit:
            raise ValueError(
                f"CAN id {self.can_id:#x} out of range for "
                f"{'extended' if self.extended else 'standard'} frame")
        if len(self.payload) > MAX_PAYLOAD_BYTES:
            raise ValueError(f"payload too long: {len(self.payload)} > {MAX_PAYLOAD_BYTES}")
        if self.frame_type == FrameType.REMOTE and self.payload:
            raise ValueError("remote frames carry no payload")

    @property
    def dlc(self) -> int:
        """Data length code."""
        return len(self.payload)

    @property
    def bit_length(self) -> int:
        """Worst-case frame length in bits (including stuff bits)."""
        return _BIT_LENGTHS[(len(self.payload), self.extended)]

    def arbitration_key(self) -> Tuple[int, int]:
        """Sort key implementing CAN arbitration.

        Standard frames win against extended frames with the same leading
        identifier bits; we approximate this with (id, extended) which is
        exact for disjoint id spaces and deterministic otherwise.
        """
        return (self.can_id, 1 if self.extended else 0)

    def _copy(self, source: str, timestamp: float) -> "CanFrame":
        # Clones of an already-validated frame skip __init__/__post_init__:
        # frames are re-stamped on every controller hop, which makes this the
        # hottest allocation of the CAN data path.
        clone = object.__new__(CanFrame)
        set_attr = object.__setattr__
        set_attr(clone, "can_id", self.can_id)
        set_attr(clone, "payload", self.payload)
        set_attr(clone, "extended", self.extended)
        set_attr(clone, "frame_type", self.frame_type)
        set_attr(clone, "source", source)
        set_attr(clone, "timestamp", timestamp)
        return clone

    def with_timestamp(self, timestamp: float) -> "CanFrame":
        return self._copy(self.source, timestamp)

    def with_source(self, source: str) -> "CanFrame":
        return self._copy(source, self.timestamp)


def frame_bit_length(dlc: int, extended: bool = False, worst_case_stuffing: bool = True) -> int:
    """Bit length of a classical CAN data frame.

    Base frame: SOF(1) + ID(11) + RTR(1) + IDE/r0(2) + DLC(4) + data(8*dlc)
    + CRC(15) + CRC del(1) + ACK(2) + EOF(7) + IFS(3).
    Extended frames add SRR/IDE and the 18 extra identifier bits (+20 bits
    subject to stuffing).  Worst-case stuff bits add one bit per four bits of
    the stuffable region (SOF through CRC).
    """
    if not 0 <= dlc <= MAX_PAYLOAD_BYTES:
        raise ValueError(f"invalid DLC {dlc}")
    if extended:
        # SOF + ID(29) + SRR + IDE + RTR + r1 + r0 + DLC + data + CRC
        stuffable = 1 + 29 + 1 + 1 + 1 + 2 + 4 + 8 * dlc + 15
    else:
        stuffable = 1 + 11 + 1 + 2 + 4 + 8 * dlc + 15
    fixed = 1 + 2 + 7 + 3  # CRC delimiter + ACK + EOF + interframe space
    stuff_bits = (stuffable - 1) // 4 if worst_case_stuffing else 0
    return stuffable + stuff_bits + fixed


#: Worst-case bit lengths for every (dlc, extended) combination, so the hot
#: transmission-time path is a dictionary lookup instead of re-derived
#: arithmetic per frame.
_BIT_LENGTHS = {(dlc, extended): frame_bit_length(dlc, extended=extended)
                for dlc in range(MAX_PAYLOAD_BYTES + 1)
                for extended in (False, True)}


def transmission_time(dlc: int, bitrate_bps: float, extended: bool = False) -> float:
    """Time to transmit one frame at the given bitrate (seconds)."""
    if bitrate_bps <= 0:
        raise ValueError("bitrate must be positive")
    return frame_bit_length(dlc, extended=extended) / bitrate_bps
