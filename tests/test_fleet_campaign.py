"""Fleet generation, staged campaign waves, rollback and the E10 scenario."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cache import AnalysisCache
from repro.experiments.registry import run_scenario
from repro.fleet.campaign import (Campaign, CampaignError, WavePolicy,
                                  WaveRecord, plan_waves)
from repro.fleet.vehicle import (FleetSpec, FleetVehicle, generate_fleet,
                                 generate_variants, variant_contracts)
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import (build_update_contract,
                                            run_fleet_campaign_scenario)


def small_spec(size: int = 8, **overrides) -> FleetSpec:
    defaults = dict(size=size, seed=7, num_variants=3, extra_components=2)
    defaults.update(overrides)
    return FleetSpec(**defaults)


def update_factory_for(contracts_by_variant=None):
    """A per-variant ADD update factory (one shared contract per variant)."""
    contracts = contracts_by_variant if contracts_by_variant is not None else {}

    def factory(vehicle: FleetVehicle) -> ChangeRequest:
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    return factory


class TestFleetGeneration:
    """Deterministic heterogeneous fleets."""

    def test_fleet_is_deterministic(self):
        fleet_a = generate_fleet(small_spec())
        fleet_b = generate_fleet(small_spec())
        assert len(fleet_a) == len(fleet_b) == 8
        for a, b in zip(fleet_a, fleet_b):
            assert a.variant == b.variant
            assert a.mcc.version == b.mcc.version
            assert sorted(a.mcc.model.components()) == sorted(b.mcc.model.components())
            assert a.mcc.model.mapping == b.mcc.model.mapping

    def test_variants_cluster_vehicles(self):
        fleet = generate_fleet(small_spec(size=9, num_variants=3))
        variants = {vehicle.variant.index for vehicle in fleet}
        assert variants == {0, 1, 2}
        same = [v for v in fleet if v.variant.index == 0]
        assert len(same) == 3
        reference = sorted(same[0].mcc.model.components())
        for vehicle in same[1:]:
            assert sorted(vehicle.mcc.model.components()) == reference

    def test_heterogeneity_spreads_wcet_factors(self):
        variants = generate_variants(small_spec(size=20, num_variants=8,
                                                heterogeneity=0.3))
        factors = [variant.wcet_factor for variant in variants]
        assert max(factors) - min(factors) > 0.05
        assert all(0.7 <= factor <= 1.3 for factor in factors)

    def test_variant_contracts_respect_capacity_budget(self):
        spec = small_spec(extra_components=30)
        for variant in generate_variants(spec):
            contracts = variant_contracts(variant, spec)
            total = sum(c.timing.utilization for c in contracts if c.timing)
            assert total <= variant.num_processors * variant.capacity + 1e-9

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            FleetSpec(size=-1)
        with pytest.raises(ValueError):
            FleetSpec(heterogeneity=1.5)
        with pytest.raises(ValueError):
            FleetSpec(num_variants=0)
        with pytest.raises(ValueError):
            FleetSpec(min_processors=3, max_processors=2)


class TestWavePlanning:
    """Canary/percentage/full staging, including degenerate fleets."""

    def test_default_staging(self):
        fleet = generate_fleet(small_spec(size=20))
        waves = plan_waves(fleet, WavePolicy(canary_size=2,
                                             wave_fractions=(0.1, 0.5, 1.0)))
        kinds = [kind for kind, _ in waves]
        sizes = [len(wave) for _, wave in waves]
        assert kinds == ["canary", "wave", "wave", "full"]
        assert sizes[0] == 2
        assert sum(sizes) == 20
        assert all(size >= 1 for size in sizes)
        flattened = [vehicle.vehicle_id for _, wave in waves for vehicle in wave]
        assert flattened == [vehicle.vehicle_id for vehicle in fleet]

    def test_empty_fleet_yields_no_waves(self):
        assert plan_waves([], WavePolicy()) == []

    def test_single_vehicle_fleet(self):
        fleet = generate_fleet(small_spec(size=1))
        waves = plan_waves(fleet, WavePolicy(canary_size=2))
        assert [(kind, len(wave)) for kind, wave in waves] == [("canary", 1)]
        waves = plan_waves(fleet, WavePolicy(canary_size=0))
        assert [(kind, len(wave)) for kind, wave in waves] == [("full", 1)]

    def test_short_fraction_list_still_covers_fleet(self):
        fleet = generate_fleet(small_spec(size=12))
        waves = plan_waves(fleet, WavePolicy(canary_size=1, wave_fractions=(0.2,)))
        assert sum(len(wave) for _, wave in waves) == 12
        assert waves[-1][0] == "full"

    def test_policy_validation(self):
        with pytest.raises(CampaignError):
            WavePolicy(canary_size=-1)
        with pytest.raises(CampaignError):
            WavePolicy(wave_fractions=(0.5, 0.2))
        with pytest.raises(CampaignError):
            WavePolicy(wave_fractions=(0.0,))
        with pytest.raises(CampaignError):
            WavePolicy(max_failure_rate=1.5)

    def test_canary_at_least_fleet_size_is_the_whole_rollout(self):
        fleet = generate_fleet(small_spec(size=3))
        waves = plan_waves(fleet, WavePolicy(canary_size=5))
        assert [(kind, len(wave)) for kind, wave in waves] == [("canary", 3)]


class TestHaltSemantics:
    """The halt boundary: strict tolerance, zero tolerance, float safety.

    ``max_failure_rate`` is the highest *tolerated* wave failure rate: a
    wave exactly at the threshold passes, one vehicle beyond it halts, a
    zero threshold halts on any failure and a threshold of 1.0 never halts.
    All four corners are pinned here because the campaign's whole point is
    sound accept/reject decisions.
    """

    def test_exact_threshold_wave_is_tolerated(self):
        policy = WavePolicy(max_failure_rate=0.3)
        assert not policy.halts(failures=3, size=10)
        assert policy.halts(failures=4, size=10)

    def test_exact_threshold_survives_float_rounding(self):
        """The tolerated count ``max_failure_rate * size`` can round *below*
        the mathematically equal integer (e.g. ``(1/49) * 49 < 1``), so a
        bare ``failures > rate * size`` comparison would halt an
        exactly-at-threshold wave; the comparison slack must absorb it."""
        rate = 1 / 49
        assert rate * 49 < 1  # the trap the implementation must dodge
        assert not WavePolicy(max_failure_rate=rate).halts(failures=1, size=49)
        assert not WavePolicy(max_failure_rate=rate).halts(failures=3, size=147)
        assert WavePolicy(max_failure_rate=rate).halts(failures=2, size=49)
        assert not WavePolicy(max_failure_rate=0.3).halts(failures=3, size=10)
        assert not WavePolicy(max_failure_rate=0.2).halts(failures=1, size=5)
        assert not WavePolicy(max_failure_rate=0.1).halts(failures=10, size=100)

    def test_zero_tolerance_halts_on_any_failure(self):
        policy = WavePolicy(max_failure_rate=0.0)
        assert policy.halts(failures=1, size=1000)
        assert policy.halts(failures=1, size=1)
        assert not policy.halts(failures=0, size=1000)  # clean wave passes

    def test_full_tolerance_never_halts(self):
        policy = WavePolicy(max_failure_rate=1.0)
        assert not policy.halts(failures=10, size=10)
        assert not policy.halts(failures=1, size=1)

    def test_degenerate_sizes_never_halt(self):
        policy = WavePolicy(max_failure_rate=0.5)
        assert not policy.halts(failures=0, size=0)
        assert not policy.halts(failures=0, size=10)

    def test_empty_wave_record_failure_rate_is_zero(self):
        record = WaveRecord(index=0, kind="wave", vehicle_ids=[])
        assert record.size == 0
        assert record.failures == 0
        assert record.failure_rate == 0.0

    def test_campaign_halts_at_exact_threshold_plus_one(self):
        """End-to-end: with 100% injection a zero-tolerance canary halts at
        its very first deviating vehicle."""
        spec = small_spec()
        cache = AnalysisCache()
        fleet = generate_fleet(spec, analysis_cache=cache)
        result = Campaign(fleet, update_factory_for(), analysis_cache=cache,
                          policy=WavePolicy(canary_size=2, max_failure_rate=0.0),
                          failure_injection_rate=1.0).run()
        assert result.halted and result.halted_wave == 0
        assert result.waves[0].failures >= 1


class TestCampaign:
    """The staged rollout engine."""

    def run_campaign(self, fleet_kwargs=None, **campaign_kwargs):
        spec = small_spec(**(fleet_kwargs or {}))
        batched = campaign_kwargs.pop("batch_admission", True)
        cache = AnalysisCache() if batched else None
        fleet = generate_fleet(spec, analysis_cache=cache)
        campaign = Campaign(fleet, update_factory_for(), analysis_cache=cache,
                            batch_admission=batched, **campaign_kwargs)
        return fleet, campaign.run()

    def test_clean_rollout_updates_whole_fleet(self):
        fleet, result = self.run_campaign()
        assert result.completed and not result.halted
        assert result.admitted == result.vehicles_updated == len(fleet)
        assert result.rejected == result.deviating == result.rolled_back == 0
        assert result.update_coverage == 1.0
        assert all(vehicle.updated for vehicle in fleet)
        assert all("nav_assist" in vehicle.mcc.model for vehicle in fleet)

    def test_empty_fleet_campaign_is_neither_completed_nor_halted(self):
        """A zero-vehicle campaign plans no waves: it must not report a
        "completed" rollout (it rolled nothing out), must not divide by
        zero anywhere, and must not halt either."""
        cache = AnalysisCache()
        result = Campaign([], update_factory_for(), analysis_cache=cache).run()
        assert result.fleet_size == 0
        assert result.waves == []
        assert not result.completed
        assert not result.halted and result.halted_wave is None
        assert result.update_coverage == 0.0
        assert result.acceptance_rate == 0.0
        assert result.vehicles_updated == 0

    def test_single_vehicle_campaign(self):
        fleet, result = self.run_campaign(fleet_kwargs={"size": 1})
        assert len(result.waves) == 1
        assert result.admitted == 1

    def test_batched_and_sequential_verdicts_identical(self):
        _, batched = self.run_campaign(batch_admission=True,
                                       failure_injection_rate=0.4)
        _, sequential = self.run_campaign(batch_admission=False,
                                          failure_injection_rate=0.4)
        assert [w.to_dict() for w in batched.waves] == \
            [w.to_dict() for w in sequential.waves]
        for field in ("admitted", "rejected", "deviating", "rolled_back",
                      "halted", "halted_wave"):
            assert getattr(batched, field) == getattr(sequential, field)

    def test_all_rejected_wave_halts_without_rollback_work(self):
        """An update nobody can host: every wave member rejects, the campaign
        halts at the canary and there is nothing to roll back."""
        spec = small_spec()
        cache = AnalysisCache()
        fleet = generate_fleet(spec, analysis_cache=cache)
        oversized = {variant.index: build_update_contract(1.0, utilization=0.95)
                     for variant in {v.variant.index: v.variant for v in fleet}.values()}

        def factory(vehicle):
            contract = oversized[vehicle.variant.index]
            return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                 component=contract.component, contract=contract)

        result = Campaign(fleet, factory, analysis_cache=cache).run()
        assert result.halted and result.halted_wave == 0
        assert result.admitted == 0
        assert result.rolled_back == 0
        assert result.waves[0].failure_rate == 1.0
        assert not any(vehicle.updated for vehicle in fleet)

    def test_failure_injection_halts_and_rolls_back(self):
        fleet, result = self.run_campaign(failure_injection_rate=1.0)
        assert result.halted and result.halted_wave == 0
        assert result.deviating == result.waves[0].admitted
        assert result.rolled_back == result.waves[0].admitted
        assert result.vehicles_updated == 0
        canary = fleet[0]
        assert canary.rolled_back and not canary.updated
        assert "nav_assist" not in canary.mcc.model

    def test_rollback_restores_model_and_version(self):
        spec = small_spec(size=2)
        cache = AnalysisCache()
        fleet = generate_fleet(spec, analysis_cache=cache)
        before = [(v.mcc.version, sorted(v.mcc.model.components())) for v in fleet]
        Campaign(fleet, update_factory_for(), analysis_cache=cache,
                 policy=WavePolicy(canary_size=2, max_failure_rate=0.0),
                 failure_injection_rate=1.0).run()
        after = [(v.mcc.version, sorted(v.mcc.model.components())) for v in fleet]
        assert after == before

    def test_halt_without_rollback_keeps_updates(self):
        fleet, result = self.run_campaign(
            policy=WavePolicy(rollback_on_halt=False, max_failure_rate=0.0),
            failure_injection_rate=1.0)
        assert result.halted
        assert result.rolled_back == 0
        assert result.vehicles_updated == result.waves[0].admitted

    def test_refine_on_deviation_reintegrates_observed_wcets(self):
        fleet, result = self.run_campaign(
            policy=WavePolicy(refine_on_deviation=True, max_failure_rate=1.0,
                              rollback_on_halt=False),
            failure_injection_rate=1.0)
        assert result.completed
        assert result.deviating > 0
        assert result.refined > 0

    def test_cache_counters_report_campaign_traffic_only(self):
        spec = small_spec()
        cache = AnalysisCache()
        fleet = generate_fleet(spec, analysis_cache=cache)
        hits_before, misses_before = cache.hits, cache.misses
        assert hits_before + misses_before > 0  # provisioning used the cache
        result = Campaign(fleet, update_factory_for(), analysis_cache=cache).run()
        assert result.cache_hits == cache.hits - hits_before
        assert result.cache_misses == cache.misses - misses_before

    def test_campaign_validation(self):
        with pytest.raises(CampaignError):
            Campaign([], update_factory_for(), analysis_cache=None,
                     batch_admission=True)
        with pytest.raises(CampaignError):
            Campaign([], update_factory_for(), analysis_cache=AnalysisCache(),
                     failure_injection_rate=2.0)
        with pytest.raises(CampaignError):
            Campaign([], update_factory_for(), analysis_cache=AnalysisCache(),
                     workers=0)
        with pytest.raises(CampaignError):
            # Sharding runs one integration per equivalence group; it cannot
            # reproduce the unbatched per-vehicle baseline.
            Campaign([], update_factory_for(), analysis_cache=AnalysisCache(),
                     batch_admission=False, workers=2)
        with pytest.raises(CampaignError):
            # A cache snapshot path without a cache to snapshot is a typo.
            Campaign([], update_factory_for(), analysis_cache=None,
                     batch_admission=False, cache_path="cache.pkl")


class TestFleetScenario:
    """The registered E10 scenario."""

    def test_fleet_50_deterministic_under_fixed_seed(self):
        """Acceptance criterion: a >= 50-vehicle campaign is a pure function
        of its seed, byte-identical across runs."""
        record_a = run_scenario("fleet_update_campaign", fleet_size=50, seed=3)
        record_b = run_scenario("fleet_update_campaign", fleet_size=50, seed=3)
        assert json.dumps(record_a, sort_keys=True) == \
            json.dumps(record_b, sort_keys=True)
        assert record_a["fleet_size"] == 50
        assert record_a["admitted"] + record_a["rejected"] >= 50 \
            or record_a["halted"]

    def test_batching_mode_does_not_change_the_record(self):
        base = dict(fleet_size=12, num_variants=4, extra_components=3, seed=1,
                    failure_injection_rate=0.5)
        batched = run_scenario("fleet_update_campaign", batch_admission=True, **base)
        sequential = run_scenario("fleet_update_campaign", batch_admission=False,
                                  **base)
        for record in (batched, sequential):
            record.pop("batched")
        assert batched == sequential

    def test_scenario_runs_with_rte_deployment(self):
        result = run_fleet_campaign_scenario(fleet_size=4, num_variants=2,
                                             extra_components=2, deploy=True)
        assert result.admitted == 4

    def test_wave_fractions_knob_coerced_from_json(self):
        record = run_scenario("fleet_update_campaign", fleet_size=6,
                              num_variants=2, extra_components=2,
                              canary_size=1, wave_fractions=[0.5, 1.0])
        assert [wave["kind"] for wave in record["waves"]] == \
            ["canary", "wave", "full"]
