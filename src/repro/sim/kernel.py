"""Discrete-event simulation kernel.

The kernel models time as a float (seconds by convention, although callers
may use any consistent unit).  Events are callbacks scheduled at absolute
times; ties are broken first by an integer priority (lower runs first) and
then by insertion order, which keeps runs fully deterministic.

Two usage styles are supported:

* **Callback style** -- ``sim.schedule(t, fn)`` or ``sim.schedule_in(dt, fn)``.
* **Process style** -- subclasses of :class:`Process` implement ``step`` and
  are re-scheduled periodically; this is how periodic tasks, monitors and
  controllers are expressed throughout the library.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


@dataclass(order=True)
class Event:
    """A single scheduled event.

    Events compare by ``(time, priority, seq)`` so that the event queue pops
    them in deterministic order.  The callback and its metadata do not take
    part in the comparison.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[["Simulator"], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[["Simulator"], None],
             priority: int = 0, name: str = "") -> Event:
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at time NaN")
        event = Event(time=time, priority=priority, seq=next(self._counter),
                      callback=callback, name=name)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """Discrete-event simulator with a monotonic clock.

    Parameters
    ----------
    start_time:
        Initial simulation time (default 0.0).
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._queue = EventQueue()
        self._now = start_time
        self._running = False
        self._stopped = False
        self._processes: List[Process] = []
        self.stats: Dict[str, Any] = {"events_executed": 0}

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # -- scheduling -------------------------------------------------------

    def schedule(self, time: float, callback: Callable[["Simulator"], None],
                 priority: int = 0, name: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}")
        return self._queue.push(time, callback, priority=priority, name=name)

    def schedule_in(self, delay: float, callback: Callable[["Simulator"], None],
                    priority: int = 0, name: str = "") -> Event:
        """Schedule ``callback`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, priority=priority, name=name)

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    def add_process(self, process: "Process") -> None:
        """Register a process and schedule its first activation."""
        self._processes.append(process)
        process.bind(self)
        self.schedule(max(self._now, process.start_time), process._activate,
                      priority=process.priority, name=process.name)

    # -- execution --------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final simulation time."""
        self._running = True
        self._stopped = False
        executed = 0
        while self._queue and not self._stopped:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            event = self._queue.pop()
            if event is None:
                break
            self._now = event.time
            event.callback(self)
            executed += 1
            self.stats["events_executed"] += 1
            if max_events is not None and executed >= max_events:
                break
        if until is not None and not self._queue and self._now < until and not self._stopped:
            # advance the clock even if nothing else happens
            self._now = until
        self._running = False
        return self._now


class Process:
    """Base class for periodically activated simulation processes.

    Subclasses implement :meth:`step`, which is called at every activation.
    If ``period`` is ``None``, the process runs exactly once; otherwise it is
    re-activated every ``period`` time units until :meth:`deactivate` is
    called or the simulation ends.
    """

    def __init__(self, name: str, period: Optional[float] = None,
                 start_time: float = 0.0, priority: int = 0) -> None:
        if period is not None and period <= 0:
            raise SimulationError(f"process period must be positive, got {period}")
        self.name = name
        self.period = period
        self.start_time = start_time
        self.priority = priority
        self.activations = 0
        self.active = True
        self._sim: Optional[Simulator] = None

    def bind(self, sim: Simulator) -> None:
        self._sim = sim

    @property
    def sim(self) -> Simulator:
        if self._sim is None:
            raise SimulationError(f"process {self.name!r} is not bound to a simulator")
        return self._sim

    def deactivate(self) -> None:
        """Stop future activations of this process."""
        self.active = False

    def _activate(self, sim: Simulator) -> None:
        if not self.active:
            return
        self.activations += 1
        self.step(sim)
        if self.period is not None and self.active:
            sim.schedule_in(self.period, self._activate,
                            priority=self.priority, name=self.name)

    def step(self, sim: Simulator) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
