"""Tests for the scheduling simulator and the WCRT analysis, including the
property that the analytical bound dominates the simulated response times."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cpa import EndToEndPath, EventModel, ResponseTimeAnalysis, end_to_end_latency
from repro.platform.scheduler import FixedPriorityScheduler, ResourceScheduler
from repro.platform.resources import ProcessingResource
from repro.platform.tasks import Task, TaskSet
from repro.sim.random import SeededRNG
from repro.sim.trace import TraceRecorder


class TestEventModel:
    def test_eta_plus_periodic(self):
        model = EventModel(period=10.0)
        assert model.eta_plus(0.0) == 0
        assert model.eta_plus(1.0) == 1
        assert model.eta_plus(10.0) == 1
        assert model.eta_plus(10.1) == 2

    def test_jitter_increases_activations(self):
        assert EventModel(period=10.0, jitter=5.0).eta_plus(6.0) == 2

    def test_delta_min(self):
        model = EventModel(period=10.0, jitter=3.0)
        assert model.delta_min(1) == 0.0
        assert model.delta_min(2) == pytest.approx(7.0)
        assert model.delta_min(3) == pytest.approx(17.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            EventModel(period=0.0)
        with pytest.raises(ValueError):
            EventModel(period=1.0, jitter=-1.0)


class TestResponseTimeAnalysis:
    def test_classic_example(self, simple_taskset):
        results = ResponseTimeAnalysis(simple_taskset).analyse()
        assert results["t_high"].wcrt == pytest.approx(0.002)
        assert results["t_mid"].wcrt == pytest.approx(0.007)
        assert results["t_low"].wcrt == pytest.approx(0.019)
        assert all(r.schedulable for r in results.values())

    def test_unschedulable_overload_detected(self):
        taskset = TaskSet([
            Task("a", period=0.01, wcet=0.006, priority=0),
            Task("b", period=0.01, wcet=0.006, priority=1),
        ])
        analysis = ResponseTimeAnalysis(taskset)
        assert not analysis.schedulable()

    def test_speed_factor_slows_tasks(self, simple_taskset):
        nominal = ResponseTimeAnalysis(simple_taskset).response_time(
            simple_taskset.get("t_low")).wcrt
        throttled = ResponseTimeAnalysis(simple_taskset, speed_factor=0.8).response_time(
            simple_taskset.get("t_low")).wcrt
        assert throttled > nominal
        overloaded = ResponseTimeAnalysis(simple_taskset, speed_factor=0.5).response_time(
            simple_taskset.get("t_low"))
        assert not overloaded.schedulable

    def test_jitter_increases_wcrt(self):
        base = TaskSet([Task("hp", period=0.01, wcet=0.004, priority=0),
                        Task("lp", period=0.05, wcet=0.01, priority=1)])
        with_jitter = TaskSet([Task("hp", period=0.01, wcet=0.004, priority=0, jitter=0.005),
                               Task("lp", period=0.05, wcet=0.01, priority=1)])
        wcrt_base = ResponseTimeAnalysis(base).response_time(base.get("lp")).wcrt
        wcrt_jitter = ResponseTimeAnalysis(with_jitter).response_time(
            with_jitter.get("lp")).wcrt
        assert wcrt_jitter >= wcrt_base

    def test_unknown_task_rejected(self, simple_taskset):
        analysis = ResponseTimeAnalysis(simple_taskset)
        with pytest.raises(ValueError):
            analysis.response_time(Task("alien", period=1.0, wcet=0.1))

    def test_utilization(self, simple_taskset):
        assert ResponseTimeAnalysis(simple_taskset).utilization() == pytest.approx(0.65)

    def test_end_to_end_latency_composition(self, simple_taskset):
        results = ResponseTimeAnalysis(simple_taskset).analyse()
        path = EndToEndPath("chain", tasks=[simple_taskset.get("t_high"),
                                            simple_taskset.get("t_low")],
                            communication_delays=[0.001])
        latency = end_to_end_latency(path, [results])
        assert latency == pytest.approx(results["t_high"].wcrt + 0.001 + results["t_low"].wcrt)

    def test_end_to_end_latency_none_when_unschedulable(self):
        taskset = TaskSet([Task("a", period=0.01, wcet=0.006, priority=0),
                           Task("b", period=0.01, wcet=0.006, priority=1)])
        results = ResponseTimeAnalysis(taskset).analyse()
        path = EndToEndPath("chain", tasks=[taskset.get("b")])
        assert end_to_end_latency(path, [results]) is None

    def test_empty_task_chain_is_rejected(self):
        """Regression: an empty chain used to report 0.0 latency — silently
        'schedulable' — instead of surfacing the configuration error."""
        with pytest.raises(ValueError, match="must not be empty"):
            EndToEndPath("chain")
        with pytest.raises(ValueError, match="must not be empty"):
            EndToEndPath("chain", tasks=[])

    def test_communication_delay_count_still_validated(self, simple_taskset):
        with pytest.raises(ValueError, match="one communication delay per hop"):
            EndToEndPath("chain", tasks=[simple_taskset.get("t_high")],
                         communication_delays=[0.001, 0.002])


class TestFixedPriorityScheduler:
    def test_simulation_matches_analysis_on_classic_set(self, simple_taskset):
        analysis = ResponseTimeAnalysis(simple_taskset).analyse()
        stats = FixedPriorityScheduler(simple_taskset).run(1.0)
        for name, result in analysis.items():
            assert stats.worst_response_times[name] == pytest.approx(result.wcrt, abs=1e-9)

    def test_no_deadline_misses_for_schedulable_set(self, simple_taskset):
        stats = FixedPriorityScheduler(simple_taskset).run(1.0)
        assert stats.deadline_misses == 0
        assert stats.jobs_completed > 0

    def test_overload_produces_misses(self):
        taskset = TaskSet([Task("a", period=0.01, wcet=0.006, priority=0),
                           Task("b", period=0.01, wcet=0.006, priority=1)])
        stats = FixedPriorityScheduler(taskset).run(0.5)
        assert stats.deadline_misses > 0

    def test_busy_time_matches_utilization(self, simple_taskset):
        stats = FixedPriorityScheduler(simple_taskset).run(1.0)
        assert stats.utilization_observed == pytest.approx(0.65, abs=0.02)

    def test_preemption_recorded(self):
        taskset = TaskSet([Task("hp", period=0.01, wcet=0.002, priority=0),
                           Task("lp", period=0.1, wcet=0.05, priority=1)])
        stats = FixedPriorityScheduler(taskset).run(0.5)
        assert stats.preemptions > 0

    def test_speed_factor_causes_misses(self, simple_taskset):
        nominal = FixedPriorityScheduler(simple_taskset, speed_factor=1.0).run(1.0)
        throttled = FixedPriorityScheduler(simple_taskset, speed_factor=0.4).run(1.0)
        assert nominal.deadline_misses == 0
        assert throttled.deadline_misses > 0

    def test_recorder_receives_completions(self, simple_taskset):
        recorder = TraceRecorder()
        FixedPriorityScheduler(simple_taskset, recorder=recorder).run(0.2)
        assert len(recorder.filter(category="scheduler.job_complete")) > 0

    def test_invalid_arguments(self, simple_taskset):
        with pytest.raises(ValueError):
            FixedPriorityScheduler(simple_taskset, speed_factor=0.0)
        with pytest.raises(ValueError):
            FixedPriorityScheduler(simple_taskset).run(0.0)

    def test_resource_scheduler_wraps_platform(self, dual_core_platform, simple_taskset):
        cpu0 = dual_core_platform.processor("cpu0")
        for task in simple_taskset:
            cpu0.host(task)
        results = ResourceScheduler().simulate(dual_core_platform.processors(), 0.2)
        assert set(results) == {"cpu0", "cpu1"}
        assert results["cpu0"].jobs_completed > 0
        assert results["cpu1"].jobs_completed == 0


def _random_taskset(seed: int, n: int, total_utilization: float) -> TaskSet:
    rng = SeededRNG(seed)
    utilizations = rng.uunifast(n, total_utilization)
    periods = rng.log_uniform_periods(n, 0.005, 0.2)
    taskset = TaskSet()
    for index, (u, period) in enumerate(zip(utilizations, periods)):
        wcet = max(1e-6, u * period)
        taskset.add(Task(f"task{index}", period=period, wcet=wcet, priority=0))
    taskset.assign_rate_monotonic_priorities()
    return taskset


class TestAnalysisDominatesSimulation:
    """Property: the analytical WCRT bound is never below the simulated
    worst-case response time (soundness of the busy-window analysis)."""

    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=2, max_value=6),
           utilization=st.floats(min_value=0.2, max_value=0.85))
    @settings(max_examples=25, deadline=None)
    def test_wcrt_bound_is_sound(self, seed, n, utilization):
        taskset = _random_taskset(seed, n, utilization)
        analysis = ResponseTimeAnalysis(taskset).analyse()
        horizon = min(1.0, 20 * max(task.period for task in taskset))
        stats = FixedPriorityScheduler(taskset).run(horizon)
        for name, result in analysis.items():
            observed = stats.worst_response_times.get(name)
            if observed is None or result.wcrt is None:
                continue
            assert result.wcrt + 1e-9 >= observed

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_low_utilization_sets_are_schedulable(self, seed):
        taskset = _random_taskset(seed, 4, 0.5)
        # Liu & Layland: below the RM bound for 4 tasks (~0.757) everything is
        # schedulable under rate-monotonic priorities.
        assert ResponseTimeAnalysis(taskset).schedulable()
