"""Deviation detection between model assumptions and observed behaviour.

"This enables the model domain to detect deviations from the nominal
behavior, refine its models, anticipate changes, and adapt the system
configuration accordingly" (Section II.B).  :class:`ExpectedBehaviour`
captures the model-domain assumption for one metric (nominal value and
tolerance band); :class:`DeviationDetector` compares the metric registry
against these expectations and produces anomalies plus model-refinement
suggestions (updated nominal values learned from observations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType
from repro.monitoring.metrics import MetricRegistry


@dataclass
class ExpectedBehaviour:
    """Model assumption for one (source, metric) pair.

    ``nominal`` is the value the model domain assumed (e.g. the contracted
    WCET, the calibrated sensor quality); ``tolerance`` is the accepted
    relative deviation before the detector raises an anomaly.
    """

    source: str
    metric: str
    nominal: float
    tolerance: float = 0.1
    anomaly_type: AnomalyType = AnomalyType.VALUE_OUT_OF_RANGE
    layer: str = "platform"
    higher_is_worse: bool = True
    two_sided: bool = False

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")

    def margin(self) -> float:
        """Half-width of the tolerance band.

        For ``nominal == 0`` the relative margin degenerates to zero, so the
        tolerance is interpreted as an absolute band half-width instead —
        zero-nominal expectations (idle queues, error counters) keep a
        meaningful band rather than alarming on any non-zero sample.
        """
        if self.nominal:
            return abs(self.nominal) * self.tolerance
        return self.tolerance

    def bounds(self) -> Tuple[float, float]:
        margin = self.margin()
        return (self.nominal - margin, self.nominal + margin)

    def violated_by(self, value: float) -> bool:
        low, high = self.bounds()
        if self.two_sided:
            return value > high or value < low
        if self.higher_is_worse:
            return value > high
        return value < low


class DeviationDetector:
    """Compares observed metrics against expected behaviour.

    The detector also implements the "refine its models" part of the loop:
    :meth:`refinement_suggestions` proposes updated nominal values when the
    observed mean drifted but stayed within safe bounds.
    """

    def __init__(self, registry: MetricRegistry) -> None:
        self.registry = registry
        self._expectations: Dict[Tuple[str, str], ExpectedBehaviour] = {}

    def expect(self, expectation: ExpectedBehaviour) -> None:
        self._expectations[(expectation.source, expectation.metric)] = expectation

    def expectation(self, source: str, metric: str) -> Optional[ExpectedBehaviour]:
        return self._expectations.get((source, metric))

    def expectations(self) -> List[ExpectedBehaviour]:
        return list(self._expectations.values())

    # -- detection -----------------------------------------------------------------

    def _anomaly_for(self, expectation: ExpectedBehaviour, metric: str,
                     value: float, time: float) -> Anomaly:
        distance = abs(value - expectation.nominal)
        severity = (AnomalySeverity.CRITICAL if distance > 2 * expectation.margin()
                    else AnomalySeverity.WARNING)
        return Anomaly(
            anomaly_type=expectation.anomaly_type, subject=expectation.source,
            layer=expectation.layer, severity=severity, time=time,
            observed=value, expected=expectation.nominal,
            details={"metric": metric, "tolerance": expectation.tolerance})

    def check(self, time: float) -> List[Anomaly]:
        """Compare the latest observation of every expected metric against its
        tolerance band."""
        anomalies: List[Anomaly] = []
        for (source, metric), expectation in self._expectations.items():
            series = self.registry.get(source, metric)
            if series is None or series.last is None:
                continue
            value = series.last
            if expectation.violated_by(value):
                anomalies.append(self._anomaly_for(expectation, metric, value, time))
        anomalies.sort(key=lambda a: (-int(a.severity), a.subject))
        return anomalies

    def observe(self, time: float, source: str, metric: str,
                value: float) -> List[Anomaly]:
        """Record one observation and evaluate only its expectation.

        One-shot feedback ingestion: the sample lands in the registry (so
        windowed statistics and refinement suggestions keep working) and the
        matching expectation — if any — is checked immediately.  Returns the
        raised anomalies (empty when the value is in band or no expectation
        covers the pair).  Fleet campaigns use this to grade per-vehicle
        monitor feedback between rollout waves without re-checking every
        expectation of the vehicle.
        """
        self.registry.sample(time, source, metric, value)
        expectation = self._expectations.get((source, metric))
        if expectation is None or not expectation.violated_by(value):
            return []
        return [self._anomaly_for(expectation, metric, value, time)]

    # -- model refinement ------------------------------------------------------------

    def refinement_suggestions(self, min_samples: int = 20,
                               drift_threshold: float = 0.05) -> Dict[Tuple[str, str], float]:
        """Suggest updated nominal values for metrics whose observed mean
        drifted by more than ``drift_threshold`` (relative) but did not
        violate the tolerance band — the benign drift the model domain should
        learn from rather than alarm on."""
        suggestions: Dict[Tuple[str, str], float] = {}
        for key, expectation in self._expectations.items():
            series = self.registry.get(*key)
            if series is None or len(series) < min_samples:
                continue
            summary = series.summary()
            scale = abs(expectation.nominal) or expectation.margin()
            delta = abs(summary.mean - expectation.nominal)
            drift = delta / scale if scale else (float("inf") if delta else 0.0)
            if expectation.two_sided:
                extreme = max(abs(summary.maximum - expectation.nominal),
                              abs(summary.minimum - expectation.nominal))
                violated = extreme > expectation.margin()
            else:
                violated = expectation.violated_by(
                    summary.maximum if expectation.higher_is_worse
                    else summary.minimum)
            if drift > drift_threshold and not violated:
                suggestions[key] = summary.mean
        return suggestions

    def apply_refinements(self, suggestions: Dict[Tuple[str, str], float]) -> int:
        """Adopt suggested nominal values; returns how many expectations changed."""
        changed = 0
        for key, nominal in suggestions.items():
            expectation = self._expectations.get(key)
            if expectation is not None and expectation.nominal != nominal:
                expectation.nominal = nominal
                changed += 1
        return changed
