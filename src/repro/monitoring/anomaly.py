"""Anomaly model.

"A deviation of the anticipated/expected behavior must be detectable by a
system as a prerequisite to become self-aware" (Section V).  Every monitor
in the library reports such deviations as :class:`Anomaly` objects that name
the affected element, the layer the observation was made on, a severity and
the observed-vs-expected values.  The cross-layer coordinator consumes these
anomalies and decides on which layer to react.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

_anomaly_counter = itertools.count(1)


class AnomalyType(enum.Enum):
    """What kind of deviation was observed."""

    DEADLINE_MISS = "deadline_miss"
    BUDGET_OVERRUN = "budget_overrun"
    HEARTBEAT_LOSS = "heartbeat_loss"
    VALUE_OUT_OF_RANGE = "value_out_of_range"
    SENSOR_DEGRADATION = "sensor_degradation"
    CONTROL_PERFORMANCE = "control_performance"
    THERMAL = "thermal"
    SECURITY_INTRUSION = "security_intrusion"
    ACCESS_VIOLATION = "access_violation"
    COMPONENT_FAILURE = "component_failure"
    COMMUNICATION = "communication"
    ENVIRONMENT = "environment"


class AnomalySeverity(enum.IntEnum):
    """Ordered severity scale used to prioritize reactions."""

    INFO = 0
    WARNING = 1
    CRITICAL = 2
    CATASTROPHIC = 3


@dataclass
class Anomaly:
    """One detected deviation from expected behaviour.

    Attributes
    ----------
    anomaly_type:
        The category of deviation.
    subject:
        The element the deviation concerns (component, task, sensor, skill...).
    layer:
        The layer on which the deviation was *observed* (platform,
        communication, safety, ability, objective).  The layer on which it is
        *resolved* may differ — that is the cross-layer decision.
    severity:
        Ordered severity.
    time:
        Simulation time of detection.
    observed / expected:
        The offending observation and the model expectation, where
        meaningful.
    details:
        Free-form extra context for countermeasure selection.
    """

    anomaly_type: AnomalyType
    subject: str
    layer: str
    severity: AnomalySeverity
    time: float
    observed: Optional[float] = None
    expected: Optional[float] = None
    details: Dict[str, Any] = field(default_factory=dict)
    anomaly_id: int = field(default_factory=lambda: next(_anomaly_counter))

    @property
    def deviation(self) -> Optional[float]:
        """Absolute deviation between observation and expectation, if both known."""
        if self.observed is None or self.expected is None:
            return None
        return abs(self.observed - self.expected)

    def escalate(self) -> "Anomaly":
        """Return a copy with severity bumped by one step (capped)."""
        new_severity = AnomalySeverity(min(self.severity + 1, AnomalySeverity.CATASTROPHIC))
        return Anomaly(anomaly_type=self.anomaly_type, subject=self.subject, layer=self.layer,
                       severity=new_severity, time=self.time, observed=self.observed,
                       expected=self.expected, details=dict(self.details))

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return (f"[{self.severity.name}] {self.anomaly_type.value} on {self.subject} "
                f"(layer={self.layer}, t={self.time:.3f})")
