"""A complete self-aware vehicle assembled from the library's substrates.

:class:`SelfAwareVehicle` is the integration facade used by the examples,
the scenario drivers and the E5/E6 benchmarks.  It wires together:

* the **platform**: a small multi-core ECU platform with a thermal model and
  a DVFS governor, managed by an MCC that deploys the ACC component set;
* the **driving function**: longitudinal dynamics, environment, radar/camera
  sensors, object tracking, driver-intent estimation, actuators and the ACC
  controller;
* the **functional self-awareness**: the ACC ability graph, a degradation
  manager with speed-restriction and drive-train-braking tactics;
* the **security layer**: access-control policy derived from the deployed
  configuration plus the communication IDS;
* the **cross-layer self-awareness**: a self-model, a countermeasure
  catalogue populated with the standard per-layer reactions of Section V,
  the cross-layer coordinator and the awareness loop.

The facade exposes fault/attack injection hooks so scenarios can reproduce
the paper's examples (compromised rear braking, thermal stress, sensor
degradation) and inspection helpers for the benchmark metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.contracts.language import ContractParser
from repro.core.arbitration import ArbitrationPolicy, CrossLayerCoordinator
from repro.core.awareness import AwarenessCycleResult, SelfAwarenessLoop
from repro.core.countermeasures import Countermeasure, CountermeasureCatalog
from repro.core.layers import Layer
from repro.core.self_model import SelfModel
from repro.mcc.controller import MultiChangeController
from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType
from repro.monitoring.monitors import (
    MonitorSuite,
    SensorQualityMonitor,
    TemperatureMonitor,
)
from repro.platform.resources import Platform, ProcessingResource, NetworkResource
from repro.platform.rte import RuntimeEnvironment
from repro.platform.thermal import DvfsGovernor, ThermalModel
from repro.security.access_control import build_policy_from_registry
from repro.security.ids import IntrusionDetectionSystem
from repro.sim.random import SeededRNG
from repro.skills.acc_example import build_acc_ability_graph
from repro.skills.degradation import (
    DegradationManager,
    OperationalRestriction,
)
from repro.vehicle.actuators import BrakeActuator, PowertrainActuator
from repro.vehicle.acc import AccController
from repro.vehicle.driver import DriverIntentEstimator
from repro.vehicle.dynamics import LongitudinalDynamics, VehicleState
from repro.vehicle.environment import Environment, LeadVehicle, Weather
from repro.vehicle.sensors import CameraSensor, RadarSensor, SensorFault
from repro.vehicle.tracking import ObjectTracker


@dataclass
class VehicleSystemConfig:
    """Configuration knobs of the integrated self-aware vehicle."""

    seed: int = 0
    initial_speed_mps: float = 25.0
    set_speed_mps: float = 27.0
    lead_gap_m: float = 60.0
    lead_speed_mps: float = 24.0
    control_period_s: float = 0.05
    awareness_period_s: float = 0.2
    arbitration_policy: ArbitrationPolicy = ArbitrationPolicy.LOWEST_ADEQUATE
    adequacy_threshold: float = 0.6
    safe_stop_threshold: float = 0.3
    weather: Weather = field(default_factory=Weather.clear)


#: Contract documents of the ACC component set deployed through the MCC.
ACC_CONTRACT_DOCUMENTS: List[dict] = [
    {"component": "radar_sensor", "timing": {"period": 0.05, "wcet": 0.004},
     "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
     "provides": ["radar_targets"]},
    {"component": "camera_sensor", "timing": {"period": 0.05, "wcet": 0.008},
     "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
     "provides": ["camera_objects"]},
    {"component": "object_tracker", "timing": {"period": 0.05, "wcet": 0.006},
     "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
     "requires": [{"service": "radar_targets"}, {"service": "camera_objects"}],
     "provides": ["object_list"]},
    {"component": "driver_intent_estimator", "timing": {"period": 0.1, "wcet": 0.002},
     "safety": {"asil": "B"}, "security": {"level": "LOW"},
     "provides": ["driver_intent"]},
    {"component": "powertrain_coordinator", "timing": {"period": 0.01, "wcet": 0.001},
     "safety": {"asil": "B", "redundancy_group": "braking"}, "security": {"level": "MEDIUM"},
     "provides": ["drive_actuation"]},
    {"component": "brake_controller", "timing": {"period": 0.01, "wcet": 0.001},
     "safety": {"asil": "B", "fail_operational": True, "redundancy_group": "braking"},
     "security": {"level": "MEDIUM"},
     "provides": ["brake_actuation"]},
    {"component": "acc_controller", "timing": {"period": 0.05, "wcet": 0.003},
     "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
     "requires": [{"service": "object_list"}, {"service": "driver_intent"},
                  {"service": "brake_actuation"}, {"service": "drive_actuation"}],
     "provides": ["acc_setpoints"]},
    {"component": "telematics_gateway", "timing": {"period": 0.2, "wcet": 0.005},
     "safety": {"asil": "QM"}, "security": {"level": "HIGH", "external_interface": True},
     "provides": ["remote_services"]},
]

#: CAN identifier assignment used for the IDS rules of the deployed components.
ACC_CAN_IDS: Dict[str, set] = {
    "radar_sensor": {0x110},
    "camera_sensor": {0x111},
    "object_tracker": {0x120},
    "driver_intent_estimator": {0x130},
    "acc_controller": {0x140},
    "brake_controller": {0x0A0},
    "powertrain_coordinator": {0x0B0},
    "telematics_gateway": {0x300},
}


class SelfAwareVehicle:
    """The integrated, cross-layer self-aware vehicle."""

    def __init__(self, config: Optional[VehicleSystemConfig] = None) -> None:
        self.config = config or VehicleSystemConfig()
        self.rng = SeededRNG(self.config.seed)
        self.time = 0.0

        #: Component failures produced by containment actions, to be reported
        #: to the safety/ability layers in the next awareness cycle.
        self._pending_failures: List[Anomaly] = []

        self._build_platform()
        self._build_driving_function()
        self._build_functional_awareness()
        self._build_security_layer()
        self._build_cross_layer_awareness()

        self._next_awareness_time = 0.0
        self.safe_stop_requested = False
        self.safe_stop_time: Optional[float] = None
        self.events: List[str] = []

    # -- construction ----------------------------------------------------------------------

    def _build_platform(self) -> None:
        self.platform = Platform(name="vehicle-ecu")
        self.cpu0 = self.platform.add_processor(ProcessingResource("cpu0", capacity=0.9))
        self.cpu1 = self.platform.add_processor(ProcessingResource("cpu1", capacity=0.9))
        self.platform.add_network(NetworkResource("can0", bandwidth_bps=500_000.0))
        self.rte = RuntimeEnvironment(self.platform)
        self.mcc = MultiChangeController(self.platform, rte=self.rte)
        parser = ContractParser()
        for document in ACC_CONTRACT_DOCUMENTS:
            report = self.mcc.add_component(parser.parse(document))
            if not report.accepted:  # pragma: no cover - configuration is accepted by design
                raise RuntimeError(f"baseline configuration rejected: {report.summary()}")
        self.thermal = ThermalModel(self.cpu0, ambient_c=self.config.weather.ambient_temperature_c)
        self.dvfs = DvfsGovernor(self.cpu0)

    def _build_driving_function(self) -> None:
        config = self.config
        self.environment = Environment(config.weather, self.rng.spawn(1))
        self.environment.add_lead_vehicle(LeadVehicle(
            "lead", position_m=config.lead_gap_m, speed_mps=config.lead_speed_mps))
        self.dynamics = LongitudinalDynamics(
            initial_state=VehicleState(speed_mps=config.initial_speed_mps))
        self.dynamics.friction_factor = config.weather.friction_factor
        self.radar = RadarSensor("radar_sensor", self.rng.spawn(2))
        self.camera = CameraSensor("camera_sensor", self.rng.spawn(3))
        self.tracker = ObjectTracker()
        self.driver = DriverIntentEstimator(default_set_speed_mps=config.set_speed_mps)
        self.powertrain = PowertrainActuator()
        self.brakes = BrakeActuator()
        self.acc = AccController(self.dynamics, self.powertrain, self.brakes)
        self.acc.config.control_period_s = config.control_period_s

    def _build_functional_awareness(self) -> None:
        self.ability_graph = build_acc_ability_graph()
        self.degradation = DegradationManager(self.ability_graph,
                                              safe_stop_threshold=self.config.safe_stop_threshold)
        self.degradation.register_restriction(OperationalRestriction(
            ability="decelerate",
            description="reduce maximum speed and use drive-train braking",
            compensated_score=0.7))
        self.degradation.register_restriction(OperationalRestriction(
            ability="braking_system",
            description="compensate rear-brake loss with front brakes and drive train",
            compensated_score=0.6))
        self.degradation.register_restriction(OperationalRestriction(
            ability="perceive_track_objects",
            description="increase following distance to compensate reduced perception",
            compensated_score=0.65))

    def _build_security_layer(self) -> None:
        self.access_policy = build_policy_from_registry(
            self.rte.registry, can_id_assignments=ACC_CAN_IDS, default_rate_hz=200.0)
        self.ids = IntrusionDetectionSystem()
        self.access_policy.configure_ids(self.ids)

    def _build_cross_layer_awareness(self) -> None:
        self.self_model = SelfModel()
        self.self_model.attach_ability_graph(self.ability_graph)
        self.monitors = MonitorSuite(self.self_model.registry)
        self.sensor_monitor = self.monitors.add(SensorQualityMonitor("sensor-quality"))
        self.temperature_monitor = self.monitors.add(
            TemperatureMonitor("cpu-temperature", warning_c=85.0, critical_c=100.0))
        self.catalog = CountermeasureCatalog()
        self._register_countermeasures()
        self.coordinator = CrossLayerCoordinator(
            catalog=self.catalog, policy=self.config.arbitration_policy,
            adequacy_threshold=self.config.adequacy_threshold)
        self.awareness = SelfAwarenessLoop(self.self_model, self.coordinator)
        self.awareness.add_monitor_suite(self.monitors)
        self.awareness.add_source(lambda time: self.ids.drain_anomalies())
        self.awareness.add_source(self._ability_anomalies)

    # -- countermeasures (the per-layer reactions of Section V) -------------------------------

    def _register_countermeasures(self) -> None:
        self.catalog.register_factory(Layer.PLATFORM, self._platform_countermeasure)
        self.catalog.register_factory(Layer.COMMUNICATION, self._communication_countermeasure)
        self.catalog.register_factory(Layer.SAFETY, self._safety_countermeasure)
        self.catalog.register_factory(Layer.ABILITY, self._ability_countermeasure)
        self.catalog.register_factory(Layer.OBJECTIVE, self._objective_countermeasure)

    def _objective_countermeasure(self, anomaly: Anomaly) -> Optional[Countermeasure]:
        # The objective layer only alters the driving mission for problems
        # that genuinely threaten safe operation; transient warnings are not
        # worth aborting the mission for ("correct degree of cooperation").
        if anomaly.severity < AnomalySeverity.CRITICAL:
            return None
        return Countermeasure(
            name="safe-stop", layer=Layer.OBJECTIVE,
            description="alter the driving objective: come to a safe stop, then deactivate "
                        "the affected subsystems",
            effectiveness=1.0, cost=1.0, action=self._act_safe_stop)

    def _platform_countermeasure(self, anomaly: Anomaly) -> Optional[Countermeasure]:
        if anomaly.anomaly_type != AnomalyType.THERMAL:
            return None
        effectiveness = 0.4 if self.dvfs.at_lowest_point else 0.8
        return Countermeasure(
            name="dvfs-throttle", layer=Layer.PLATFORM,
            description="scale down voltage/frequency to prevent permanent damage",
            effectiveness=effectiveness, cost=0.2, action=self._act_throttle)

    def _communication_countermeasure(self, anomaly: Anomaly) -> Optional[Countermeasure]:
        if anomaly.anomaly_type not in (AnomalyType.SECURITY_INTRUSION,
                                        AnomalyType.ACCESS_VIOLATION):
            return None
        component = anomaly.subject
        # Containment is highly effective at stopping the leak itself, but if
        # the component realizes driving abilities its loss must be handled on
        # the layers above — which is exactly the cross-layer hand-over.
        return Countermeasure(
            name="quarantine-component", layer=Layer.COMMUNICATION,
            description=f"revoke all sessions of {component} and shut it down",
            effectiveness=0.9, cost=0.3,
            action=self._act_quarantine)

    def _safety_countermeasure(self, anomaly: Anomaly) -> Optional[Countermeasure]:
        if anomaly.anomaly_type != AnomalyType.COMPONENT_FAILURE:
            return None
        component = anomaly.subject
        contract = None
        if component in self.mcc.model:
            contract = self.mcc.model.contract(component)
        redundancy = bool(contract and contract.safety and contract.safety.redundancy_group)
        if not redundancy:
            return None
        return Countermeasure(
            name="activate-redundancy", layer=Layer.SAFETY,
            description=f"treat {component} as failed and activate its redundancy partner",
            effectiveness=0.75, cost=0.4, action=self._act_activate_redundancy)

    def _ability_countermeasure(self, anomaly: Anomaly) -> Optional[Countermeasure]:
        if anomaly.anomaly_type not in (AnomalyType.SENSOR_DEGRADATION,
                                        AnomalyType.CONTROL_PERFORMANCE,
                                        AnomalyType.COMPONENT_FAILURE):
            return None
        plan = self.degradation.plan()
        if plan.empty:
            return None
        effectiveness = 0.3 if plan.requires_safe_stop else 0.8
        return Countermeasure(
            name="graceful-degradation", layer=Layer.ABILITY,
            description="; ".join(str(action) for action in plan.actions),
            effectiveness=effectiveness, cost=0.5,
            action=self._act_degrade)

    # -- countermeasure actions -------------------------------------------------------------------

    def _act_throttle(self, anomaly: Anomaly, time: float) -> None:
        before = self.dvfs.current.name
        self.dvfs.update(self.thermal.temperature_c)
        self.events.append(f"{time:.2f}s platform: DVFS {before} -> {self.dvfs.current.name}")

    def _act_quarantine(self, anomaly: Anomaly, time: float) -> None:
        component = anomaly.subject
        if component in self.rte.registry:
            self.rte.quarantine(component, time=time)
        self.access_policy_revocations = getattr(self, "access_policy_revocations", 0) + 1
        affected = self.ability_graph.fail_implementation(component, time=time)
        if component == "brake_controller":
            self.brakes.disable_circuit("rear", self.dynamics)
        self.events.append(
            f"{time:.2f}s communication: quarantined {component} (abilities affected: {affected})")
        # Losing a component is a new fact for the safety/ability layers: report
        # it as a component failure so the next cycle can react on those layers.
        self._pending_failures.append(Anomaly(
            anomaly_type=AnomalyType.COMPONENT_FAILURE, subject=component, layer="safety",
            severity=AnomalySeverity.CRITICAL, time=time))

    def _act_activate_redundancy(self, anomaly: Anomaly, time: float) -> None:
        component = anomaly.subject
        if component == "brake_controller":
            # The powertrain coordinator (same redundancy group) provides
            # drive-train braking in place of the rear circuit.
            self.powertrain.set_drivetrain_braking(True, self.dynamics)
            self.events.append(f"{time:.2f}s safety: drive-train braking activated "
                               f"to back up {component}")
        else:
            self.events.append(f"{time:.2f}s safety: redundancy activated for {component}")

    def _act_degrade(self, anomaly: Anomaly, time: float) -> None:
        plan = self.degradation.plan()
        log = self.degradation.apply(plan, time=time)
        # Translate the restriction into an actual speed limit derived from the
        # currently available braking capability.
        available = self.dynamics.available_deceleration()
        sight_distance = 40.0
        safe_speed = min(self.config.set_speed_mps,
                         (2.0 * available * sight_distance) ** 0.5)
        self.acc.impose_speed_limit(safe_speed)
        self.events.append(
            f"{time:.2f}s ability: {'; '.join(log)}; speed limit {safe_speed:.1f} m/s")
        if plan.requires_safe_stop:
            self._act_safe_stop(anomaly, time)

    def _act_safe_stop(self, anomaly: Anomaly, time: float) -> None:
        if not self.safe_stop_requested:
            self.safe_stop_requested = True
            self.safe_stop_time = time
            self.self_model.set_objective("safe_stop")
            self.acc.impose_speed_limit(0.0)
            self.events.append(f"{time:.2f}s objective: safe stop requested")

    # -- anomaly sources ------------------------------------------------------------------------------

    def _ability_anomalies(self, time: float) -> List[Anomaly]:
        anomalies = self.ability_graph.anomalies(time, threshold=0.85)
        pending = list(self._pending_failures)
        self._pending_failures.clear()
        return anomalies + pending

    # -- injection hooks --------------------------------------------------------------------------------

    def inject_rear_brake_compromise(self) -> None:
        """The Section V running example: the rear-brake component is
        compromised and starts emitting frames with spoofed identifiers."""
        for _ in range(self.ids.suspicion_threshold):
            self.ids.observe_can_frame(self.time, "brake_controller", 0x140)
        self.events.append(f"{self.time:.2f}s attack: brake_controller compromised")

    def inject_sensor_fault(self, sensor: str, fault: SensorFault,
                            magnitude: float = 1.0) -> None:
        target = {"radar_sensor": self.radar, "camera_sensor": self.camera}[sensor]
        target.inject_fault(fault, magnitude)
        self.events.append(f"{self.time:.2f}s fault: {sensor} {fault.value}")

    def set_ambient_temperature_profile(self, profile) -> None:
        self.environment.set_temperature_profile(profile)

    # -- main loop ---------------------------------------------------------------------------------------

    def step(self) -> Optional[AwarenessCycleResult]:
        """Advance the vehicle by one control period; runs an awareness cycle
        whenever its period elapses.  Returns the cycle result if one ran."""
        dt = self.config.control_period_s
        time = self.time

        # Driving function.
        readings = [sensor.measure(time, self.dynamics.state.position_m,
                                   self.dynamics.state.speed_mps, self.environment)
                    for sensor in (self.radar, self.camera)]
        track = self.tracker.update(time, readings)
        intent = self.driver.estimate(time)
        self.acc.step(time, intent, track)
        self.environment.step(dt)

        # Functional self-awareness: feed intrinsic scores into the ability graph.
        for sensor, node in ((self.radar, "radar_sensor"), (self.camera, "camera_sensor")):
            self.sensor_monitor.observe(time, node, sensor.last_quality)
            self.ability_graph.observe(node, sensor.last_quality, time=time)
        self.ability_graph.observe("powertrain", self.powertrain.ability_score(), time=time)
        self.ability_graph.observe("braking_system", self.brakes.ability_score(), time=time)
        self.ability_graph.observe("hmi", self.driver.ability_score(), time=time)
        self.ability_graph.observe("perceive_track_objects",
                                   max(self.tracker.performance_score(), 0.0), time=time)
        self.ability_graph.observe("acc_driving", self.acc.control_performance(), time=time)

        # Platform self-awareness: thermal model follows the CPU load.
        utilization = min(1.0, self.cpu0.utilization)
        self.thermal.step(dt, utilization, self.dvfs.current.power_factor,
                          ambient_c=self.environment.ambient_temperature_c)
        self.temperature_monitor.observe(time, "cpu0", self.thermal.temperature_c)
        self.self_model.update_platform(
            "cpu0", temperature_c=self.thermal.temperature_c,
            speed_factor=self.cpu0.condition.speed_factor,
            utilization=utilization)
        self.self_model.update_components(self.rte.snapshot())
        violation_count = len(self.ids.suspected_compromised())
        self.self_model.update_communication(health=1.0 if violation_count == 0 else 0.5)

        # Cross-layer awareness cycle.
        result: Optional[AwarenessCycleResult] = None
        if time + 1e-9 >= self._next_awareness_time:
            result = self.awareness.cycle(time)
            self._next_awareness_time += self.config.awareness_period_s

        self.time += dt
        return result

    def run(self, duration_s: float) -> List[AwarenessCycleResult]:
        """Run the vehicle for ``duration_s`` seconds of simulated time."""
        results: List[AwarenessCycleResult] = []
        steps = int(round(duration_s / self.config.control_period_s))
        for _ in range(steps):
            result = self.step()
            if result is not None:
                results.append(result)
        return results

    # -- inspection ----------------------------------------------------------------------------------------

    @property
    def speed_mps(self) -> float:
        return self.dynamics.state.speed_mps

    @property
    def stopped(self) -> bool:
        return self.dynamics.state.speed_mps <= 0.1

    def minimum_gap_m(self) -> Optional[float]:
        return self.acc.minimum_gap_observed()

    def root_ability_score(self) -> float:
        return self.ability_graph.root_score()

    def event_log(self) -> List[str]:
        return list(self.events)
