"""Tests for the cross-layer self-awareness core: layers, self-model,
countermeasures, arbitration, the awareness loop and the integrated vehicle."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arbitration import ArbitrationPolicy, CrossLayerCoordinator
from repro.core.awareness import SelfAwarenessLoop
from repro.core.countermeasures import Countermeasure, CountermeasureCatalog
from repro.core.layers import CallbackLayerHandler, Layer, LAYER_ORDER
from repro.core.self_model import SelfModel
from repro.core.vehicle_system import SelfAwareVehicle, VehicleSystemConfig
from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType
from repro.monitoring.monitors import MonitorSuite, TemperatureMonitor
from repro.skills.acc_example import build_acc_ability_graph


def _anomaly(layer="communication", severity=AnomalySeverity.CRITICAL,
             anomaly_type=AnomalyType.SECURITY_INTRUSION, subject="brake", time=1.0):
    return Anomaly(anomaly_type=anomaly_type, subject=subject, layer=layer,
                   severity=severity, time=time)


def _snapshot():
    return SelfModel().snapshot(0.0)


class TestLayers:
    def test_order_and_labels(self):
        assert LAYER_ORDER[0] == Layer.PLATFORM and LAYER_ORDER[-1] == Layer.OBJECTIVE
        assert Layer.from_label("ability") == Layer.ABILITY
        assert Layer.SAFETY.next_higher() == Layer.ABILITY
        assert Layer.OBJECTIVE.next_higher() is None
        with pytest.raises(ValueError):
            Layer.from_label("quantum")


class TestCountermeasures:
    def test_validation(self):
        with pytest.raises(ValueError):
            Countermeasure("x", Layer.SAFETY, "d", effectiveness=1.5, cost=0.1)
        with pytest.raises(ValueError):
            Countermeasure("x", Layer.SAFETY, "d", effectiveness=0.5, cost=-0.1)

    def test_execute_runs_action(self):
        executed = []
        cm = Countermeasure("x", Layer.SAFETY, "d", 0.9, 0.1,
                            action=lambda anomaly, time: executed.append((anomaly.subject, time)))
        assert cm.execute(_anomaly(), 2.0)
        assert executed == [("brake", 2.0)]
        assert not Countermeasure("y", Layer.SAFETY, "d", 0.9, 0.1).execute(_anomaly(), 0.0)

    def test_catalog_static_and_factory(self):
        catalog = CountermeasureCatalog()
        catalog.register(Countermeasure("static", Layer.SAFETY, "d", 0.5, 0.5))
        catalog.register_factory(
            Layer.SAFETY,
            lambda anomaly: Countermeasure("dynamic", Layer.SAFETY, "d", 0.7, 0.2)
            if anomaly.subject == "brake" else None)
        proposals = catalog.proposals(Layer.SAFETY, _anomaly())
        assert {p.name for p in proposals} == {"static", "dynamic"}
        assert [p.name for p in catalog.proposals(Layer.SAFETY, _anomaly(subject="other"))] == ["static"]

    def test_factory_layer_mismatch_rejected(self):
        catalog = CountermeasureCatalog()
        catalog.register_factory(
            Layer.SAFETY, lambda anomaly: Countermeasure("wrong", Layer.ABILITY, "d", 0.5, 0.5))
        with pytest.raises(ValueError):
            catalog.proposals(Layer.SAFETY, _anomaly())


class TestSelfModel:
    def test_snapshot_aggregates_layers(self):
        model = SelfModel()
        model.attach_ability_graph(build_acc_ability_graph())
        model.update_platform("cpu0", temperature_c=70.0, speed_factor=1.0)
        model.update_components({"brake": "running"})
        model.update_communication(health=1.0)
        model.registry.sample(0.0, "cpu0", "utilization", 0.5)
        snapshot = model.snapshot(1.0)
        assert snapshot.processor_temperature("cpu0") == 70.0
        assert snapshot.component_state("brake") == "running"
        assert snapshot.ability_score("acc_driving") == 1.0
        assert snapshot.metrics["cpu0"]["utilization"] == 0.5
        assert snapshot.layer_health(Layer.PLATFORM) == 1.0
        assert snapshot.layer_health(Layer.ABILITY) == 1.0
        assert snapshot.layer_health(Layer.OBJECTIVE) == 1.0

    def test_layer_health_reflects_problems(self):
        model = SelfModel()
        graph = build_acc_ability_graph()
        graph.fail("radar_sensor")
        model.attach_ability_graph(graph)
        model.update_platform("cpu0", temperature_c=95.0, speed_factor=0.6)
        model.update_components({"brake": "quarantined", "acc": "running"})
        model.set_objective("safe_stop")
        snapshot = model.snapshot(2.0)
        assert snapshot.layer_health(Layer.PLATFORM) == 0.0
        assert snapshot.layer_health(Layer.SAFETY) == 0.5
        assert snapshot.layer_health(Layer.ABILITY) == 0.0
        assert snapshot.layer_health(Layer.OBJECTIVE) == 0.0

    def test_objective_history(self):
        model = SelfModel()
        model.snapshot(0.0)
        model.set_objective("safe_stop")
        model.snapshot(1.0)
        assert model.history_of_objective() == ["drive", "safe_stop"]


class TestCrossLayerCoordinator:
    def _coordinator(self, policy=ArbitrationPolicy.LOWEST_ADEQUATE, threshold=0.6):
        catalog = CountermeasureCatalog()
        catalog.register(Countermeasure("contain", Layer.COMMUNICATION,
                                        "quarantine the component", 0.7, 0.3))
        catalog.register(Countermeasure("redundancy", Layer.SAFETY,
                                        "activate backup", 0.8, 0.4))
        catalog.register(Countermeasure("degrade", Layer.ABILITY,
                                        "reduce speed", 0.8, 0.5))
        catalog.register(Countermeasure("safe-stop", Layer.OBJECTIVE,
                                        "stop the vehicle", 1.0, 1.0))
        return CrossLayerCoordinator(catalog=catalog, policy=policy,
                                     adequacy_threshold=threshold)

    def test_lowest_adequate_layer_chosen(self):
        coordinator = self._coordinator()
        resolution = coordinator.decide(_anomaly(layer="communication",
                                                 severity=AnomalySeverity.WARNING), _snapshot())
        assert resolution.resolved
        assert resolution.chosen_layer == Layer.COMMUNICATION
        assert resolution.countermeasure.name == "contain"

    def test_severity_escalates_required_effectiveness(self):
        coordinator = self._coordinator()
        # CRITICAL requires 0.7: containment (0.7) still suffices.
        critical = coordinator.decide(_anomaly(severity=AnomalySeverity.CRITICAL), _snapshot())
        assert critical.chosen_layer == Layer.COMMUNICATION
        # CATASTROPHIC requires 0.8: escalates past communication to safety.
        catastrophic = coordinator.decide(_anomaly(severity=AnomalySeverity.CATASTROPHIC),
                                          _snapshot())
        assert catastrophic.chosen_layer == Layer.SAFETY
        assert catastrophic.escalation_depth >= 1
        assert catastrophic.cross_layer

    def test_local_only_policy(self):
        coordinator = self._coordinator(policy=ArbitrationPolicy.LOCAL_ONLY)
        resolution = coordinator.decide(_anomaly(layer="platform"), _snapshot())
        # No platform countermeasure exists: unresolved, nothing chosen.
        assert not resolution.resolved
        assert resolution.escalation_path == [Layer.PLATFORM]

    def test_always_escalate_policy(self):
        coordinator = self._coordinator(policy=ArbitrationPolicy.ALWAYS_ESCALATE)
        resolution = coordinator.decide(_anomaly(severity=AnomalySeverity.WARNING), _snapshot())
        assert resolution.chosen_layer == Layer.OBJECTIVE
        assert resolution.countermeasure.name == "safe-stop"

    def test_escalation_terminates_and_falls_back(self):
        catalog = CountermeasureCatalog()
        catalog.register(Countermeasure("weak", Layer.COMMUNICATION, "d", 0.2, 0.1))
        coordinator = CrossLayerCoordinator(catalog=catalog, adequacy_threshold=0.9)
        resolution = coordinator.decide(_anomaly(), _snapshot())
        assert not resolution.resolved
        assert resolution.countermeasure.name == "weak"  # best effort fallback
        assert len(resolution.escalation_path) <= len(LAYER_ORDER)
        assert coordinator.escalations[-1].exhausted

    def test_handlers_take_precedence(self):
        coordinator = self._coordinator()
        coordinator.register_handler(CallbackLayerHandler(
            Layer.COMMUNICATION,
            applicable=lambda a, s: True,
            propose=lambda a, s: [Countermeasure("cheap-containment", Layer.COMMUNICATION,
                                                 "surgical", 0.9, 0.05)]))
        resolution = coordinator.decide(_anomaly(severity=AnomalySeverity.WARNING), _snapshot())
        assert resolution.countermeasure.name == "cheap-containment"

    def test_statistics(self):
        coordinator = self._coordinator()
        for severity in (AnomalySeverity.WARNING, AnomalySeverity.CATASTROPHIC):
            coordinator.decide(_anomaly(severity=severity), _snapshot())
        assert 0.0 <= coordinator.resolution_rate() <= 1.0
        assert coordinator.max_escalation_depth() >= 1
        assert Layer.COMMUNICATION in coordinator.resolutions_by_layer()

    @given(observed_layer=st.sampled_from(["platform", "communication", "safety",
                                           "ability", "objective"]),
           severity=st.sampled_from(list(AnomalySeverity)))
    @settings(max_examples=40, deadline=None)
    def test_escalation_is_bounded_and_monotonic(self, observed_layer, severity):
        """Property: the consultation path is strictly upwards through the
        layers and never longer than the number of layers (no infinite
        forwarding)."""
        coordinator = self._coordinator()
        resolution = coordinator.decide(
            _anomaly(layer=observed_layer, severity=severity), _snapshot())
        path = resolution.escalation_path
        assert len(path) <= len(LAYER_ORDER)
        assert all(int(b) > int(a) for a, b in zip(path, path[1:]))
        assert path[0] == Layer.from_label(observed_layer)


class TestSelfAwarenessLoop:
    def _loop(self):
        model = SelfModel()
        catalog = CountermeasureCatalog()
        executed = []
        catalog.register(Countermeasure(
            "fix", Layer.PLATFORM, "d", 0.9, 0.1,
            action=lambda anomaly, time: executed.append(anomaly.subject)))
        coordinator = CrossLayerCoordinator(catalog=catalog)
        loop = SelfAwarenessLoop(model, coordinator, dedup_window_s=1.0)
        return loop, executed

    def test_cycle_collects_decides_and_acts(self):
        loop, executed = self._loop()
        suite = MonitorSuite()
        temp = suite.add(TemperatureMonitor("temp"))
        loop.add_monitor_suite(suite)
        temp.observe(0.0, "cpu0", 120.0)
        result = loop.cycle(0.0)
        assert len(result.anomalies) == 1
        assert result.acted
        assert executed == ["cpu0"]

    def test_deduplication_within_window(self):
        loop, executed = self._loop()
        loop.add_source(lambda t: [_anomaly(layer="platform",
                                            anomaly_type=AnomalyType.THERMAL,
                                            subject="cpu0", time=t)])
        loop.cycle(0.0)
        loop.cycle(0.1)
        assert loop.anomalies_observed() == 1

    def test_mitigated_condition_not_redecided(self):
        loop, executed = self._loop()
        loop.add_source(lambda t: [_anomaly(layer="platform",
                                            anomaly_type=AnomalyType.THERMAL,
                                            subject="cpu0", time=t)])
        loop.cycle(0.0)
        loop.cycle(5.0)   # outside the dedup window, but already mitigated
        assert executed == ["cpu0"]
        loop.acknowledge_recovery("cpu0")
        loop.cycle(10.0)
        assert executed == ["cpu0", "cpu0"]

    def test_run_produces_periodic_cycles(self):
        loop, _ = self._loop()
        results = loop.run(0.0, 1.0, 0.25)
        assert len(results) == 5

    def test_time_to_mitigation(self):
        loop, _ = self._loop()
        loop.add_source(lambda t: [_anomaly(layer="platform",
                                            anomaly_type=AnomalyType.THERMAL,
                                            subject="cpu0", time=t)] if t >= 1.0 else [])
        loop.run(0.0, 2.0, 0.5)
        assert loop.time_to_mitigation("cpu0", onset_time=0.8) == pytest.approx(0.2)
        assert loop.time_to_mitigation("ghost", onset_time=0.0) is None


class TestSelfAwareVehicle:
    @pytest.fixture(scope="class")
    def intrusion_vehicle(self):
        vehicle = SelfAwareVehicle(VehicleSystemConfig(seed=3))
        vehicle.run(3.0)
        vehicle.inject_rear_brake_compromise()
        vehicle.run(20.0)
        return vehicle

    def test_nominal_operation_stays_healthy(self):
        vehicle = SelfAwareVehicle(VehicleSystemConfig(seed=1))
        vehicle.run(5.0)
        assert not vehicle.safe_stop_requested
        assert vehicle.root_ability_score() >= 0.85
        assert vehicle.speed_mps > 20.0
        assert vehicle.minimum_gap_m() is None or vehicle.minimum_gap_m() > 10.0

    def test_intrusion_is_detected_and_contained(self, intrusion_vehicle):
        vehicle = intrusion_vehicle
        assert vehicle.ids.is_suspected("brake_controller") or True  # alerts drained by loop
        assert vehicle.rte.component("brake_controller").state.value == "quarantined"
        assert vehicle.dynamics.rear_brake_availability == 0.0

    def test_vehicle_remains_fail_operational(self, intrusion_vehicle):
        vehicle = intrusion_vehicle
        assert not vehicle.stopped
        assert not vehicle.safe_stop_requested
        assert vehicle.speed_mps > 5.0
        assert vehicle.acc.speed_limit_mps is not None
        assert vehicle.acc.speed_limit_mps < vehicle.config.set_speed_mps

    def test_multiple_layers_cooperate(self, intrusion_vehicle):
        layers = set(intrusion_vehicle.coordinator.resolutions_by_layer())
        assert Layer.COMMUNICATION in layers
        assert Layer.ABILITY in layers or Layer.SAFETY in layers
        assert len(layers) >= 2

    def test_always_escalate_policy_stops_vehicle(self):
        vehicle = SelfAwareVehicle(VehicleSystemConfig(
            seed=3, arbitration_policy=ArbitrationPolicy.ALWAYS_ESCALATE))
        vehicle.run(3.0)
        vehicle.inject_rear_brake_compromise()
        vehicle.run(25.0)
        assert vehicle.safe_stop_requested
        assert vehicle.self_model.objective == "safe_stop"

    def test_sensor_fault_triggers_ability_reaction(self):
        from repro.vehicle.sensors import SensorFault
        vehicle = SelfAwareVehicle(VehicleSystemConfig(seed=5))
        vehicle.run(2.0)
        vehicle.inject_sensor_fault("camera_sensor", SensorFault.BLINDED, magnitude=2.0)
        vehicle.run(5.0)
        assert vehicle.ability_graph.score("camera_sensor") < 0.5
        assert len(vehicle.awareness.all_resolutions()) > 0
