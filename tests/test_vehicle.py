"""Tests for the driving-function substrate (dynamics, sensors, tracking,
driver intent, actuators, ACC)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.random import SeededRNG
from repro.vehicle.actuators import ActuatorFault, BrakeActuator, PowertrainActuator
from repro.vehicle.acc import AccConfig, AccController, AccStatus
from repro.vehicle.driver import DriverIntentEstimator, DriverIntentKind, HmiInput
from repro.vehicle.dynamics import LongitudinalDynamics, VehicleParameters, VehicleState
from repro.vehicle.environment import Environment, LeadVehicle, Weather, WeatherCondition
from repro.vehicle.sensors import CameraSensor, LidarSensor, RadarSensor, SensorFault
from repro.vehicle.tracking import ObjectTracker


class TestDynamics:
    def test_acceleration_from_drive_command(self):
        dynamics = LongitudinalDynamics()
        dynamics.step(0.1, drive_command=1.0, brake_command=0.0)
        assert dynamics.state.speed_mps > 0.0
        assert dynamics.state.acceleration_mps2 > 0.0

    def test_braking_stops_vehicle_without_reversing(self):
        dynamics = LongitudinalDynamics(initial_state=VehicleState(speed_mps=5.0))
        for _ in range(200):
            dynamics.step(0.05, 0.0, 1.0)
        assert dynamics.state.speed_mps == 0.0

    def test_disabling_rear_circuit_reduces_deceleration(self):
        dynamics = LongitudinalDynamics()
        nominal = dynamics.available_deceleration()
        dynamics.set_brake_circuit_availability(rear=0.0)
        assert dynamics.available_deceleration() < nominal
        assert dynamics.braking_capability_ratio() < 1.0

    def test_stopping_distance_grows_with_degraded_brakes(self):
        dynamics = LongitudinalDynamics(initial_state=VehicleState(speed_mps=30.0))
        nominal = dynamics.stopping_distance()
        dynamics.set_brake_circuit_availability(rear=0.0, drivetrain=0.0)
        assert dynamics.stopping_distance() > nominal

    def test_safe_speed_inverse_of_stopping_distance(self):
        dynamics = LongitudinalDynamics()
        speed = dynamics.safe_speed_for_stopping_distance(50.0)
        assert dynamics.stopping_distance(speed) == pytest.approx(50.0, rel=1e-6)

    def test_friction_scales_braking(self):
        dry = LongitudinalDynamics(friction_factor=1.0)
        icy = LongitudinalDynamics(friction_factor=0.3)
        assert icy.available_deceleration() < dry.available_deceleration()

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            LongitudinalDynamics(friction_factor=0.0)
        dynamics = LongitudinalDynamics()
        with pytest.raises(ValueError):
            dynamics.step(0.0, 0.0, 0.0)
        with pytest.raises(ValueError):
            dynamics.set_brake_circuit_availability(rear=1.5)
        with pytest.raises(ValueError):
            VehicleParameters(mass_kg=0.0)

    @given(speed=st.floats(min_value=0.0, max_value=60.0))
    @settings(max_examples=30, deadline=None)
    def test_coasting_never_accelerates(self, speed):
        dynamics = LongitudinalDynamics(initial_state=VehicleState(speed_mps=speed))
        dynamics.step(0.1, 0.0, 0.0)
        assert dynamics.state.speed_mps <= speed + 1e-9


class TestEnvironment:
    def test_lead_vehicle_motion_and_gap(self):
        env = Environment()
        lead = env.add_lead_vehicle(LeadVehicle("lead", position_m=50.0, speed_mps=10.0))
        env.step(1.0)
        assert lead.position_m == pytest.approx(60.0)
        assert lead.gap_to(20.0) == pytest.approx(40.0)

    def test_closest_lead_selection(self):
        env = Environment()
        env.add_lead_vehicle(LeadVehicle("far", position_m=100.0, speed_mps=10.0))
        env.add_lead_vehicle(LeadVehicle("near", position_m=40.0, speed_mps=10.0))
        assert env.closest_lead(0.0).name == "near"
        assert env.closest_lead(150.0) is None

    def test_weather_schedule(self):
        env = Environment(Weather.clear())
        env.schedule_weather(5.0, Weather.dense_fog())
        env.step(1.0)
        assert env.weather.condition == WeatherCondition.CLEAR
        env.step(5.0)
        assert env.weather.condition == WeatherCondition.DENSE_FOG

    def test_temperature_profile(self):
        env = Environment()
        env.set_temperature_profile(lambda t: 20.0 + t)
        env.step(5.0)
        assert env.ambient_temperature_c == pytest.approx(25.0)

    def test_weather_factories(self):
        assert Weather.rain(1.0).friction_factor < 1.0
        assert Weather.dense_fog().visibility_m < 200.0
        assert Weather.snow(1.0).friction_factor < Weather.rain(1.0).friction_factor
        with pytest.raises(ValueError):
            Weather(visibility_m=0.0)


class TestSensors:
    def _env_with_lead(self, weather=None, gap=50.0):
        env = Environment(weather or Weather.clear(), SeededRNG(5))
        env.add_lead_vehicle(LeadVehicle("lead", position_m=gap, speed_mps=20.0))
        return env

    def test_measurement_of_target_in_range(self):
        env = self._env_with_lead()
        radar = RadarSensor("radar", SeededRNG(1))
        reading = radar.measure(0.0, 0.0, 25.0, env)
        assert reading.usable
        assert reading.range_m == pytest.approx(50.0, abs=5.0)
        assert reading.range_rate_mps == pytest.approx(-5.0, abs=2.0)

    def test_target_beyond_range_not_detected(self):
        env = self._env_with_lead(gap=500.0)
        camera = CameraSensor("camera", SeededRNG(1))
        reading = camera.measure(0.0, 0.0, 25.0, env)
        assert reading.valid and reading.range_m is None

    def test_fog_degrades_camera_more_than_radar(self):
        fog = Weather.dense_fog(visibility_m=50.0)
        assert CameraSensor("c").weather_factor(fog) < RadarSensor("r").weather_factor(fog)
        assert LidarSensor("l").weather_factor(fog) < RadarSensor("r").weather_factor(fog)

    def test_dropout_fault(self):
        env = self._env_with_lead()
        radar = RadarSensor("radar", SeededRNG(1))
        radar.inject_fault(SensorFault.DROPOUT)
        reading = radar.measure(0.0, 0.0, 25.0, env)
        assert not reading.valid and reading.quality == 0.0
        radar.clear_fault()
        assert radar.measure(0.1, 0.0, 25.0, env).usable

    def test_stuck_fault_repeats_last_value(self):
        env = self._env_with_lead()
        radar = RadarSensor("radar", SeededRNG(1))
        first = radar.measure(0.0, 0.0, 25.0, env)
        radar.inject_fault(SensorFault.STUCK)
        env.step(1.0)
        second = radar.measure(1.0, 0.0, 25.0, env)
        assert second.range_m == first.range_m
        assert second.quality < first.quality

    def test_bias_fault_shifts_measurement(self):
        env = self._env_with_lead()
        radar = RadarSensor("radar", SeededRNG(1))
        radar.inject_fault(SensorFault.BIAS, magnitude=10.0)
        reading = radar.measure(0.0, 0.0, 25.0, env)
        assert reading.range_m == pytest.approx(60.0, abs=5.0)

    def test_blinded_fault_collapses_quality(self):
        env = self._env_with_lead()
        camera = CameraSensor("camera", SeededRNG(1))
        camera.inject_fault(SensorFault.BLINDED, magnitude=2.0)
        assert camera.measure(0.0, 0.0, 25.0, env).quality <= 0.1


class TestTracker:
    def test_tracks_constant_gap(self):
        env = Environment(Weather.clear(), SeededRNG(2))
        env.add_lead_vehicle(LeadVehicle("lead", position_m=40.0, speed_mps=20.0))
        radar = RadarSensor("radar", SeededRNG(3))
        tracker = ObjectTracker()
        track = None
        for i in range(50):
            reading = radar.measure(i * 0.05, 0.0, 20.0, env)
            track = tracker.update(i * 0.05, [reading])
        assert track is not None and track.usable
        assert track.range_m == pytest.approx(40.0 + 50 * 0.05 * 0, abs=3.0)
        assert tracker.performance_score() > 0.8

    def test_coasts_then_drops_track(self):
        tracker = ObjectTracker(max_coast_cycles=3)
        from repro.vehicle.sensors import SensorReading
        tracker.update(0.0, [SensorReading(0.0, True, 30.0, -2.0, 1.0, "radar")])
        for i in range(1, 4):
            track = tracker.update(i * 0.1, [])
            assert track is not None and track.coasting
        assert tracker.update(0.5, []) is None
        assert not tracker.has_track

    def test_fusion_weights_by_quality(self):
        from repro.vehicle.sensors import SensorReading
        good = SensorReading(0.0, True, 30.0, 0.0, 0.9, "radar")
        bad = SensorReading(0.0, True, 60.0, 0.0, 0.1, "camera")
        fused = ObjectTracker.fuse([good, bad])
        assert fused.range_m < 45.0  # closer to the high-quality reading

    def test_fusion_with_no_usable_readings(self):
        from repro.vehicle.sensors import SensorReading
        assert ObjectTracker.fuse([SensorReading(0.0, False, None, None, 0.0, "x")]) is None


class TestDriverIntent:
    def test_default_cruise_intent(self):
        estimator = DriverIntentEstimator(default_set_speed_mps=30.0)
        intent = estimator.estimate(0.0)
        assert intent.kind == DriverIntentKind.CRUISE
        assert intent.set_speed_mps == 30.0
        assert intent.confidence > 0.5

    def test_override_and_resume(self):
        estimator = DriverIntentEstimator()
        estimator.process_input(HmiInput(1.0, "brake_pedal", 0.8))
        assert estimator.estimate(1.0).kind == DriverIntentKind.OVERRIDE_BRAKE
        estimator.process_input(HmiInput(2.0, "resume"))
        assert estimator.estimate(2.0).kind == DriverIntentKind.CRUISE

    def test_set_speed_change(self):
        estimator = DriverIntentEstimator()
        estimator.process_input(HmiInput(0.0, "set_speed", 22.0))
        assert estimator.estimate(0.0).set_speed_mps == 22.0

    def test_hmi_loss_drops_ability_score(self):
        estimator = DriverIntentEstimator()
        estimator.set_hmi_available(False)
        estimator.estimate(0.0)
        assert estimator.ability_score() == 0.0
        estimator.set_hmi_available(True)
        estimator.process_input(HmiInput(1.0, "resume"))
        estimator.estimate(1.0)
        assert estimator.ability_score() == 1.0

    def test_confidence_decays_after_silence(self):
        estimator = DriverIntentEstimator(hmi_timeout_s=1.0)
        estimator.process_input(HmiInput(0.0, "resume"))
        assert estimator.estimate(0.5).confidence == 1.0
        assert estimator.estimate(5.0).confidence < 1.0


class TestActuators:
    def test_availability_with_faults(self):
        brake = BrakeActuator()
        assert brake.availability == 1.0
        brake.inject_fault(ActuatorFault.DEGRADED, degradation=0.4)
        assert brake.availability == pytest.approx(0.6)
        brake.inject_fault(ActuatorFault.COMPROMISED)
        assert brake.availability == 0.0
        brake.restore()
        assert brake.availability == 1.0

    def test_circuit_loss_affects_dynamics_and_score(self):
        dynamics = LongitudinalDynamics()
        brake = BrakeActuator()
        brake.disable_circuit("rear", dynamics)
        assert dynamics.rear_brake_availability == 0.0
        assert brake.ability_score() == pytest.approx(0.5)
        brake.enable_circuit("rear", dynamics)
        assert dynamics.rear_brake_availability == 1.0
        with pytest.raises(ValueError):
            brake.disable_circuit("middle")

    def test_drivetrain_braking_toggle(self):
        dynamics = LongitudinalDynamics()
        powertrain = PowertrainActuator()
        powertrain.set_drivetrain_braking(False, dynamics)
        assert dynamics.drivetrain_brake_availability == 0.0
        powertrain.set_drivetrain_braking(True, dynamics)
        assert dynamics.drivetrain_brake_availability == 1.0

    def test_shut_off_blocks_commands(self):
        dynamics = LongitudinalDynamics(initial_state=VehicleState(speed_mps=10.0))
        powertrain = PowertrainActuator()
        powertrain.shut_off()
        assert powertrain.apply(dynamics, 1.0) == 0.0


def _closed_loop(weather=None, steps=1500, set_speed=30.0, lead_speed=22.0):
    env = Environment(weather or Weather.clear(), SeededRNG(11))
    env.add_lead_vehicle(LeadVehicle("lead", position_m=70.0, speed_mps=lead_speed))
    dynamics = LongitudinalDynamics(initial_state=VehicleState(speed_mps=25.0))
    radar, camera = RadarSensor("radar", SeededRNG(12)), CameraSensor("camera", SeededRNG(13))
    tracker, driver = ObjectTracker(), DriverIntentEstimator(default_set_speed_mps=set_speed)
    powertrain, brakes = PowertrainActuator(), BrakeActuator()
    acc = AccController(dynamics, powertrain, brakes)
    time = 0.0
    for _ in range(steps):
        readings = [s.measure(time, dynamics.state.position_m, dynamics.state.speed_mps, env)
                    for s in (radar, camera)]
        track = tracker.update(time, readings)
        acc.step(time, driver.estimate(time), track)
        env.step(acc.config.control_period_s)
        time += acc.config.control_period_s
    return env, dynamics, acc


class TestAccController:
    def test_follows_slower_lead_at_safe_gap(self):
        env, dynamics, acc = _closed_loop()
        lead = env.lead_vehicle("lead")
        gap = lead.position_m - dynamics.state.position_m
        assert dynamics.state.speed_mps == pytest.approx(22.0, abs=1.0)
        assert gap == pytest.approx(1.8 * 22.0, rel=0.3)
        assert acc.minimum_gap_observed() > 10.0
        assert acc.control_performance() > 0.7

    def test_reaches_set_speed_without_lead(self):
        env = Environment(Weather.clear(), SeededRNG(1))
        dynamics = LongitudinalDynamics()
        acc = AccController(dynamics, PowertrainActuator(), BrakeActuator())
        driver = DriverIntentEstimator(default_set_speed_mps=20.0)
        time = 0.0
        for _ in range(2000):
            acc.step(time, driver.estimate(time), None)
            time += acc.config.control_period_s
        assert dynamics.state.speed_mps == pytest.approx(20.0, abs=1.0)

    def test_speed_limit_enforced(self):
        env = Environment(Weather.clear(), SeededRNG(1))
        dynamics = LongitudinalDynamics(initial_state=VehicleState(speed_mps=25.0))
        acc = AccController(dynamics, PowertrainActuator(), BrakeActuator())
        acc.impose_speed_limit(15.0)
        driver = DriverIntentEstimator(default_set_speed_mps=30.0)
        time = 0.0
        for _ in range(2000):
            acc.step(time, driver.estimate(time), None)
            time += acc.config.control_period_s
        assert dynamics.state.speed_mps <= 16.0
        acc.impose_speed_limit(None)
        with pytest.raises(ValueError):
            acc.impose_speed_limit(-1.0)

    def test_driver_override_suspends_control(self):
        dynamics = LongitudinalDynamics(initial_state=VehicleState(speed_mps=20.0))
        acc = AccController(dynamics, PowertrainActuator(), BrakeActuator())
        driver = DriverIntentEstimator()
        driver.process_input(HmiInput(0.0, "brake_pedal", 1.0))
        command = acc.step(0.0, driver.estimate(0.0), None)
        assert acc.status == AccStatus.OVERRIDDEN
        assert command.brake > 0.0

    def test_disengage(self):
        dynamics = LongitudinalDynamics(initial_state=VehicleState(speed_mps=20.0))
        acc = AccController(dynamics, PowertrainActuator(), BrakeActuator())
        driver = DriverIntentEstimator()
        driver.process_input(HmiInput(0.0, "cancel"))
        command = acc.step(0.0, driver.estimate(0.0), None)
        assert acc.status == AccStatus.DISENGAGED
        assert command.drive == 0.0 and command.brake == 0.0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            AccConfig(control_period_s=0.0)
        with pytest.raises(ValueError):
            AccConfig(min_gap_m=0.0)
