"""Picklable shard protocol of the parallel campaign engine.

One wave of a sharded campaign ships only its *representatives* — the first
vehicle of every new request-equivalence group (see
:meth:`repro.fleet.campaign.Campaign._equivalence_key`) — to a
``multiprocessing`` pool.  A :class:`ShardTask` bundles a slice of those
representatives; the worker (:func:`execute_shard`, module-level so the pool
can pickle it) runs each one's full MCC integration and returns a
:class:`ShardVerdict` per item plus the analysis-cache entries it derived.
The parent fans every verdict back out across the whole equivalence group
through :meth:`~repro.mcc.controller.MultiChangeController.replay_change`,
so non-representative vehicles never cross a process boundary at all.

Two properties keep the parallel path byte-identical to sequential
admission:

* Integration is deterministic in (model state, platform shape, request) —
  the exact inputs a representative carries — so where the verdict is
  computed cannot change it.
* Pickled :class:`~repro.analysis.cache.AnalysisCache` objects travel
  *empty* by design; workers warm-start from an on-disk snapshot instead
  (:meth:`~repro.analysis.cache.AnalysisCache.load_snapshot`) and verdicts
  never depend on cache contents, only wall time does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.cpa import ResponseTimeResult
from repro.fleet.vehicle import FleetVehicle
from repro.mcc.configuration import ChangeRequest, IntegrationReport

#: One persisted cache entry: ``(taskset_key, per-task results)``.
CacheEntry = Tuple[Tuple, Dict[str, ResponseTimeResult]]


@dataclass
class ShardItem:
    """One representative admission problem inside a shard.

    ``position`` is the representative's index in the wave's representative
    list — the parent uses it to map the verdict back to the equivalence
    key (keys themselves are id()-based and deliberately never cross the
    process boundary).
    """

    position: int
    vehicle: FleetVehicle
    request: ChangeRequest


@dataclass
class ShardTask:
    """A picklable slice of one wave's representative integrations."""

    shard_index: int
    items: List[ShardItem]
    #: Warm-start snapshot for the worker's local cache (optional).
    cache_path: Optional[str] = None


@dataclass
class ShardVerdict:
    """The outcome of one representative integration, ready to replay.

    Carries exactly what
    :meth:`~repro.mcc.controller.MultiChangeController.replay_change` needs
    to re-apply the decision on an equivalent vehicle: the report plus the
    decided mapping and priorities (empty for rejections — a rejection
    replays without touching the model).
    """

    position: int
    report: IntegrationReport
    mapping: Dict[str, str] = field(default_factory=dict)
    priorities: Dict[str, int] = field(default_factory=dict)


@dataclass
class ShardResult:
    """Everything a shard worker sends back to the campaign parent."""

    shard_index: int
    verdicts: List[ShardVerdict]
    #: Cache entries the worker derived beyond its warm-start snapshot; the
    #: parent merges them so later waves (and the next snapshot) reuse them.
    cache_entries: List[CacheEntry] = field(default_factory=list)


#: Worker-process-local cache, installed by :func:`initialize_worker` when
#: the campaign pool starts.  It outlives individual shard tasks, so a
#: worker accumulates every analysis it ever derived across all waves of
#: the campaign — the in-process complement of the on-disk snapshot.
_WORKER_CACHE: Optional[AnalysisCache] = None

#: Set by the campaign parent immediately before it forks its pool.  Under
#: the ``fork`` start method the child inherits the parent's heap
#: copy-on-write, so this reference hands every worker a private, fully
#: warm copy of the shared cache at zero serialization cost.  Under
#: ``spawn`` the child starts from a fresh interpreter, the seed is
#: ``None`` there, and :func:`initialize_worker` falls back to loading the
#: on-disk snapshot.
_FORK_SEED: Optional[AnalysisCache] = None


def initialize_worker(cache_path: Optional[str],
                      max_entries: int = 16384) -> None:
    """Pool initializer: install this worker's long-lived analysis cache.

    Prefers the fork-inherited copy of the parent's cache (free and fully
    warm); otherwise builds a fresh cache and warm-starts it from
    ``cache_path``.  Either way the load happens once per worker process,
    at pool creation — not per shard task, where re-reading a multi-
    megabyte snapshot would dwarf the analyses themselves.
    """
    global _WORKER_CACHE
    if _FORK_SEED is not None:
        _WORKER_CACHE = _FORK_SEED
        return
    cache = AnalysisCache(max_entries=max_entries)
    if cache_path is not None:
        cache.load_snapshot(cache_path, missing_ok=True)
    _WORKER_CACHE = cache


def execute_shard(task: ShardTask) -> ShardResult:
    """Run every representative integration of ``task`` in this process.

    Uses the worker's long-lived cache when :func:`initialize_worker` set
    one up (the pooled campaign path); otherwise — direct in-process calls,
    e.g. from tests — builds a task-local cache warm-started from
    ``task.cache_path``.  Either way the cache is attached to each
    vehicle's acceptance tests (their pickled caches arrived empty) and the
    full ``request_change`` integration runs per item, in list order,
    sharing the cache and its incremental engine exactly like a sequential
    batched wave would.
    """
    cache = _WORKER_CACHE
    if cache is None:
        cache = AnalysisCache()
        if task.cache_path is not None:
            cache.load_snapshot(task.cache_path, missing_ok=True)
    preloaded = set(cache.keys())
    verdicts: List[ShardVerdict] = []
    for item in task.items:
        item.vehicle.mcc.attach_analysis_cache(cache)
        report = item.vehicle.mcc.request_change(item.request)
        model = item.vehicle.mcc.model
        verdicts.append(ShardVerdict(
            position=item.position, report=report,
            mapping=dict(model.mapping) if report.accepted else {},
            priorities=dict(model.priorities) if report.accepted else {}))
    return ShardResult(shard_index=task.shard_index, verdicts=verdicts,
                       cache_entries=cache.export_entries(exclude=preloaded))


def plan_shards(item_count: int, workers: int) -> List[List[int]]:
    """Deterministic round-robin partition of item positions into shards.

    Returns at most ``workers`` non-empty shards; item ``i`` lands in shard
    ``i % shards``.  Round-robin keeps shard sizes within one of each other
    for any item count, which matters when representatives have similar
    cost.  The partition affects wall time only — verdicts are independent
    of which worker computes them.
    """
    if item_count <= 0:
        return []
    if workers <= 1:
        return [list(range(item_count))]
    shard_count = min(workers, item_count)
    shards: List[List[int]] = [[] for _ in range(shard_count)]
    for position in range(item_count):
        shards[position % shard_count].append(position)
    return shards
