#!/usr/bin/env python3
"""Quickstart: a self-aware vehicle reacting to a rear-brake intrusion.

Reproduces the running cross-layer example of Section V of the paper:
a security flaw is detected in the rear-brake software component, the
communication layer contains it, the safety layer activates the drive-train
braking redundancy, and the ability layer restricts the maximum speed so the
vehicle stays fail-operational instead of performing an emergency stop.

Run with::

    python examples/quickstart.py
"""

from repro import SelfAwareVehicle, VehicleSystemConfig


def main() -> None:
    vehicle = SelfAwareVehicle(VehicleSystemConfig(seed=42))

    print("== nominal driving (5 s) ==")
    vehicle.run(5.0)
    print(f"speed: {vehicle.speed_mps:5.1f} m/s   "
          f"root ability: {vehicle.root_ability_score():.2f}   "
          f"objective: {vehicle.self_model.objective}")

    print("\n== rear-brake component compromised ==")
    vehicle.inject_rear_brake_compromise()
    vehicle.run(30.0)

    print(f"speed: {vehicle.speed_mps:5.1f} m/s   "
          f"root ability: {vehicle.root_ability_score():.2f}   "
          f"objective: {vehicle.self_model.objective}")
    print(f"braking capability: {vehicle.dynamics.braking_capability_ratio():.0%}   "
          f"imposed speed limit: {vehicle.acc.speed_limit_mps:.1f} m/s   "
          f"safe stop requested: {vehicle.safe_stop_requested}")

    print("\n== cross-layer event log ==")
    for event in vehicle.event_log():
        print("  " + event)

    print("\n== resolutions per layer ==")
    by_layer = vehicle.coordinator.resolutions_by_layer()
    for layer, count in sorted(by_layer.items()):
        print(f"  {layer.name.lower():14s} {count}")
    print(f"\nlayers involved in handling the incident: {len(by_layer)} "
          "(communication containment, safety redundancy, ability restriction)")


if __name__ == "__main__":
    main()
