"""Integration tests for the paper's scenario drivers (kept short — the
benchmarks run the full-length versions)."""

from __future__ import annotations

import pytest

from repro.core.arbitration import ArbitrationPolicy
from repro.mcc.mapping import MappingStrategy
from repro.scenarios.infield_update import generate_change_requests, run_infield_update_scenario
from repro.scenarios.intrusion import run_intrusion_scenario
from repro.scenarios.platooning_fog import run_fog_platooning_scenario, sweep_visibility
from repro.scenarios.thermal import ThermalStrategy, compare_thermal_strategies, run_thermal_scenario
from repro.scenarios.weather_routing import (
    crossover_severity,
    run_weather_routing_scenario,
    sweep_severity,
)


class TestIntrusionScenario:
    @pytest.fixture(scope="class")
    def cross_layer(self):
        return run_intrusion_scenario(ArbitrationPolicy.LOWEST_ADEQUATE,
                                      attack_time_s=3.0, duration_s=25.0, seed=1)

    @pytest.fixture(scope="class")
    def always_escalate(self):
        return run_intrusion_scenario(ArbitrationPolicy.ALWAYS_ESCALATE,
                                      attack_time_s=3.0, duration_s=25.0, seed=1)

    def test_cross_layer_keeps_vehicle_operational(self, cross_layer):
        assert cross_layer.fail_operational
        assert not cross_layer.safe_stop_requested
        assert cross_layer.average_speed_after_attack_mps > 10.0
        assert cross_layer.braking_capability_after < 1.0

    def test_cross_layer_uses_multiple_layers(self, cross_layer):
        assert cross_layer.cross_layer_layers_involved >= 2
        assert "communication" in cross_layer.resolutions_by_layer

    def test_detection_and_mitigation_are_fast(self, cross_layer):
        assert cross_layer.detection_delay_s is not None
        assert cross_layer.detection_delay_s <= 1.0
        assert cross_layer.time_to_mitigation_s is not None
        assert cross_layer.time_to_mitigation_s <= 2.0

    def test_single_layer_escalation_degrades_availability(self, cross_layer, always_escalate):
        assert always_escalate.safe_stop_requested
        assert (always_escalate.average_speed_after_attack_mps
                < cross_layer.average_speed_after_attack_mps)

    def test_invalid_timing_rejected(self):
        with pytest.raises(ValueError):
            run_intrusion_scenario(attack_time_s=10.0, duration_s=5.0)


class TestThermalScenario:
    @pytest.fixture(scope="class")
    def results(self):
        return compare_thermal_strategies(duration_s=400.0)

    def test_no_reaction_overheats(self, results):
        assert not results[ThermalStrategy.NO_REACTION.value].hardware_protected

    def test_platform_only_protects_hardware_but_misses_deadlines(self, results):
        result = results[ThermalStrategy.PLATFORM_ONLY.value]
        assert result.hardware_protected
        assert not result.deadlines_kept
        assert result.final_speed_factor < 1.0

    def test_function_only_keeps_deadlines_but_risks_hardware(self, results):
        result = results[ThermalStrategy.FUNCTION_ONLY.value]
        assert result.deadlines_kept
        assert not result.hardware_protected

    def test_cross_layer_is_the_only_strategy_satisfying_both(self, results):
        cross = results[ThermalStrategy.CROSS_LAYER.value]
        assert cross.hardware_protected and cross.deadlines_kept
        assert cross.control_quality >= max(
            results[ThermalStrategy.PLATFORM_ONLY.value].control_quality, 0.5)
        others = [results[s.value] for s in ThermalStrategy if s != ThermalStrategy.CROSS_LAYER]
        assert not any(r.hardware_protected and r.deadlines_kept for r in others)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            run_thermal_scenario(duration_s=0.0)


class TestFogPlatooningScenario:
    def test_platoon_benefits_fog_impaired_vehicle(self):
        result = run_fog_platooning_scenario(visibility_m=60.0, num_members=4, num_malicious=0)
        assert result.converged
        assert result.platoon_worthwhile
        assert result.agreed_speed_mps > result.ego_standalone_speed_mps

    def test_malicious_member_tolerated(self):
        result = run_fog_platooning_scenario(visibility_m=60.0, num_members=5, num_malicious=1)
        assert result.converged
        assert result.agreement_error_mps <= 0.2
        # The agreed speed stays bounded by what honest members can support.
        honest_max = max(v for k, v in result.standalone_speeds.items())
        assert result.agreed_speed_mps < honest_max + 15.0

    def test_benefit_shrinks_in_clear_weather(self):
        foggy = run_fog_platooning_scenario(visibility_m=50.0)
        clear = run_fog_platooning_scenario(visibility_m=2000.0)
        assert (foggy.agreed_speed_mps - foggy.ego_standalone_speed_mps
                > clear.agreed_speed_mps - clear.ego_standalone_speed_mps - 1e-6)

    def test_visibility_sweep_monotone_standalone_speed(self):
        results = sweep_visibility([30.0, 60.0, 120.0, 500.0])
        speeds = [r.ego_standalone_speed_mps for r in results]
        assert speeds == sorted(speeds)

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            run_fog_platooning_scenario(num_members=1)
        with pytest.raises(ValueError):
            run_fog_platooning_scenario(num_members=3, num_malicious=2)


class TestWeatherRoutingScenario:
    def test_mild_forecast_keeps_the_pass(self):
        result = run_weather_routing_scenario(severity=0.05)
        assert not result.aware_takes_detour

    def test_severe_forecast_triggers_detour(self):
        result = run_weather_routing_scenario(severity=0.7)
        assert result.aware_takes_detour
        assert not result.baseline_takes_detour
        assert result.detour_extra_km > 0.0
        assert result.aware_exposure < result.baseline_exposure

    def test_crossover_exists_and_is_intermediate(self):
        crossover = crossover_severity(resolution=0.1)
        assert crossover is not None
        assert 0.0 < crossover < 0.8

    def test_exposure_monotone_in_severity_for_baseline(self):
        results = sweep_severity([0.1, 0.4, 0.8])
        exposures = [r.baseline_exposure for r in results]
        assert exposures == sorted(exposures)


class TestInFieldUpdateScenario:
    def test_risky_updates_are_rejected(self):
        result = run_infield_update_scenario(num_requests=25, seed=3, risky_fraction=0.4)
        assert result.total_requests == 25
        assert result.rejected > 0
        assert not result.unsafe_update_accepted
        assert result.acceptance_rate < 1.0

    def test_benign_campaign_mostly_accepted(self):
        result = run_infield_update_scenario(num_requests=10, seed=5, risky_fraction=0.0,
                                             num_processors=6)
        assert result.acceptance_rate >= 0.8
        assert result.final_version >= result.accepted

    def test_request_generator_is_deterministic(self):
        a = generate_change_requests(10, seed=1)
        b = generate_change_requests(10, seed=1)
        assert [r.component for r in a] == [r.component for r in b]
        assert [r.contract.timing.wcet for r in a] == [r.contract.timing.wcet for r in b]

    def test_mapping_strategy_ablation_runs(self):
        worst_fit = run_infield_update_scenario(num_requests=10, seed=2,
                                                mapping_strategy=MappingStrategy.WORST_FIT)
        assert worst_fit.total_requests == 10
