"""Differential oracle for the CAN response-time analysis.

The analytic WCRT bound of
:class:`~repro.analysis.compositional.CanResponseTimeAnalysis` must dominate
every latency the event-driven bus simulation can produce: for randomized
frame sets (identifiers, payloads, periods, release offsets), every
simulated enqueue-to-end-of-frame latency of every stream must stay at or
below the stream's analytic bound.  This mirrors the MCC differential
harness in ``tests/test_mcc_differential.py`` — the simulation is the
ground truth the bound must be sound against.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from harness import BITRATE, frame_workloads, simulate_latencies
from repro.analysis.compositional import CanResponseTimeAnalysis, FrameSpec


@settings(max_examples=60, deadline=None)
@given(workload=frame_workloads())
def test_simulated_latencies_never_exceed_rta_bound(workload):
    specs = [spec for spec, _ in workload]
    analysis = CanResponseTimeAnalysis(specs, BITRATE)
    bounds = analysis.analyse()
    horizon = 25 * max(spec.period for spec in specs)
    observed = simulate_latencies(workload, horizon)
    for spec in specs:
        bound = bounds[spec.name]
        if bound.wcrt is None:
            continue  # overload: the analysis claims no bound
        latencies = observed[spec.name]
        assert latencies, f"stream {spec.name} never completed a frame"
        assert max(latencies) <= bound.wcrt + 1e-9, (
            f"stream {spec.name}: simulated {max(latencies):.6f}s exceeds "
            f"analytic bound {bound.wcrt:.6f}s")


def test_synchronous_release_hits_the_bound_shape():
    """With all offsets at zero (the critical instant), the lowest-priority
    frame's first latency equals the full interference sum — the bound is
    tight, not just sound."""
    specs = [FrameSpec("a", can_id=0x100, period=0.02, dlc=8),
             FrameSpec("b", can_id=0x200, period=0.02, dlc=8),
             FrameSpec("c", can_id=0x300, period=0.02, dlc=8)]
    observed = simulate_latencies([(s, 0.0) for s in specs], horizon=0.1)
    bounds = CanResponseTimeAnalysis(specs, BITRATE).analyse()
    tx = specs[0].transmission_time(BITRATE)
    assert max(observed["c"]) == pytest.approx(3 * tx)
    assert bounds["c"].wcrt == pytest.approx(3 * tx)


def test_overloaded_bus_reports_no_bound():
    specs = [FrameSpec(f"f{i}", can_id=0x100 + i, period=0.0004, dlc=8)
             for i in range(2)]
    analysis = CanResponseTimeAnalysis(specs, BITRATE)
    assert analysis.utilization() > 1.0
    results = analysis.analyse()
    assert any(result.wcrt is None for result in results.values())
    assert not analysis.schedulable()
