"""The layer model of vehicle self-awareness.

Section V structures the vehicle into layers that each observe and react to
deviations: the hardware/software *platform*, the *communication* layer
(network access, intrusion detection), the *safety* layer (redundancy,
recovery, fail-operational mechanisms), the *ability* layer (skill/ability
graphs of the driving function) and the *objective* layer (the driving
mission itself, e.g. continue, reduce objectives, safe stop).

Each layer registers a :class:`LayerHandler` with the cross-layer
coordinator; a handler can judge whether it is applicable to an anomaly and
propose countermeasures with a predicted effectiveness.
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Protocol, TYPE_CHECKING

from repro.monitoring.anomaly import Anomaly

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.countermeasures import Countermeasure
    from repro.core.self_model import SelfModelSnapshot


class Layer(enum.IntEnum):
    """Ordered system layers; lower values are "closer to the hardware".

    The ordering matters for escalation: the coordinator prefers resolving a
    problem on the lowest layer that offers an adequate countermeasure
    ("if only a single IP-based service is affected by a security leak, it
    will be more appropriate to contain this service than to terminate all
    network connections on the Ethernet layer") and escalates upwards when a
    layer cannot contain the problem.
    """

    PLATFORM = 0
    COMMUNICATION = 1
    SAFETY = 2
    ABILITY = 3
    OBJECTIVE = 4

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Layer":
        try:
            return cls[label.upper()]
        except KeyError as exc:
            raise ValueError(f"unknown layer {label!r}") from exc

    def next_higher(self) -> Optional["Layer"]:
        if self == Layer.OBJECTIVE:
            return None
        return Layer(self + 1)


#: Layers in escalation order (lowest first).
LAYER_ORDER: List[Layer] = [Layer.PLATFORM, Layer.COMMUNICATION, Layer.SAFETY,
                            Layer.ABILITY, Layer.OBJECTIVE]


class LayerHandler(Protocol):
    """Interface each layer exposes to the cross-layer coordinator."""

    layer: Layer

    def applicable(self, anomaly: Anomaly, snapshot: "SelfModelSnapshot") -> bool:
        """Whether this layer can meaningfully react to the anomaly at all."""
        ...  # pragma: no cover - protocol

    def propose(self, anomaly: Anomaly,
                snapshot: "SelfModelSnapshot") -> List["Countermeasure"]:
        """Countermeasures this layer offers for the anomaly (may be empty)."""
        ...  # pragma: no cover - protocol


class CallbackLayerHandler:
    """Convenience handler assembled from plain callables.

    Scenarios and examples register handlers without subclassing:

    >>> handler = CallbackLayerHandler(Layer.SAFETY,
    ...     applicable=lambda a, s: a.anomaly_type.value == "component_failure",
    ...     propose=lambda a, s: [restart_countermeasure])
    """

    def __init__(self, layer: Layer,
                 applicable: Callable[[Anomaly, "SelfModelSnapshot"], bool],
                 propose: Callable[[Anomaly, "SelfModelSnapshot"], List["Countermeasure"]]) -> None:
        self.layer = layer
        self._applicable = applicable
        self._propose = propose

    def applicable(self, anomaly: Anomaly, snapshot: "SelfModelSnapshot") -> bool:
        return self._applicable(anomaly, snapshot)

    def propose(self, anomaly: Anomaly,
                snapshot: "SelfModelSnapshot") -> List["Countermeasure"]:
        return self._propose(anomaly, snapshot)
