"""Sharded campaign engine: parallel/sequential equivalence, shard protocol,
persistent cache warm-starts and checkpoint/resume.

The load-bearing guarantee of the parallel engine is *byte-identical
results*: for any fleet, any staging policy and any failure injection,
``workers=4`` must produce the same :class:`CampaignResult`, the same wave
records and the same per-vehicle rollout state as ``workers=1`` — including
campaigns that halt mid-rollout.  A hypothesis-seeded differential harness
pins that; deterministic tests cover the shard partition, snapshot
portability and resume-after-remediation.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.fleet.shard as shard_module
from repro.analysis.cache import AnalysisCache
from repro.fleet.campaign import (Campaign, CampaignCheckpoint, CampaignError,
                                  CampaignResult, WavePolicy)
from repro.fleet.shard import (ShardItem, ShardTask, execute_shard,
                               plan_shards)
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import build_update_contract


def make_factory():
    """Per-variant ADD update factory (one shared contract per variant)."""
    contracts = {}

    def factory(vehicle):
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    return factory


def campaign_digest(result: CampaignResult):
    """Everything deterministic about a result (no cache/engine counters —
    those legitimately differ between worker layouts)."""
    return (result.fleet_size, result.batched, result.admitted,
            result.rejected, result.deviating, result.refined,
            result.rolled_back, result.halted, result.halted_wave,
            result.completed,
            [record.to_dict() for record in result.waves])


def fleet_digest(fleet):
    """Per-vehicle rollout state: flags, model version, installed set."""
    return [(vehicle.vehicle_id, vehicle.updated, vehicle.deviating,
             vehicle.rolled_back, vehicle.mcc.version,
             sorted(vehicle.mcc.model.components()),
             sorted(vehicle.mcc.model.mapping.items()))
            for vehicle in fleet]


def run_campaign(size, seed, workers, *, failure_rate=0.0, policy=None,
                 cache_path=None, checkpoint_path=None, num_variants=4):
    spec = FleetSpec(size=size, seed=seed, num_variants=num_variants,
                     extra_components=2)
    cache = AnalysisCache()
    fleet = generate_fleet(spec, analysis_cache=cache)
    campaign = Campaign(fleet, make_factory(), policy=policy,
                        analysis_cache=cache, workers=workers,
                        failure_injection_rate=failure_rate,
                        feedback_seed=seed, cache_path=cache_path,
                        checkpoint_path=checkpoint_path)
    return fleet, campaign, campaign.run()


class TestShardPlanning:
    """The deterministic round-robin partition."""

    def test_round_robin_partition(self):
        assert plan_shards(5, 2) == [[0, 2, 4], [1, 3]]
        assert plan_shards(4, 4) == [[0], [1], [2], [3]]

    def test_fewer_items_than_workers(self):
        assert plan_shards(2, 8) == [[0], [1]]

    def test_degenerate_inputs(self):
        assert plan_shards(0, 4) == []
        assert plan_shards(3, 1) == [[0, 1, 2]]
        assert plan_shards(3, 0) == [[0, 1, 2]]

    def test_every_item_lands_exactly_once(self):
        shards = plan_shards(17, 5)
        flat = sorted(position for shard in shards for position in shard)
        assert flat == list(range(17))
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1


class TestShardExecution:
    """execute_shard run in-process: the worker path without the pool."""

    def test_shard_verdicts_match_direct_integration(self, tmp_path):
        cache = AnalysisCache()
        fleet = generate_fleet(FleetSpec(size=2, seed=5, num_variants=2,
                                         extra_components=2),
                               analysis_cache=cache)
        factory = make_factory()
        requests = [factory(vehicle) for vehicle in fleet]
        snapshot_path = os.path.join(tmp_path, "cache.pkl")
        cache.save_snapshot(snapshot_path)
        # Pickle-roundtrip the task exactly as the pool would.
        task = pickle.loads(pickle.dumps(ShardTask(
            shard_index=0,
            items=[ShardItem(position=i, vehicle=vehicle, request=request)
                   for i, (vehicle, request) in enumerate(zip(fleet, requests))],
            cache_path=snapshot_path)))
        shard_result = execute_shard(task)
        # Reference: the same integrations on the original (unpickled) fleet.
        accepted = 0
        for verdict, vehicle, request in zip(shard_result.verdicts, fleet,
                                             requests):
            reference = vehicle.mcc.request_change(request)
            assert verdict.report.accepted == reference.accepted
            assert verdict.report.acceptance_results == \
                reference.acceptance_results
            if reference.accepted:
                accepted += 1
                assert verdict.mapping == dict(vehicle.mcc.model.mapping)
                assert verdict.priorities == dict(vehicle.mcc.model.priorities)
        assert accepted > 0  # the baseline fleet hosts this update

    def test_shard_returns_only_new_cache_entries(self, tmp_path):
        cache = AnalysisCache()
        fleet = generate_fleet(FleetSpec(size=1, seed=5, num_variants=1,
                                         extra_components=2),
                               analysis_cache=cache)
        factory = make_factory()
        snapshot_path = os.path.join(tmp_path, "cache.pkl")
        preloaded = cache.save_snapshot(snapshot_path)
        assert preloaded > 0  # provisioning analyses are in the snapshot
        task = pickle.loads(pickle.dumps(ShardTask(
            shard_index=0,
            items=[ShardItem(position=0, vehicle=fleet[0],
                             request=factory(fleet[0]))],
            cache_path=snapshot_path)))
        shard_result = execute_shard(task)
        assert shard_result.cache_entries  # the candidate analyses are new
        returned = {key for key, _ in shard_result.cache_entries}
        warm = AnalysisCache()
        warm.load_snapshot(snapshot_path)
        preloaded_keys = {key for key, _ in warm.export_entries()}
        assert not returned & preloaded_keys  # fan-in excludes the warm-start


class TestWorkerInitializer:
    """initialize_worker: fork-seed preferred, snapshot fallback."""

    def teardown_method(self):
        shard_module._WORKER_CACHE = None
        shard_module._FORK_SEED = None

    def test_fork_seed_wins(self, tmp_path):
        seed_cache = AnalysisCache(max_entries=5)
        shard_module._FORK_SEED = seed_cache
        shard_module.initialize_worker(str(tmp_path / "ignored.pkl"))
        assert shard_module._WORKER_CACHE is seed_cache

    def test_snapshot_fallback_without_seed(self, tmp_path):
        source = AnalysisCache()
        fleet = generate_fleet(FleetSpec(size=1, seed=5, num_variants=1,
                                         extra_components=1),
                               analysis_cache=source)
        path = str(tmp_path / "snap.pkl")
        entries = source.save_snapshot(path)
        shard_module._FORK_SEED = None
        shard_module.initialize_worker(path)
        assert shard_module._WORKER_CACHE is not None
        assert len(shard_module._WORKER_CACHE) == entries

    def test_no_seed_no_snapshot(self):
        shard_module.initialize_worker(None)
        assert shard_module._WORKER_CACHE is not None
        assert len(shard_module._WORKER_CACHE) == 0


class TestParallelSequentialEquivalence:
    """workers=1 vs workers=4 must be byte-identical, halt included."""

    def test_clean_rollout_equivalence(self):
        fleet_seq, _, sequential = run_campaign(12, seed=1, workers=1)
        fleet_par, _, parallel = run_campaign(12, seed=1, workers=4)
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)

    def test_mid_campaign_halt_equivalence(self):
        """A failure-injected campaign that halts mid-rollout: identical
        halted wave, identical rollback set, identical per-vehicle state."""
        policy = WavePolicy(canary_size=2, wave_fractions=(0.3, 1.0),
                            max_failure_rate=0.2)
        fleet_seq, _, sequential = run_campaign(16, seed=1, workers=1,
                                                failure_rate=0.5, policy=policy)
        fleet_par, _, parallel = run_campaign(16, seed=1, workers=4,
                                              failure_rate=0.5, policy=policy)
        # The scenario must actually exercise a *mid-campaign* halt.
        assert sequential.halted and sequential.halted_wave >= 1
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)
        rollback_seq = [v.vehicle_id for v in fleet_seq if v.rolled_back]
        rollback_par = [v.vehicle_id for v in fleet_par if v.rolled_back]
        assert rollback_par == rollback_seq

    def test_workers_knob_survives_daemonic_runner_workers(self):
        """The E10 scenario's `workers` knob inside the *parallel*
        experiment runner: a daemonic pool worker may not fork children, so
        the campaign must fall back to in-process sharding — identical
        records, no 'daemonic processes are not allowed to have children'."""
        from repro.experiments import ExperimentSpec, Runner
        spec = ExperimentSpec(
            name="nested", scenario="fleet_update_campaign",
            grid={"fleet_size": 6, "num_variants": 2, "extra_components": 2,
                  "workers": [1, 2]})
        parallel = Runner(parallel=True, workers=2).run(spec)
        assert parallel.ok(), [r.error for r in parallel.records]
        serial = Runner(parallel=False).run(spec)
        assert parallel.canonical_json() == serial.canonical_json()

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           failure_rate=st.sampled_from([0.0, 0.3, 0.8]),
           size=st.integers(min_value=4, max_value=14))
    def test_differential_random_fleets(self, seed, failure_rate, size):
        """Hypothesis-seeded fleets: the parallel engine may never diverge
        from sequential admission, whatever the fleet or failure pattern."""
        policy = WavePolicy(canary_size=1, wave_fractions=(0.5, 1.0),
                            max_failure_rate=0.25)
        fleet_seq, _, sequential = run_campaign(size, seed=seed, workers=1,
                                                failure_rate=failure_rate,
                                                policy=policy)
        fleet_par, _, parallel = run_campaign(size, seed=seed, workers=4,
                                              failure_rate=failure_rate,
                                              policy=policy)
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)


class TestPersistentCache:
    """On-disk snapshots: warm-starts change wall time, never results."""

    def test_rerun_warm_starts_from_snapshot(self, tmp_path):
        cache_path = os.path.join(tmp_path, "analyses.pkl")
        _, _, first = run_campaign(10, seed=4, workers=1,
                                   cache_path=cache_path)
        assert os.path.exists(cache_path)
        assert first.cache_misses > 0
        _, _, second = run_campaign(10, seed=4, workers=1,
                                    cache_path=cache_path)
        assert campaign_digest(second) == campaign_digest(first)
        # The repeat run's wave analyses are answered from the snapshot.
        assert second.cache_misses < first.cache_misses
        assert second.cache_hits > 0

    def test_snapshot_roundtrip_under_parallel_run(self, tmp_path):
        cache_path = os.path.join(tmp_path, "analyses.pkl")
        _, _, parallel = run_campaign(10, seed=4, workers=3,
                                      cache_path=cache_path)
        _, _, sequential = run_campaign(10, seed=4, workers=1)
        assert campaign_digest(parallel) == campaign_digest(sequential)
        restored = AnalysisCache()
        assert restored.load_snapshot(cache_path) > 0


class TestCheckpointResume:
    """A halted campaign resumes — remediated — to the reference result."""

    POLICY_STRICT = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                               max_failure_rate=0.1)
    POLICY_TOLERANT = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                                 max_failure_rate=1.0)

    def _halting_setup(self, tmp_path, workers=1):
        checkpoint_path = os.path.join(tmp_path, "campaign.ckpt")
        fleet, campaign, halted = run_campaign(
            18, seed=1, workers=workers, failure_rate=0.4,
            policy=self.POLICY_STRICT, checkpoint_path=checkpoint_path)
        assert halted.halted
        assert os.path.exists(checkpoint_path)
        assert campaign.last_checkpoint is not None
        return fleet, halted, checkpoint_path

    def test_resume_reaches_reference_result(self, tmp_path):
        fleet, halted, checkpoint_path = self._halting_setup(tmp_path)
        _, _, reference = run_campaign(18, seed=1, workers=1, failure_rate=0.4,
                                       policy=self.POLICY_TOLERANT)
        # Remediation: the operator raises the tolerance and resumes the
        # SAME fleet from the checkpoint (live objects, same process).
        cache = AnalysisCache()
        resumed = Campaign(fleet, make_factory(), policy=self.POLICY_TOLERANT,
                           analysis_cache=cache, failure_injection_rate=0.4,
                           feedback_seed=1).run(
            resume_from=CampaignCheckpoint.load(checkpoint_path))
        assert campaign_digest(resumed) == campaign_digest(reference)

    def test_resume_on_regenerated_fleet(self, tmp_path):
        """The checkpoint restores vehicles of a *freshly generated* fleet —
        the cross-process story (pickled MCC snapshots are portable)."""
        _, halted, checkpoint_path = self._halting_setup(tmp_path)
        _, _, reference = run_campaign(18, seed=1, workers=1, failure_rate=0.4,
                                       policy=self.POLICY_TOLERANT)
        spec = FleetSpec(size=18, seed=1, num_variants=4, extra_components=2)
        cache = AnalysisCache()
        fresh_fleet = generate_fleet(spec, analysis_cache=cache)
        resumed = Campaign(fresh_fleet, make_factory(),
                           policy=self.POLICY_TOLERANT, analysis_cache=cache,
                           failure_injection_rate=0.4, feedback_seed=1).run(
            resume_from=CampaignCheckpoint.load(checkpoint_path))
        assert campaign_digest(resumed) == campaign_digest(reference)

    def test_resume_with_parallel_workers(self, tmp_path):
        _, halted, checkpoint_path = self._halting_setup(tmp_path, workers=4)
        _, _, reference = run_campaign(18, seed=1, workers=1, failure_rate=0.4,
                                       policy=self.POLICY_TOLERANT)
        spec = FleetSpec(size=18, seed=1, num_variants=4, extra_components=2)
        cache = AnalysisCache()
        fresh_fleet = generate_fleet(spec, analysis_cache=cache)
        resumed = Campaign(fresh_fleet, make_factory(),
                           policy=self.POLICY_TOLERANT, analysis_cache=cache,
                           failure_injection_rate=0.4, feedback_seed=1,
                           workers=4).run(
            resume_from=CampaignCheckpoint.load(checkpoint_path))
        assert campaign_digest(resumed) == campaign_digest(reference)

    def test_checkpoint_excludes_the_halting_wave(self, tmp_path):
        _, halted, checkpoint_path = self._halting_setup(tmp_path)
        checkpoint = CampaignCheckpoint.load(checkpoint_path)
        assert checkpoint.next_wave == halted.halted_wave
        assert len(checkpoint.result.waves) == halted.halted_wave
        assert not checkpoint.result.halted
        # Halting-wave members are stored pre-wave: clean flags.
        halting_ids = set(halted.waves[-1].vehicle_ids)
        for state in checkpoint.vehicle_states:
            if state.vehicle_id in halting_ids:
                assert not (state.updated or state.deviating
                            or state.rolled_back)

    def test_resume_rejects_diverging_fleet(self, tmp_path):
        _, _, checkpoint_path = self._halting_setup(tmp_path)
        checkpoint = CampaignCheckpoint.load(checkpoint_path)
        spec = FleetSpec(size=5, seed=1, num_variants=4, extra_components=2)
        cache = AnalysisCache()
        wrong_fleet = generate_fleet(spec, analysis_cache=cache)
        with pytest.raises(CampaignError):
            Campaign(wrong_fleet, make_factory(), policy=self.POLICY_TOLERANT,
                     analysis_cache=cache).run(resume_from=checkpoint)

    def test_resume_rejects_diverging_staging(self, tmp_path):
        _, _, checkpoint_path = self._halting_setup(tmp_path)
        checkpoint = CampaignCheckpoint.load(checkpoint_path)
        spec = FleetSpec(size=18, seed=1, num_variants=4, extra_components=2)
        cache = AnalysisCache()
        fleet = generate_fleet(spec, analysis_cache=cache)
        reshaped = WavePolicy(canary_size=5, wave_fractions=(1.0,),
                              max_failure_rate=1.0)
        with pytest.raises(CampaignError):
            Campaign(fleet, make_factory(), policy=reshaped,
                     analysis_cache=cache).run(resume_from=checkpoint)

    def test_checkpoint_file_validation(self, tmp_path):
        bogus = os.path.join(tmp_path, "bogus.ckpt")
        with open(bogus, "wb") as stream:
            pickle.dump({"not": "a checkpoint"}, stream)
        with pytest.raises(CampaignError):
            CampaignCheckpoint.load(bogus)
