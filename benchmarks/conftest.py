"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series of one experiment from
DESIGN.md/EXPERIMENTS.md and prints them (run pytest with ``-s`` to see the
tables).  ``pytest-benchmark`` provides the timing statistics; the printed
tables carry the reproduced quantities.

Perf records
------------
:func:`write_bench_record` additionally emits machine-readable
``BENCH_<name>.json`` files (default: ``benchmarks/records/``, override with
``REPRO_BENCH_DIR``) so the performance trajectory — speedups, wall times,
cache/engine counters — can be tracked and diffed across PRs instead of
living only in CI logs.  ``quick_mode()`` reflects the ``REPRO_BENCH_QUICK``
environment variable; benchmarks shrink their grids under it so CI can smoke
the full path in seconds.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path
from typing import Any, Dict, Iterable, List


def quick_mode() -> bool:
    """Whether benchmarks should run with reduced samples (CI smoke)."""
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def write_bench_record(name: str, payload: Dict[str, Any]) -> Path:
    """Write one machine-readable perf record as ``BENCH_<name>.json``.

    The record wraps ``payload`` with enough execution metadata (timestamp,
    interpreter, platform, quick-mode flag) to compare runs across machines
    and PRs.  Returns the path written.

    Quick-mode records land as ``BENCH_<name>.quick.json`` so a CI smoke run
    never overwrites a committed full-fidelity record — and so the
    regression gate (``bench-history --baseline --fail-on-regression``)
    only ever compares records of the same mode against each other.
    """
    out_dir = Path(os.environ.get("REPRO_BENCH_DIR",
                                  Path(__file__).resolve().parent / "records"))
    out_dir.mkdir(parents=True, exist_ok=True)
    quick = quick_mode()
    document = {
        "name": name,
        "created_utc": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": sys.version.split()[0],
        "platform": platform.platform(),
        "quick_mode": quick,
        "mode": "quick" if quick else "full",
        "payload": payload,
    }
    path = out_dir / (f"BENCH_{name}.quick.json" if quick
                      else f"BENCH_{name}.json")
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, sort_keys=True, indent=2)
        handle.write("\n")
    return path


def best_of(fn, repeats: int = 3):
    """Minimum wall time of ``fn()`` over ``repeats`` runs, plus the last
    result.

    min-of-N on both sides of a speedup comparison keeps a single scheduler
    stall on a loaded CI runner from flipping a hard speedup assertion; the
    E9 and E11 speedup benchmarks share this helper so their methodology
    stays consistent.
    """
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def print_table(title: str, rows: List[Dict[str, object]]) -> None:
    """Render a list of row dictionaries as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), *(len(_fmt(r[c])) for r in rows)) for c in columns}
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row[c]).rjust(widths[c]) for c in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
