"""Tests for the Multi-Change Controller, mapping, acceptance tests, the RTE
deployment path and the hypervisor/VM layer."""

from __future__ import annotations

import pytest

from repro.can.controller import AcceptanceFilter
from repro.can.bus import CanBus
from repro.can.virtualization import VirtualizedCanController
from repro.contracts.language import ContractParser
from repro.contracts.model import RealTimeRequirement
from repro.mcc.acceptance import (
    ResourceAcceptanceTest,
    SafetyAcceptanceTest,
    SecurityAcceptanceTest,
    TimingAcceptanceTest,
    default_acceptance_tests,
)
from repro.mcc.configuration import (ChangeKind, ChangeRequest,
                                     IntegrationReport, SystemModel)
from repro.mcc.controller import MultiChangeController
from repro.mcc.mapping import MappingEngine, MappingError, MappingStrategy
from repro.platform.resources import Platform, ProcessingResource, ResourceError
from repro.platform.rte import CapabilityError, RuntimeEnvironment
from repro.sim.kernel import Simulator
from repro.virtualization.hypervisor import Hypervisor, IsolationViolation
from repro.virtualization.vm import VirtualMachine, VmError


class TestSystemModel:
    def test_apply_changes(self, acc_contracts, parser):
        model = SystemModel(contracts=acc_contracts)
        assert len(model) == 3
        new = parser.parse({"component": "logger", "provides": ["log"]})
        model.apply_change(ChangeRequest(ChangeKind.ADD_COMPONENT, "logger", new))
        assert "logger" in model
        model.apply_change(ChangeRequest(ChangeKind.REMOVE_COMPONENT, "logger"))
        assert "logger" not in model

    def test_update_invalidates_mapping(self, acc_contracts, parser):
        model = SystemModel(contracts=acc_contracts, mapping={"tracker": "cpu0"})
        updated = parser.parse({"component": "tracker",
                                "timing": {"period": 0.05, "wcet": 0.02},
                                "provides": ["object_list"]})
        model.apply_change(ChangeRequest(ChangeKind.UPDATE_COMPONENT, "tracker", updated))
        assert "tracker" not in model.mapping

    def test_candidate_is_isolated(self, acc_contracts):
        model = SystemModel(contracts=acc_contracts)
        candidate = model.candidate()
        candidate.mapping["tracker"] = "cpu0"
        assert "tracker" not in model.mapping

    def test_missing_services(self, parser):
        model = SystemModel(contracts=[parser.parse(
            {"component": "client", "requires": ["absent"]})])
        assert model.missing_services() == ["client:absent"]

    def test_request_validation(self, parser):
        with pytest.raises(ValueError):
            ChangeRequest(ChangeKind.ADD_COMPONENT, "x")
        with pytest.raises(ValueError):
            ChangeRequest(ChangeKind.ADD_COMPONENT, "x",
                          parser.parse({"component": "y"}))


class TestMappingEngine:
    def test_respects_capacity(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": f"c{i}", "timing": {"period": 0.01, "wcet": 0.004}}
            for i in range(4)])
        decision = MappingEngine(dual_core_platform).map(contracts)
        assert set(decision.placement.values()) == {"cpu0", "cpu1"}
        for processor, load in decision.utilization.items():
            assert load <= 0.9 + 1e-9

    def test_infeasible_raises(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": f"c{i}", "timing": {"period": 0.01, "wcet": 0.008}}
            for i in range(4)])
        with pytest.raises(MappingError):
            MappingEngine(dual_core_platform).map(contracts)

    def test_worst_fit_balances_load(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": f"c{i}", "timing": {"period": 0.1, "wcet": 0.01}}
            for i in range(4)])
        decision = MappingEngine(dual_core_platform,
                                 strategy=MappingStrategy.WORST_FIT).map(contracts)
        loads = list(decision.utilization.values())
        assert max(loads) - min(loads) <= 0.11

    def test_keep_existing_mapping(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": "a", "timing": {"period": 0.1, "wcet": 0.01}},
            {"component": "b", "timing": {"period": 0.1, "wcet": 0.01}}])
        decision = MappingEngine(dual_core_platform).map(contracts, existing={"a": "cpu1"})
        assert decision.placement["a"] == "cpu1"

    def test_redundancy_group_members_separated(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": "brake_a", "timing": {"period": 0.01, "wcet": 0.001},
             "safety": {"asil": "D", "redundancy_group": "brake"}},
            {"component": "brake_b", "timing": {"period": 0.01, "wcet": 0.001},
             "safety": {"asil": "D", "redundancy_group": "brake"}}])
        decision = MappingEngine(dual_core_platform).map(contracts)
        assert decision.placement["brake_a"] != decision.placement["brake_b"]

    def test_priorities_deadline_monotonic_per_processor(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": "fast", "timing": {"period": 0.005, "wcet": 0.001}},
            {"component": "slow", "timing": {"period": 0.1, "wcet": 0.001}}])
        decision = MappingEngine(dual_core_platform).map(contracts, existing={
            "fast": "cpu0", "slow": "cpu0"})
        assert decision.priorities["fast.task"] < decision.priorities["slow.task"]


class TestAcceptanceTests:
    def test_timing_acceptance(self, dual_core_platform, acc_contracts):
        mapping = {c.component: "cpu0" for c in acc_contracts}
        ordered = sorted(acc_contracts, key=lambda c: c.timing.deadline)
        priorities = {f"{c.component}.task": i for i, c in enumerate(ordered)}
        result = TimingAcceptanceTest().run(acc_contracts, mapping, priorities,
                                            dual_core_platform)
        assert result.passed
        # Throttle the platform in the analysis: the same set fails.
        slow = TimingAcceptanceTest(speed_factor=0.1).run(acc_contracts, mapping, priorities,
                                                          dual_core_platform)
        assert not slow.passed and slow.findings

    def test_safety_acceptance(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": "critical", "timing": {"period": 0.01, "wcet": 0.001},
             "safety": {"asil": "D"}, "requires": ["svc"]},
            {"component": "weak", "timing": {"period": 0.01, "wcet": 0.001},
             "safety": {"asil": "A"}, "provides": ["svc"]}])
        result = SafetyAcceptanceTest().run(contracts, {}, {}, dual_core_platform)
        assert not result.passed

    def test_security_acceptance(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": "gateway", "safety": {"asil": "QM"},
             "security": {"level": "NONE", "external_interface": True},
             "provides": ["remote"]},
            {"component": "brake", "safety": {"asil": "D"},
             "security": {"level": "LOW"}, "requires": ["remote"]}])
        result = SecurityAcceptanceTest().run(contracts, {}, {}, dual_core_platform)
        assert not result.passed

    def test_resource_acceptance(self, dual_core_platform, parser):
        contracts = parser.parse_many([
            {"component": "memory_hog",
             "resources": {"memory_kib": 10_000_000}}])
        result = ResourceAcceptanceTest().run(contracts, {"memory_hog": "cpu0"}, {},
                                              dual_core_platform)
        assert not result.passed

    def test_default_battery_covers_mandatory_viewpoints(self):
        viewpoints = {t.viewpoint for t in default_acceptance_tests()}
        assert {"timing", "safety", "security", "resources"} <= viewpoints


class TestMultiChangeController:
    def test_accepts_consistent_baseline_and_deploys(self, dual_core_platform, acc_contracts):
        rte = RuntimeEnvironment(dual_core_platform)
        mcc = MultiChangeController(dual_core_platform, rte=rte)
        for contract in acc_contracts:
            report = mcc.add_component(contract)
            assert report.accepted, report.summary()
        assert mcc.version == len(acc_contracts)
        assert len(rte.components()) == len(acc_contracts)
        assert rte.configuration.version == mcc.version
        assert mcc.acceptance_rate() == 1.0

    def test_rejects_overload_without_deploying(self, dual_core_platform, acc_contracts, parser):
        rte = RuntimeEnvironment(dual_core_platform)
        mcc = MultiChangeController(dual_core_platform, rte=rte)
        for contract in acc_contracts:
            mcc.add_component(contract)
        version_before = mcc.version
        hog = parser.parse({"component": "hog",
                            "timing": {"period": 0.01, "wcet": 0.0095},
                            "provides": ["hog_svc"]})
        hog2 = parser.parse({"component": "hog2",
                             "timing": {"period": 0.01, "wcet": 0.0095},
                             "provides": ["hog2_svc"]})
        mcc.add_component(hog)
        report = mcc.add_component(hog2)
        # The platform has two cores; a third full-core hog cannot fit.
        hog3 = parser.parse({"component": "hog3",
                             "timing": {"period": 0.01, "wcet": 0.0095},
                             "provides": ["hog3_svc"]})
        report = mcc.add_component(hog3)
        assert not report.accepted
        assert mcc.version >= version_before
        assert "hog3" not in [c.name for c in rte.components()]

    def test_rejects_dangling_requirement(self, dual_core_platform, parser):
        mcc = MultiChangeController(dual_core_platform)
        report = mcc.add_component(parser.parse(
            {"component": "orphan", "requires": ["missing_service"]}))
        assert not report.accepted
        assert any("missing provider" in finding for finding in report.findings)

    def test_update_and_remove_component(self, dual_core_platform, acc_contracts, parser):
        mcc = MultiChangeController(dual_core_platform)
        for contract in acc_contracts:
            mcc.add_component(contract)
        updated = parser.parse({"component": "tracker",
                                "timing": {"period": 0.05, "wcet": 0.015},
                                "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
                                "provides": ["object_list"]})
        assert mcc.update_component(updated).accepted
        assert mcc.model.contract("tracker").timing.wcet == pytest.approx(0.015)
        # Removing the provider breaks the controller's requirement.
        report = mcc.remove_component("actuator")
        assert not report.accepted
        assert "actuator" in mcc.model

    def test_unknown_component_update_rejected_gracefully(self, dual_core_platform, parser):
        mcc = MultiChangeController(dual_core_platform)
        report = mcc.update_component(parser.parse({"component": "ghost"}))
        assert not report.accepted and report.findings

    def test_wcet_feedback_triggers_reintegration(self, dual_core_platform, acc_contracts):
        mcc = MultiChangeController(dual_core_platform)
        for contract in acc_contracts:
            mcc.add_component(contract)
        version = mcc.version
        reports = mcc.incorporate_observed_wcets({"tracker.task": 0.012})
        assert len(reports) == 1 and reports[0].accepted
        assert mcc.version == version + 1
        assert mcc.model.contract("tracker").timing.wcet >= 0.012
        # Observations within budget change nothing.
        assert mcc.incorporate_observed_wcets({"tracker.task": 0.001}) == []

    def test_expectations_follow_contracts(self, dual_core_platform, acc_contracts):
        mcc = MultiChangeController(dual_core_platform)
        for contract in acc_contracts:
            mcc.add_component(contract)
        sources = {e.source for e in mcc.expectations}
        assert "tracker.task" in sources
        from repro.monitoring.metrics import MetricRegistry
        detector = mcc.configure_deviation_detector(MetricRegistry())
        assert len(detector.expectations()) == len(mcc.expectations)


class TestMccCheckpointing:
    """snapshot/rollback and precedent replay (fleet-campaign primitives)."""

    def test_snapshot_and_rollback_restore_state(self, dual_core_platform,
                                                 acc_contracts, parser):
        rte = RuntimeEnvironment(dual_core_platform)
        mcc = MultiChangeController(dual_core_platform, rte=rte)
        for contract in acc_contracts:
            mcc.add_component(contract)
        checkpoint = mcc.snapshot()
        version = mcc.version
        extra = parser.parse({"component": "extra",
                              "timing": {"period": 0.05, "wcet": 0.002},
                              "safety": {"asil": "B"},
                              "security": {"level": "MEDIUM"},
                              "provides": ["extra_svc"]})
        assert mcc.add_component(extra).accepted
        assert mcc.version == version + 1
        mcc.rollback(checkpoint)
        assert mcc.version == version
        assert "extra" not in mcc.model
        assert rte.configuration.version == version
        assert "extra" not in [c.name for c in rte.components()]
        # Reports stay as an append-only audit log.
        assert len(mcc.reports) == len(acc_contracts) + 1

    def test_replay_change_mirrors_a_precedent(self, parser, acc_contracts):
        def fresh_mcc():
            platform = Platform(name="twin")
            platform.add_processor(ProcessingResource("cpu0", capacity=0.9))
            platform.add_processor(ProcessingResource("cpu1", capacity=0.9))
            mcc = MultiChangeController(platform)
            for contract in acc_contracts:
                mcc.add_component(contract)
            return mcc

        leader, follower = fresh_mcc(), fresh_mcc()
        update = parser.parse({"component": "extra",
                               "timing": {"period": 0.05, "wcet": 0.002},
                               "safety": {"asil": "B"},
                               "security": {"level": "MEDIUM"},
                               "provides": ["extra_svc"]})
        request = ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                component="extra", contract=update)
        precedent = leader.request_change(request)
        assert precedent.accepted
        replayed = follower.replay_change(
            ChangeRequest(kind=ChangeKind.ADD_COMPONENT, component="extra",
                          contract=update),
            precedent, leader.model.mapping, leader.model.priorities)
        assert replayed.accepted
        assert follower.version == leader.version
        assert follower.model.mapping == leader.model.mapping
        assert follower.model.priorities == leader.model.priorities
        assert follower.deployed_configuration.version == \
            leader.deployed_configuration.version

    def test_replay_of_invalid_change_rejects_locally(self, dual_core_platform,
                                                      acc_contracts, parser):
        mcc = MultiChangeController(dual_core_platform)
        for contract in acc_contracts:
            mcc.add_component(contract)
        duplicate = parser.parse({"component": "tracker",
                                  "provides": ["object_list"]})
        precedent = IntegrationReport(request_id=0, accepted=True)
        report = mcc.replay_change(
            ChangeRequest(kind=ChangeKind.ADD_COMPONENT, component="tracker",
                          contract=duplicate),
            precedent, {}, {})
        assert not report.accepted  # duplicate add fails before the replay
        assert report.findings


class TestPreviewTasksets:
    """preview_tasksets matches what the timing acceptance test analyses."""

    def test_preview_matches_integration_mapping(self, dual_core_platform,
                                                 acc_contracts, parser):
        mcc = MultiChangeController(dual_core_platform)
        for contract in acc_contracts:
            mcc.add_component(contract)
        update = parser.parse({"component": "extra",
                               "timing": {"period": 0.05, "wcet": 0.002},
                               "safety": {"asil": "B"},
                               "security": {"level": "MEDIUM"},
                               "provides": ["extra_svc"]})
        request = ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                component="extra", contract=update)
        preview = mcc.process.preview_tasksets(mcc.model, request)
        assert preview is not None
        assert mcc.request_change(request).accepted
        from repro.mcc.acceptance import tasksets_from_mapping
        actual = tasksets_from_mapping(mcc.model.contracts(), mcc.model.mapping,
                                       mcc.model.priorities)
        assert set(preview) == set(actual)
        for processor, taskset in actual.items():
            previewed = {(t.name, t.period, t.wcet, t.priority)
                         for t in preview[processor]}
            deployed = {(t.name, t.period, t.wcet, t.priority) for t in taskset}
            assert previewed == deployed

    def test_preview_returns_none_for_early_rejections(self, dual_core_platform,
                                                       acc_contracts, parser):
        mcc = MultiChangeController(dual_core_platform)
        for contract in acc_contracts:
            mcc.add_component(contract)
        dangling = parser.parse({"component": "orphan",
                                 "requires": ["missing_service"]})
        request = ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                component="orphan", contract=dangling)
        assert mcc.process.preview_tasksets(mcc.model, request) is None
        duplicate = ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                  component="tracker",
                                  contract=acc_contracts[0])
        assert mcc.process.preview_tasksets(mcc.model, duplicate) is None


class TestRuntimeEnvironment:
    def _deployed(self, dual_core_platform, acc_contracts):
        rte = RuntimeEnvironment(dual_core_platform)
        mcc = MultiChangeController(dual_core_platform, rte=rte)
        for contract in acc_contracts:
            mcc.add_component(contract)
        return rte

    def test_capability_enforcement(self, dual_core_platform, acc_contracts):
        rte = self._deployed(dual_core_platform, acc_contracts)
        session = rte.use_service("controller", "object_list")
        assert session.provider == "tracker"
        with pytest.raises(CapabilityError):
            rte.use_service("tracker", "setpoints")

    def test_quarantine_revokes_sessions_and_blocks_restart(self, dual_core_platform,
                                                            acc_contracts):
        rte = self._deployed(dual_core_platform, acc_contracts)
        revoked = rte.quarantine("tracker")
        assert revoked >= 1
        with pytest.raises(CapabilityError):
            rte.use_service("controller", "object_list")
        from repro.platform.components import ComponentError
        with pytest.raises(ComponentError):
            rte.restart("tracker")

    def test_tasks_hosted_on_mapped_processors(self, dual_core_platform, acc_contracts):
        rte = self._deployed(dual_core_platform, acc_contracts)
        processor = rte.processor_of("controller")
        assert processor is not None
        assert "controller.task" in processor.taskset

    def test_snapshot_reports_states(self, dual_core_platform, acc_contracts):
        rte = self._deployed(dual_core_platform, acc_contracts)
        snapshot = rte.snapshot()
        assert snapshot["tracker"] == "running"


class TestHypervisor:
    def test_vm_admission_and_isolation_check(self):
        platform = Platform.symmetric(1)
        hypervisor = Hypervisor(platform)
        hypervisor.define_vm(VirtualMachine("vm0", cpu_share=0.5, memory_kib=1024))
        hypervisor.define_vm(VirtualMachine("vm1", cpu_share=0.5, memory_kib=1024))
        with pytest.raises(ResourceError):
            hypervisor.define_vm(VirtualMachine("vm2", cpu_share=0.5, memory_kib=1024))
        assert hypervisor.verify_isolation() == []

    def test_vf_assignment_and_revocation(self):
        sim = Simulator()
        platform = Platform.symmetric(1)
        bus = CanBus(sim)
        controller = VirtualizedCanController(sim, "can0", privileged_owner="hypervisor")
        bus.attach(controller)
        hypervisor = Hypervisor(platform, name="hypervisor")
        hypervisor.register_controller(controller)
        hypervisor.define_vm(VirtualMachine("vm0", cpu_share=0.3, memory_kib=512))
        vf = hypervisor.assign_can_vf("vm0", "can0",
                                      filters=[AcceptanceFilter.exact(0x100)])
        assert vf.owner_vm == "vm0"
        assert hypervisor.assignments()[0].vf_name == vf.name
        hypervisor.revoke_can_vf("vm0", "can0")
        assert hypervisor.assignments() == []

    def test_guest_cannot_use_pf(self):
        sim = Simulator()
        platform = Platform.symmetric(1)
        controller = VirtualizedCanController(sim, "can0", privileged_owner="hypervisor")
        CanBus(sim).attach(controller)
        hypervisor = Hypervisor(platform, name="hypervisor")
        hypervisor.register_controller(controller)
        hypervisor.define_vm(VirtualMachine("vm0", cpu_share=0.3, memory_kib=512))
        with pytest.raises(IsolationViolation):
            hypervisor.guest_accesses_pf("vm0", "can0")

    def test_foreign_pf_owner_rejected(self):
        sim = Simulator()
        platform = Platform.symmetric(1)
        controller = VirtualizedCanController(sim, "can0", privileged_owner="someone_else")
        hypervisor = Hypervisor(platform, name="hypervisor")
        with pytest.raises(IsolationViolation):
            hypervisor.register_controller(controller)

    def test_vm_lifecycle(self):
        vm = VirtualMachine("vm0", cpu_share=0.5, memory_kib=256)
        vm.start()
        vm.pause()
        vm.resume()
        vm.stop()
        with pytest.raises(VmError):
            vm.resume()
        with pytest.raises(VmError):
            VirtualMachine("bad", cpu_share=0.0, memory_kib=256)

    def test_destroy_vm_releases_resources(self):
        platform = Platform.symmetric(1)
        hypervisor = Hypervisor(platform)
        hypervisor.define_vm(VirtualMachine("vm0", cpu_share=0.6, memory_kib=1024))
        hypervisor.destroy_vm("vm0")
        hypervisor.define_vm(VirtualMachine("vm1", cpu_share=0.6, memory_kib=1024))
        assert hypervisor.vm("vm1").name == "vm1"
