"""Fold campaign traces and shard telemetry into the metric substrate.

The seed's :class:`~repro.monitoring.metrics.MetricRegistry` is the paper's
aggregation point: "metrics from different layers can be aggregated to a
consistent self-representation of the system" (Section V).  This module is
the campaign-side feeder — it turns the raw observability outputs
(:class:`~repro.observability.tracer.CampaignTracer` events and the
engine's ``shard_telemetry`` rows) into registry samples, so fleet-level
rollout health reads through the exact same substrate as the in-vehicle
monitors.

The registry's sample *time* axis is the wave index: it is monotonic at
any worker count, survives deterministic traces (which carry no wall
clock), and makes per-wave trends directly comparable across runs.

This module never imports the campaign engine — it consumes plain dicts
and duck-typed result objects, which keeps it import-safe from within the
``repro.observability`` package that the engine itself loads.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.monitoring.metrics import MetricRegistry

#: Registry sources fed by :func:`campaign_metric_registry`.
WAVE_SOURCE = "campaign.waves"
SHARD_SOURCE = "campaign.shards"
CACHE_SOURCE = "campaign.cache"
ADMISSION_SOURCE = "campaign.admission"

#: Registry source fed by :func:`service_metric_registry` — the admission
#: service's global step axis (per-job series use ``service.job/<id>``).
SERVICE_SOURCE = "service.steps"

#: Per-wave counters folded from the service's streamed progress records.
SERVICE_METRICS = ("size", "admitted", "rejected", "deviating",
                   "rolled_back", "failure_rate")

#: Per-wave counters folded from wave records into :data:`WAVE_SOURCE`.
WAVE_METRICS = ("size", "admitted", "rejected", "deviating", "refined",
                "rolled_back", "undelivered", "retried", "abandoned",
                "discounted", "failure_rate")


def _wave_of(event: Dict[str, Any]) -> Optional[int]:
    wave = event.get("wave")
    return int(wave) if isinstance(wave, (int, float)) else None


def wave_latencies(events: Iterable[Dict[str, Any]]) -> Dict[int, float]:
    """Per-wave admission latency (seconds) from tracer events.

    Primary source is the parent-side wall clock: ``t_s`` of each wave's
    ``wave.begin``/``wave.end`` pair.  A deterministic trace carries no
    wall clock at all, so such traces yield an empty mapping — latency is
    exactly the kind of field determinism trades away.
    """
    begins: Dict[int, float] = {}
    latencies: Dict[int, float] = {}
    for event in events:
        wave = _wave_of(event)
        if wave is None or "t_s" not in event:
            continue
        if event.get("event") == "wave.begin":
            begins[wave] = float(event["t_s"])
        elif event.get("event") == "wave.end" and wave in begins:
            latencies[wave] = float(event["t_s"]) - begins[wave]
    return latencies


def shard_imbalance(telemetry: Iterable[Dict[str, Any]]) -> Dict[int, float]:
    """Per-wave steal-queue imbalance from ``shard_telemetry`` rows.

    Imbalance is ``max / mean`` of per-shard wall time within a wave: 1.0
    means every shard finished together (perfect stealing), 2.0 means the
    slowest shard ran twice the average — pooled wall time is bounded by
    the max, so this ratio is exactly the fraction of the wave's parallel
    speedup lost to skew.  Falls back to per-shard *item counts* when wall
    times are absent (rows round-tripped through a deterministic record).
    Single-shard waves are reported as 1.0.
    """
    by_wave: Dict[int, List[Dict[str, Any]]] = {}
    for row in telemetry:
        wave = _wave_of(row)
        if wave is not None:
            by_wave.setdefault(wave, []).append(row)
    imbalance: Dict[int, float] = {}
    for wave, rows in sorted(by_wave.items()):
        loads = [float(row["elapsed_s"]) for row in rows
                 if "elapsed_s" in row]
        if not loads:
            loads = [float(row.get("items", 0)) for row in rows]
        total = sum(loads)
        if len(loads) <= 1 or total <= 0.0:
            imbalance[wave] = 1.0
        else:
            imbalance[wave] = max(loads) / (total / len(loads))
    return imbalance


def cache_efficiency(telemetry: Iterable[Dict[str, Any]]) -> Dict[int, float]:
    """Per-wave cache hit rate from ``shard_telemetry`` rows.

    The rate is hits over lookups summed across the wave's shards; waves
    whose shards performed no lookups are omitted rather than reported as
    zero (no lookups is not a miss).
    """
    hits: Dict[int, int] = {}
    lookups: Dict[int, int] = {}
    for row in telemetry:
        wave = _wave_of(row)
        if wave is None:
            continue
        wave_hits = int(row.get("cache_hits", 0))
        hits[wave] = hits.get(wave, 0) + wave_hits
        lookups[wave] = (lookups.get(wave, 0) + wave_hits
                         + int(row.get("cache_misses", 0)))
    return {wave: hits[wave] / lookups[wave]
            for wave in sorted(lookups) if lookups[wave] > 0}


def campaign_metric_registry(
        result: Any, events: Optional[Iterable[Dict[str, Any]]] = None,
        registry: Optional[MetricRegistry] = None) -> MetricRegistry:
    """Fold one campaign outcome into a :class:`MetricRegistry`.

    Parameters
    ----------
    result:
        A :class:`~repro.fleet.campaign.CampaignResult` (or any object
        with ``waves`` records and a ``shard_telemetry`` list; wave
        records may be objects with ``to_dict`` or plain dicts, so
        round-tripped canonical records fold identically).
    events:
        Optional tracer events (``tracer.events`` or
        :func:`~repro.observability.tracer.load_trace` output) — adds the
        per-wave admission latency series when the trace carries a wall
        clock.
    registry:
        Fold into an existing registry instead of a fresh one, aggregating
        several campaigns (sample times must stay monotonic, so fold runs
        of equal wave counts or accept the later run's tail only).
    """
    registry = registry if registry is not None else MetricRegistry()
    waves = list(getattr(result, "waves", None) or [])
    for record in waves:
        row = record.to_dict() if hasattr(record, "to_dict") else dict(record)
        wave = float(row.get("index", 0))
        for metric in WAVE_METRICS:
            if metric in row:
                registry.sample(wave, WAVE_SOURCE, metric, float(row[metric]))
    telemetry = list(getattr(result, "shard_telemetry", None) or [])
    for wave, value in sorted(shard_imbalance(telemetry).items()):
        registry.sample(float(wave), SHARD_SOURCE, "imbalance", value)
    shards_per_wave: Dict[int, int] = {}
    for row in telemetry:
        wave = _wave_of(row)
        if wave is not None:
            shards_per_wave[wave] = shards_per_wave.get(wave, 0) + 1
    for wave, count in sorted(shards_per_wave.items()):
        registry.sample(float(wave), SHARD_SOURCE, "shards", float(count))
    for wave, rate in sorted(cache_efficiency(telemetry).items()):
        registry.sample(float(wave), CACHE_SOURCE, "hit_rate", rate)
    if events is not None:
        for wave, latency in sorted(wave_latencies(events).items()):
            registry.sample(float(wave), ADMISSION_SOURCE, "latency_s",
                            latency, unit="s")
    return registry


def service_metric_registry(
        progress: Iterable[Any],
        registry: Optional[MetricRegistry] = None) -> MetricRegistry:
    """Fold an admission service's streamed wave progress into a registry.

    ``progress`` is a sequence of
    :class:`~repro.service.schemas.WaveProgress` records (or equivalent
    dicts) in the order the service executed them.  The campaign-level
    folder (:func:`campaign_metric_registry`) anchors its time axis on the
    *wave index* of one campaign; a service interleaves many campaigns one
    engine step at a time, so this folder re-anchors on the **step
    ordinal** — the global scheduling order across all tenants — under
    :data:`SERVICE_SOURCE`.  Each job additionally gets its own
    ``service.job/<job_id>`` series on its campaign-local wave-index axis,
    so per-tenant rollout health stays readable next to the fleet-wide
    interleaving.

    Like the rest of this module the function is duck-typed — it never
    imports the service package.
    """
    registry = registry if registry is not None else MetricRegistry()

    def field_of(record: Any, name: str) -> Any:
        if isinstance(record, dict):
            return record.get(name)
        return getattr(record, name, None)

    for step, record in enumerate(progress):
        for metric in SERVICE_METRICS:
            value = field_of(record, metric)
            if isinstance(value, (int, float)):
                registry.sample(float(step), SERVICE_SOURCE, metric,
                                float(value))
        job_id = field_of(record, "job_id")
        index = field_of(record, "index")
        if job_id is None or not isinstance(index, (int, float)):
            continue
        source = f"service.job/{job_id}"
        for metric in SERVICE_METRICS:
            value = field_of(record, metric)
            if isinstance(value, (int, float)):
                registry.sample(float(index), source, metric, float(value))
    return registry


__all__ = [
    "ADMISSION_SOURCE",
    "CACHE_SOURCE",
    "SERVICE_METRICS",
    "SERVICE_SOURCE",
    "SHARD_SOURCE",
    "WAVE_METRICS",
    "WAVE_SOURCE",
    "cache_efficiency",
    "campaign_metric_registry",
    "service_metric_registry",
    "shard_imbalance",
    "wave_latencies",
]
