"""Attack injection for scenarios and benchmarks.

The paper's running example assumes "a security flaw in the software
component governing rear braking".  The attack injectors model what such a
compromised component *does*: it emits CAN frames with identifiers it does
not own, floods the bus, or calls services it has no session for.  Attacks
are defined declaratively (start time, duration, behaviour) and executed
against the CAN bus / RTE by the :class:`AttackInjector`, which the E5
benchmark and the intrusion scenario drive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.can.frame import CanFrame


@dataclass
class Attack:
    """Base class for declarative attacks.

    Attributes
    ----------
    name:
        Attack identifier for reporting.
    compromised_component:
        The component the attacker controls (ground truth for evaluating the
        detector: the IDS should converge on this component).
    start_time / duration:
        When the malicious behaviour is active.
    """

    name: str
    compromised_component: str
    start_time: float
    duration: float = float("inf")

    def active_at(self, time: float) -> bool:
        return self.start_time <= time < self.start_time + self.duration

    def malicious_frames(self, time: float) -> List[CanFrame]:
        """CAN frames the attacker emits in the control cycle at ``time``."""
        return []

    def malicious_calls(self, time: float) -> List[Tuple[str, str]]:
        """(sender, peer) service calls the attacker attempts at ``time``."""
        return []


@dataclass
class MessageInjectionAttack(Attack):
    """Injects frames with identifiers the component does not own.

    This models the typical CAN spoofing attack: a compromised ECU component
    transmits, e.g., braking commands on behalf of another ECU.
    """

    spoofed_ids: Sequence[int] = (0x0A0,)
    frames_per_cycle: int = 1
    payload: bytes = b"\xde\xad\xbe\xef"

    def malicious_frames(self, time: float) -> List[CanFrame]:
        if not self.active_at(time):
            return []
        frames: List[CanFrame] = []
        for index in range(self.frames_per_cycle):
            can_id = self.spoofed_ids[index % len(self.spoofed_ids)]
            frames.append(CanFrame(can_id=can_id, payload=self.payload[:8],
                                   source=self.compromised_component))
        return frames


@dataclass
class FloodingAttack(Attack):
    """Floods the bus with high-priority frames (denial of service attempt).

    Used only to evaluate the defence (rate limiting and containment) inside
    the simulated vehicle; the frames carry an identifier owned by the
    attacker so the rate rule, not the identifier rule, must catch it.
    """

    can_id: int = 0x010
    frames_per_cycle: int = 20

    def malicious_frames(self, time: float) -> List[CanFrame]:
        if not self.active_at(time):
            return []
        return [CanFrame(can_id=self.can_id, payload=b"\x00",
                         source=self.compromised_component)
                for _ in range(self.frames_per_cycle)]


@dataclass
class ComponentCompromiseAttack(Attack):
    """The compromised component abuses its service sessions and tries to
    reach peers it has no session with (lateral movement)."""

    target_peers: Sequence[str] = ()
    calls_per_cycle: int = 1

    def malicious_calls(self, time: float) -> List[Tuple[str, str]]:
        if not self.active_at(time) or not self.target_peers:
            return []
        calls: List[Tuple[str, str]] = []
        for index in range(self.calls_per_cycle):
            peer = self.target_peers[index % len(self.target_peers)]
            calls.append((self.compromised_component, peer))
        return calls


class AttackInjector:
    """Executes declarative attacks against the monitored interfaces.

    The injector does not touch the bus/RTE directly; instead the scenario's
    control loop asks it for the malicious activity of the current cycle and
    feeds it through the same observation points (IDS, access-policy
    enforcer) that legitimate traffic passes — which is exactly how a real
    compromised component would appear to the monitors.
    """

    def __init__(self) -> None:
        self._attacks: List[Attack] = []
        self.injected_frames = 0
        self.injected_calls = 0

    def add(self, attack: Attack) -> Attack:
        self._attacks.append(attack)
        return attack

    def attacks(self) -> List[Attack]:
        return list(self._attacks)

    def active_attacks(self, time: float) -> List[Attack]:
        return [attack for attack in self._attacks if attack.active_at(time)]

    def compromised_components(self, time: Optional[float] = None) -> List[str]:
        attacks = self._attacks if time is None else self.active_attacks(time)
        return sorted({attack.compromised_component for attack in attacks})

    def frames_at(self, time: float) -> List[CanFrame]:
        frames: List[CanFrame] = []
        for attack in self._attacks:
            emitted = attack.malicious_frames(time)
            frames.extend(emitted)
        self.injected_frames += len(frames)
        return frames

    def calls_at(self, time: float) -> List[Tuple[str, str]]:
        calls: List[Tuple[str, str]] = []
        for attack in self._attacks:
            attempted = attack.malicious_calls(time)
            calls.extend(attempted)
        self.injected_calls += len(calls)
        return calls
