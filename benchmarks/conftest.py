"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series of one experiment from
DESIGN.md/EXPERIMENTS.md and prints them (run pytest with ``-s`` to see the
tables).  ``pytest-benchmark`` provides the timing statistics; the printed
tables carry the reproduced quantities.
"""

from __future__ import annotations

from typing import Dict, Iterable, List


def print_table(title: str, rows: List[Dict[str, object]]) -> None:
    """Render a list of row dictionaries as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(no rows)")
        return
    columns = list(rows[0].keys())
    widths = {c: max(len(str(c)), *(len(_fmt(r[c])) for r in rows)) for c in columns}
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(_fmt(row[c]).rjust(widths[c]) for c in columns))


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
