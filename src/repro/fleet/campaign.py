"""Staged update campaigns across a simulated fleet.

The unit of work at production scale is not one change request but a
*campaign*: the same logical update rolled out to N vehicles in staged waves
(canary -> percentage waves -> full), with per-vehicle admission through each
vehicle's own MCC, monitor feedback consumed between waves, and a policy that
halts — and optionally rolls back — a wave whose rejection/deviation rate
crosses a threshold.

Admission is *batched* along two axes:

* **Analysis batching.**  Before a wave's vehicles integrate, the campaign
  previews the distinct candidate task sets
  (:meth:`~repro.mcc.integration.IntegrationProcess.preview_tasksets`) and
  pushes them through the shared
  :class:`~repro.analysis.cache.AnalysisCache` as one
  :meth:`~repro.analysis.cache.AnalysisCache.analyse_many` batch, so the
  incremental engine warm-starts near-identical vehicles off each other.
* **Verdict dedupe.**  Vehicles whose model, platform shape and request are
  *identical* (same variant, same adopted contract objects, same mapping
  state) are one integration, not N: the first vehicle of each equivalence
  group runs the full process, the rest replay its verdict and mapping
  decision through
  :meth:`~repro.mcc.controller.MultiChangeController.replay_change`.

Both are exact — the cache is content-addressed, the engine bit-identical,
and the equivalence grouping keys on object identity of the adopted
contracts — so batched and sequential admission produce identical wave
verdicts; only the wall time differs (the differential harness, the fleet
tests and the E10 benchmark all assert this).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.fleet.vehicle import FleetVehicle
from repro.mcc.configuration import ChangeRequest, IntegrationReport
from repro.mcc.controller import MccSnapshot
from repro.monitoring.deviation import DeviationDetector
from repro.monitoring.metrics import MetricRegistry
from repro.sim.random import SeededRNG, derive_seed

#: Builds the per-vehicle change request of the campaign's update.
UpdateFactory = Callable[[FleetVehicle], ChangeRequest]


class CampaignError(ValueError):
    """Raised for invalid campaign or wave-policy configuration."""


@dataclass(frozen=True)
class WavePolicy:
    """Staging and halting policy of a campaign.

    ``canary_size`` vehicles go first (0 disables the canary wave); the
    remainder is released in waves at the cumulative ``wave_fractions`` of
    the post-canary fleet (a final full wave is implied when the last
    fraction is below 1).  A wave whose failure rate — rejections plus
    post-deployment deviations over the wave size — exceeds
    ``max_failure_rate`` halts the campaign; ``rollback_on_halt`` then rolls
    the admitted vehicles of the halting wave back to their pre-wave state.
    """

    canary_size: int = 2
    wave_fractions: Tuple[float, ...] = (0.1, 0.3, 1.0)
    max_failure_rate: float = 0.3
    rollback_on_halt: bool = True
    refine_on_deviation: bool = False

    def __post_init__(self) -> None:
        if self.canary_size < 0:
            raise CampaignError("canary_size must be non-negative")
        if not 0.0 <= self.max_failure_rate <= 1.0:
            raise CampaignError("max_failure_rate must be in [0, 1]")
        previous = 0.0
        for fraction in self.wave_fractions:
            if not 0.0 < fraction <= 1.0:
                raise CampaignError(f"wave fraction {fraction} not in (0, 1]")
            if fraction < previous:
                raise CampaignError("wave_fractions must be non-decreasing")
            previous = fraction


@dataclass
class WaveRecord:
    """Outcome of one executed wave."""

    index: int
    kind: str
    vehicle_ids: List[str]
    admitted: int = 0
    rejected: int = 0
    deviating: int = 0
    refined: int = 0
    rolled_back: int = 0

    @property
    def size(self) -> int:
        return len(self.vehicle_ids)

    @property
    def failure_rate(self) -> float:
        return (self.rejected + self.deviating) / self.size if self.size else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"index": self.index, "kind": self.kind, "size": self.size,
                "admitted": self.admitted, "rejected": self.rejected,
                "deviating": self.deviating, "refined": self.refined,
                "rolled_back": self.rolled_back,
                "failure_rate": self.failure_rate}


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign run."""

    fleet_size: int
    batched: bool
    waves: List[WaveRecord] = field(default_factory=list)
    admitted: int = 0
    rejected: int = 0
    deviating: int = 0
    refined: int = 0
    rolled_back: int = 0
    halted: bool = False
    halted_wave: Optional[int] = None
    cache_hits: int = 0
    cache_misses: int = 0
    engine_reuse_rate: float = 0.0

    @property
    def completed(self) -> bool:
        return not self.halted

    @property
    def vehicles_updated(self) -> int:
        """Vehicles running the update after the campaign (net of rollback)."""
        return self.admitted - self.rolled_back

    @property
    def update_coverage(self) -> float:
        return self.vehicles_updated / self.fleet_size if self.fleet_size else 0.0

    @property
    def acceptance_rate(self) -> float:
        attempted = self.admitted + self.rejected
        return self.admitted / attempted if attempted else 0.0


def plan_waves(vehicles: Sequence[FleetVehicle],
               policy: WavePolicy) -> List[Tuple[str, List[FleetVehicle]]]:
    """Deterministic wave partition of a fleet: canary, staged, full.

    Every returned wave is non-empty; an empty fleet yields no waves and a
    single-vehicle fleet yields exactly one (canary when enabled).  The last
    wave always covers the remaining fleet even when ``wave_fractions`` stops
    short of 1.0.
    """
    ordered = list(vehicles)
    if not ordered:
        return []
    waves: List[Tuple[str, List[FleetVehicle]]] = []
    cursor = 0
    if policy.canary_size > 0:
        canary = ordered[:policy.canary_size]
        waves.append(("canary", canary))
        cursor = len(canary)
    remainder = ordered[cursor:]
    released = 0
    fractions = list(policy.wave_fractions)
    if not fractions or fractions[-1] < 1.0:
        fractions.append(1.0)
    for fraction in fractions:
        if released >= len(remainder):
            break
        target = min(len(remainder), max(released + 1,
                                         round(fraction * len(remainder))))
        wave = remainder[released:target]
        kind = "full" if target == len(remainder) else "wave"
        waves.append((kind, wave))
        released = target
    return waves


class Campaign:
    """Rolls one update out across a fleet in staged waves.

    Parameters
    ----------
    vehicles:
        The fleet, in rollout order.
    update_factory:
        Builds the per-vehicle :class:`ChangeRequest` (vehicles of different
        variants typically get variant-scaled contracts of the same logical
        update).
    policy:
        Staging/halting policy.
    analysis_cache:
        The shared cache used for batched admission.  Required when
        ``batch_admission`` is on; for the full effect the fleet should have
        been generated with the same cache.
    batch_admission:
        Prefetch every wave's candidate task sets through
        ``analysis_cache.analyse_many`` before the per-vehicle integrations.
    failure_injection_rate:
        Probability that an updated vehicle's observed execution time exceeds
        its contracted budget (simulated field failure).
    feedback_seed:
        Seed of the simulated monitor feedback stream; per-vehicle draws are
        derived from it and the vehicle index, so feedback is identical for
        batched and sequential admission.
    """

    def __init__(self, vehicles: Sequence[FleetVehicle],
                 update_factory: UpdateFactory,
                 policy: Optional[WavePolicy] = None,
                 analysis_cache: Optional[AnalysisCache] = None,
                 batch_admission: bool = True,
                 failure_injection_rate: float = 0.0,
                 feedback_seed: int = 0) -> None:
        if not 0.0 <= failure_injection_rate <= 1.0:
            raise CampaignError("failure_injection_rate must be in [0, 1]")
        if batch_admission and analysis_cache is None:
            raise CampaignError("batched admission needs a shared analysis cache")
        self.vehicles = list(vehicles)
        self.update_factory = update_factory
        self.policy = policy if policy is not None else WavePolicy()
        self.analysis_cache = analysis_cache
        self.batch_admission = batch_admission
        self.failure_injection_rate = failure_injection_rate
        self.feedback_seed = feedback_seed

    # -- wave internals ----------------------------------------------------

    def _prefetch_wave(self,
                       representatives: Sequence[Tuple[FleetVehicle,
                                                       ChangeRequest]]) -> None:
        """Warm the shared cache with the representatives' candidate analyses.

        Only the vehicles that will actually run a full integration are
        previewed (one per equivalence group); the batch goes through
        ``analyse_many`` so representatives of *different* variants
        warm-start off each other in the incremental engine.  The prefetch is
        only a warm-up — a skipped preview costs cache misses, never a
        different verdict.
        """
        assert self.analysis_cache is not None
        tasksets = []
        for vehicle, request in representatives:
            preview = vehicle.mcc.process.preview_tasksets(vehicle.mcc.model, request)
            if preview is None:
                continue  # rejected before the acceptance phase; nothing to warm
            tasksets.extend(taskset for _, taskset in sorted(preview.items()))
        if tasksets:
            self.analysis_cache.analyse_many(tasksets)

    @staticmethod
    def _equivalence_key(vehicle: FleetVehicle, request: ChangeRequest) -> Tuple:
        """Identity of one admission problem, exact within this process.

        Two vehicles with the same platform shape (same variant), the same
        adopted contract *objects*, the same mapping/priority state and the
        same request contract object pose the identical integration problem.
        Diverged vehicles (refined WCETs build fresh contract objects,
        rollbacks restore the previous model) fall out of the group
        automatically because their object identities differ.

        Identity-based keys are only sound while the referenced objects stay
        alive — a recycled ``id`` could alias a stale key — so the campaign
        pins every object that enters a stored precedent key for the run's
        lifetime (see :meth:`run`).
        """
        model = vehicle.mcc.model
        return (vehicle.variant.index,
                tuple(sorted((contract.component, id(contract))
                             for contract in model.contracts())),
                tuple(sorted(model.mapping.items())),
                tuple(sorted(model.priorities.items())),
                request.kind, request.component, id(request.contract))

    def _feedback(self, vehicle: FleetVehicle, request: ChangeRequest,
                  wave_index: int, record: WaveRecord) -> None:
        """Simulate one updated vehicle's monitor feedback and grade it."""
        contract = vehicle.mcc.model.contract(request.component)
        timing = contract.timing
        if timing is None:  # pragma: no cover - campaign updates carry timing
            return
        rng = SeededRNG(derive_seed(self.feedback_seed, vehicle.index))
        injected = rng.uniform() < self.failure_injection_rate
        factor = rng.uniform(1.25, 1.75) if injected else rng.uniform(0.55, 0.95)
        observed = timing.wcet * factor
        registry = MetricRegistry()
        detector: DeviationDetector = vehicle.mcc.configure_deviation_detector(registry)
        source = f"{request.component}.task"
        anomalies = detector.observe(float(wave_index), source,
                                     "execution_time", observed)
        if not anomalies:
            return
        vehicle.deviating = True
        record.deviating += 1
        if self.policy.refine_on_deviation:
            refinements = vehicle.mcc.incorporate_observed_wcets({source: observed})
            record.refined += len(refinements)

    def _rollback_wave(self, admitted: List[Tuple[FleetVehicle, MccSnapshot]],
                       record: WaveRecord) -> None:
        for vehicle, snapshot in admitted:
            vehicle.mcc.rollback(snapshot)
            vehicle.updated = False
            vehicle.rolled_back = True
            record.rolled_back += 1

    # -- execution ---------------------------------------------------------

    def run(self) -> CampaignResult:
        """Execute the campaign and return its aggregate result."""
        result = CampaignResult(fleet_size=len(self.vehicles),
                                batched=self.batch_admission)
        # Counter baseline: the shared cache typically served fleet
        # provisioning too; the result reports this campaign's traffic only.
        hits_before = self.analysis_cache.hits if self.analysis_cache else 0
        misses_before = self.analysis_cache.misses if self.analysis_cache else 0
        #: request-equivalence key -> (report, mapping, priorities) of the
        #: vehicle that ran the full integration; kept across waves so later
        #: waves of unchanged same-variant vehicles replay wave 1's verdicts.
        precedents: Dict[Tuple, Tuple[IntegrationReport, Dict[str, str],
                                      Dict[str, int]]] = {}
        #: Objects whose id() is baked into a stored precedent key.  Holding
        #: them prevents garbage collection from recycling an id into a new
        #: contract mid-campaign, which could falsely match a stale key.
        pinned: List[object] = []
        for wave_index, (kind, wave) in enumerate(plan_waves(self.vehicles,
                                                             self.policy)):
            record = WaveRecord(index=wave_index, kind=kind,
                                vehicle_ids=[v.vehicle_id for v in wave])
            requests = [self.update_factory(vehicle) for vehicle in wave]
            keys: List[Optional[Tuple]] = [None] * len(requests)
            if self.batch_admission:
                # Keys are stable for the whole wave: a vehicle's model only
                # changes when its own request is admitted.
                representatives = []
                seen_new = set()
                for position, (vehicle, request) in enumerate(zip(wave, requests)):
                    key = self._equivalence_key(vehicle, request)
                    keys[position] = key
                    if key not in precedents and key not in seen_new:
                        seen_new.add(key)
                        representatives.append((vehicle, request))
                self._prefetch_wave(representatives)
            admitted: List[Tuple[FleetVehicle, ChangeRequest, MccSnapshot]] = []
            for vehicle, request, key in zip(wave, requests, keys):
                snapshot = vehicle.mcc.snapshot()
                if self.batch_admission:
                    precedent = precedents.get(key)
                    if precedent is None:
                        pinned.append(request.contract)
                        pinned.extend(vehicle.mcc.model.contracts())
                        report = vehicle.mcc.request_change(request)
                        precedents[key] = (report,
                                           dict(vehicle.mcc.model.mapping),
                                           dict(vehicle.mcc.model.priorities))
                    else:
                        report = vehicle.mcc.replay_change(request, *precedent)
                else:
                    report = vehicle.mcc.request_change(request)
                if report.accepted:
                    vehicle.updated = True
                    record.admitted += 1
                    admitted.append((vehicle, request, snapshot))
                else:
                    record.rejected += 1
            for vehicle, request, _ in admitted:
                self._feedback(vehicle, request, wave_index, record)
            halt = record.failure_rate > self.policy.max_failure_rate
            if halt and self.policy.rollback_on_halt:
                self._rollback_wave([(vehicle, snapshot)
                                     for vehicle, _, snapshot in admitted], record)
            result.waves.append(record)
            result.admitted += record.admitted
            result.rejected += record.rejected
            result.deviating += record.deviating
            result.refined += record.refined
            result.rolled_back += record.rolled_back
            if halt:
                result.halted = True
                result.halted_wave = wave_index
                break
        if self.analysis_cache is not None:
            result.cache_hits = self.analysis_cache.hits - hits_before
            result.cache_misses = self.analysis_cache.misses - misses_before
            result.engine_reuse_rate = self.analysis_cache.engine.reuse_rate
        return result
