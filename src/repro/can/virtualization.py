"""Virtualized CAN controller: physical function (PF) and virtual functions (VFs).

Reproduces the architecture of Fig. 2: a traditional CAN controller (the
"protocol layer", reused from :mod:`repro.can.controller`) is extended by a
hardware virtualization layer that

* gives every VM its own **virtual function** with a private TX queue and RX
  filters/FIFO (data-path only),
* multiplexes the VF TX queues onto the protocol layer while preserving the
  CAN identifier priority order,
* demultiplexes received frames towards the VFs through per-VF acceptance
  filters, and
* exposes privileged operations (bus speed, VF management) only through the
  **physical function**, which only the hypervisor may access.

Paper substitution: the FPGA prototype measured ~7–11 µs added round-trip
latency.  Our :class:`VirtualizationLatencyModel` charges per-stage costs
(doorbell, mux arbitration, demux/filter, VF FIFO copy and interrupt) that
are calibrated so a round trip over 2–8 VMs lands in the published range; the
*shape* (overhead grows mildly with the number of active VFs and payload
size, remains an order of magnitude below the frame transmission time) is the
reproduced result.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.can.controller import AcceptanceFilter, CanController, RxMessage, TxRequest
from repro.can.frame import CanFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder


class VirtualizationError(RuntimeError):
    """Raised for illegal PF/VF operations (e.g. unprivileged PF access)."""


class TxSchedulingPolicy(enum.Enum):
    """How the virtualization layer picks the next frame among VF queues."""

    #: Global CAN-identifier priority across all VF queues (paper's design:
    #: "transmitted with respect to their bus priority in real-time").
    PRIORITY = "priority"
    #: Round-robin across VFs (ablation baseline; breaks global priority).
    ROUND_ROBIN = "round_robin"


@dataclass
class VirtualizationLatencyModel:
    """Per-stage latency costs of the virtualization wrapper (seconds).

    The added one-way TX latency is
    ``tx_doorbell + tx_mux_base + tx_mux_per_vf * active_vfs``
    and the added one-way RX latency is
    ``rx_demux_base + rx_filter_per_vf * active_vfs + rx_copy_per_byte * dlc
    + rx_interrupt``.
    """

    tx_doorbell: float = 1.0e-6
    tx_mux_base: float = 1.2e-6
    tx_mux_per_vf: float = 0.27e-6
    rx_demux_base: float = 1.6e-6
    rx_filter_per_vf: float = 0.40e-6
    rx_copy_per_byte: float = 0.04e-6
    rx_interrupt: float = 1.55e-6

    def tx_overhead(self, active_vfs: int) -> float:
        return self.tx_doorbell + self.tx_mux_base + self.tx_mux_per_vf * max(1, active_vfs)

    def rx_overhead(self, active_vfs: int, dlc: int) -> float:
        return (self.rx_demux_base + self.rx_filter_per_vf * max(1, active_vfs)
                + self.rx_copy_per_byte * dlc + self.rx_interrupt)

    def round_trip_overhead(self, active_vfs: int, dlc: int) -> float:
        """Added latency for one request/response round trip where both the
        request TX and the response RX traverse the virtualization layer."""
        return self.tx_overhead(active_vfs) + self.rx_overhead(active_vfs, dlc)


class VirtualFunction:
    """Data-path-only interface of the virtualized controller assigned to one VM."""

    def __init__(self, name: str, owner_vm: str,
                 filters: Optional[List[AcceptanceFilter]] = None,
                 tx_queue_depth: int = 16, rx_queue_depth: int = 32) -> None:
        self.name = name
        self.owner_vm = owner_vm
        self.filters = filters if filters is not None else [AcceptanceFilter.accept_all()]
        self.tx_queue_depth = tx_queue_depth
        self.rx_queue_depth = rx_queue_depth
        self.enabled = True
        self.received: List[RxMessage] = []
        self.sent: List[TxRequest] = []
        self.tx_overflows = 0
        self.rx_overflows = 0
        self.rx_callback: Optional[Callable[[RxMessage], None]] = None

    def accepts(self, frame: CanFrame) -> bool:
        return self.enabled and any(f.accepts(frame.can_id) for f in self.filters)

    def rx_latencies(self) -> List[float]:
        return [m.delivery_latency for m in self.received]

    def tx_latencies(self) -> List[float]:
        return [r.latency for r in self.sent if r.latency is not None]

    def drain_received(self) -> List[RxMessage]:
        messages = list(self.received)
        self.received.clear()
        return messages


class PhysicalFunction:
    """Privileged control interface of the virtualized CAN controller.

    Only the privileged owner (normally the hypervisor running the MCC) may
    invoke its methods; every call verifies the caller identity, modelling
    the paper's "the PF shall only be accessible to privileged SW components".
    """

    def __init__(self, controller: "VirtualizedCanController", privileged_owner: str) -> None:
        self._controller = controller
        self.privileged_owner = privileged_owner

    def _check(self, caller: str) -> None:
        if caller != self.privileged_owner:
            raise VirtualizationError(
                f"caller {caller!r} is not allowed to use the physical function "
                f"(owner: {self.privileged_owner!r})")

    def create_vf(self, caller: str, vf_name: str, owner_vm: str,
                  filters: Optional[List[AcceptanceFilter]] = None,
                  tx_queue_depth: int = 16, rx_queue_depth: int = 32) -> VirtualFunction:
        self._check(caller)
        return self._controller._create_vf(vf_name, owner_vm, filters,
                                           tx_queue_depth, rx_queue_depth)

    def destroy_vf(self, caller: str, vf_name: str) -> None:
        self._check(caller)
        self._controller._destroy_vf(vf_name)

    def enable_vf(self, caller: str, vf_name: str, enabled: bool = True) -> None:
        self._check(caller)
        self._controller.vf(vf_name).enabled = enabled

    def set_vf_filters(self, caller: str, vf_name: str,
                       filters: List[AcceptanceFilter]) -> None:
        self._check(caller)
        self._controller.vf(vf_name).filters = list(filters)

    def set_bitrate(self, caller: str, bitrate_bps: float) -> None:
        self._check(caller)
        if self._controller.bus is None:
            raise VirtualizationError("controller is not attached to a bus")
        if bitrate_bps <= 0:
            raise VirtualizationError("bitrate must be positive")
        self._controller.bus.bitrate_bps = bitrate_bps


class VirtualizedCanController(CanController):
    """A CAN controller shared by multiple VMs through VFs.

    It attaches to the bus as a single node (one protocol layer) and layers
    the PF/VF virtualization on top.  Frames sent through a VF are charged
    the virtualization TX overhead before entering the shared TX mailboxes;
    received frames are charged the demux/filter/copy overhead before they
    appear in the matching VF FIFOs.
    """

    def __init__(self, sim: Simulator, name: str, privileged_owner: str = "hypervisor",
                 latency_model: Optional[VirtualizationLatencyModel] = None,
                 tx_policy: TxSchedulingPolicy = TxSchedulingPolicy.PRIORITY,
                 recorder: Optional[TraceRecorder] = None,
                 **controller_kwargs: object) -> None:
        super().__init__(sim, name, recorder=recorder, **controller_kwargs)  # type: ignore[arg-type]
        self.latency_model = latency_model or VirtualizationLatencyModel()
        self.tx_policy = tx_policy
        self.pf = PhysicalFunction(self, privileged_owner)
        self._vfs: Dict[str, VirtualFunction] = {}
        self._round_robin_index = 0

    # -- VF management (called through the PF) ------------------------------------------

    def _create_vf(self, vf_name: str, owner_vm: str,
                   filters: Optional[List[AcceptanceFilter]],
                   tx_queue_depth: int, rx_queue_depth: int) -> VirtualFunction:
        if vf_name in self._vfs:
            raise VirtualizationError(f"VF {vf_name!r} already exists")
        vf = VirtualFunction(vf_name, owner_vm, filters, tx_queue_depth, rx_queue_depth)
        self._vfs[vf_name] = vf
        return vf

    def _destroy_vf(self, vf_name: str) -> None:
        if vf_name not in self._vfs:
            raise VirtualizationError(f"unknown VF {vf_name!r}")
        del self._vfs[vf_name]

    def vf(self, vf_name: str) -> VirtualFunction:
        try:
            return self._vfs[vf_name]
        except KeyError as exc:
            raise VirtualizationError(f"unknown VF {vf_name!r}") from exc

    def vfs(self) -> List[VirtualFunction]:
        return list(self._vfs.values())

    @property
    def active_vf_count(self) -> int:
        return sum(1 for vf in self._vfs.values() if vf.enabled)

    # -- VM-facing data path -----------------------------------------------------------------

    def send_from_vf(self, vf_name: str, frame: CanFrame) -> Optional[TxRequest]:
        """A VM sends a frame through its VF.

        The frame is charged the virtualization TX overhead (doorbell + mux)
        on top of the normal host TX access latency, then competes in the
        shared TX mailboxes according to the configured policy.
        """
        vf = self.vf(vf_name)
        if not vf.enabled:
            raise VirtualizationError(f"VF {vf_name!r} is disabled")
        if self._queued >= self.tx_queue_depth:
            vf.tx_overflows += 1
            self.tx_overflows += 1
            self.recorder.record(self.sim.now, "can.vf_tx_overflow", vf_name,
                                 can_id=frame.can_id)
            return None
        stamped = frame.with_source(frame.source or vf.owner_vm).with_timestamp(self.sim.now)
        request = TxRequest(frame=stamped, enqueue_time=self.sim.now)
        self._queued += 1
        overhead = self.latency_model.tx_overhead(self.active_vf_count)

        def make_visible(sim: Simulator) -> None:
            key = self._tx_key(stamped, vf_name)
            heapq.heappush(self._tx_heap, (key, next(self._tx_counter), request))
            request.start_time = sim.now
            if self.bus is not None:
                self.bus.notify_pending()

        self.sim.schedule_in(self.tx_access_latency + overhead, make_visible,
                             name=f"{vf_name}.tx_visible")
        vf.sent.append(request)
        self.recorder.record(self.sim.now, "can.vf_tx", vf_name,
                             can_id=stamped.can_id, overhead=overhead)
        return request

    def _tx_key(self, frame: CanFrame, vf_name: str) -> Tuple[int, int]:
        if self.tx_policy == TxSchedulingPolicy.PRIORITY:
            return frame.arbitration_key()
        # Round-robin: order by VF admission sequence, ignoring identifiers.
        self._round_robin_index += 1
        return (self._round_robin_index, 0)

    # -- bus-facing receive path ----------------------------------------------------------------

    def on_bus_receive(self, frame: CanFrame, time: float) -> None:
        """Demultiplex a received frame towards the VFs whose filters match."""
        matches = [vf for vf in self._vfs.values() if vf.accepts(frame)]
        if not matches:
            # Fall back to the plain controller path so the PF owner can still
            # observe unclaimed traffic (e.g. for intrusion detection).
            super().on_bus_receive(frame, time)
            return
        overhead = self.latency_model.rx_overhead(self.active_vf_count, frame.dlc)
        for vf in matches:
            if len(vf.received) >= vf.rx_queue_depth and vf.rx_callback is None:
                vf.rx_overflows += 1
                self.recorder.record(time, "can.vf_rx_overflow", vf.name, can_id=frame.can_id)
                continue

            def deliver(sim: Simulator, vf: VirtualFunction = vf) -> None:
                message = RxMessage(frame=frame, bus_time=time, delivery_time=sim.now)
                vf.received.append(message)
                self.recorder.record(sim.now, "can.vf_rx_deliver", vf.name,
                                     can_id=frame.can_id, sender=frame.source,
                                     latency=message.delivery_latency)
                if vf.rx_callback is not None:
                    vf.rx_callback(message)

            self.sim.schedule_in(self.rx_access_latency + overhead, deliver,
                                 name=f"{vf.name}.rx_deliver")
