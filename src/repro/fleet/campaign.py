"""Staged update campaigns across a simulated fleet.

The unit of work at production scale is not one change request but a
*campaign*: the same logical update rolled out to N vehicles in staged waves
(canary -> percentage waves -> full), with per-vehicle admission through each
vehicle's own MCC, monitor feedback consumed between waves, and a policy that
halts — and optionally rolls back — a wave whose rejection/deviation rate
exceeds the tolerated threshold.

Admission is *batched* along two axes:

* **Analysis batching.**  Before a wave's vehicles integrate, the campaign
  previews the distinct candidate task sets
  (:meth:`~repro.mcc.integration.IntegrationProcess.preview_tasksets`) and
  pushes them through the shared
  :class:`~repro.analysis.cache.AnalysisCache` as one
  :meth:`~repro.analysis.cache.AnalysisCache.analyse_many` batch, so the
  incremental engine warm-starts near-identical vehicles off each other.
* **Verdict dedupe.**  Vehicles whose model, platform shape and request are
  *identical* (same variant, same adopted contract objects, same mapping
  state) are one integration, not N: the first vehicle of each equivalence
  group runs the full process, the rest replay its verdict and mapping
  decision through
  :meth:`~repro.mcc.controller.MultiChangeController.replay_change`.

Both are exact — the cache is content-addressed, the engine bit-identical,
and the equivalence grouping keys on object identity of the adopted
contracts — so batched and sequential admission produce identical wave
verdicts; only the wall time differs (the differential harness, the fleet
tests and the E10 benchmarks all assert this).

Sharded parallel execution
--------------------------

``workers > 1`` turns the wave core into a sharded engine: each wave's *new*
representative integrations (one per equivalence group, deduped **pre-fork**)
are partitioned into :class:`~repro.fleet.shard.ShardTask` slices and run on
a ``multiprocessing`` pool; the returned
:class:`~repro.fleet.shard.ShardVerdict` objects are fanned back out
**post-join** across every group member via ``replay_change`` in the parent.
Because integration is deterministic in exactly the shipped inputs, and
because all adoption, deviation feedback (in wave order), halt checks and
rollbacks stay in the parent, the parallel path produces byte-identical
wave records, verdicts and per-vehicle rollout state to ``workers=1`` —
everything except the informational ``cache_hits``/``cache_misses``
counters, which describe the *parent process's* cache traffic and so
legitimately vary with the worker layout.

By default the pool is fed *work-stealing style*: the wave's representatives
are partitioned into more chunks than workers by the cost-model planner
(:func:`~repro.fleet.shard.plan_chunks` — congruence-structure co-location,
chunk costs balanced on measured per-group integration times from prior
waves, heavy chunks dispatched first) and pushed through
``Pool.imap_unordered``, so an idle worker pulls the next chunk off the
shared queue instead of waiting behind a straggler shard.  ``steal=False``
restores the static one-shard-per-worker round-robin layout
(:func:`~repro.fleet.shard.plan_shards`), which remains the measured
baseline of the E13 benchmark and the deterministic fallback when costs are
unknown.  Either way the layout moves wall time only — the differential
harness pins byte-identical verdicts across layouts.

``cache_path`` adds a persistent on-disk
:meth:`~repro.analysis.cache.AnalysisCache.save_snapshot` of the shared
cache: loaded at run start, rewritten at run end (halts included), with
fork-started workers inheriting the live cache copy-on-write and
spawn-started workers reading the snapshot — so wave N+1 reuses wave N's
analyses in memory, and an entirely new campaign run over the same fleet
warm-starts from the previous run on disk.  ``cache_store`` is the
concurrent-writer alternative: an append-only
:class:`~repro.analysis.cache_store.SegmentStore` directory that every
worker appends its newly derived analyses to *mid-wave* (lock-free, each
writer owns its segment) and polls between chunks, so siblings reuse each
other's busy-window fixpoints before the wave has even joined — not just at
the next run's warm start.  ``checkpoint_path`` (or the
in-memory :attr:`Campaign.last_checkpoint`) captures a halted campaign —
aggregate result plus per-vehicle MCC snapshots at the halting wave's start
— so a remediated campaign can :meth:`Campaign.run` with ``resume_from=``
and continue where it stopped.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.analysis.cache import AnalysisCache
from repro.analysis.cache_store import SegmentStore
from repro.fleet.adversity import AdversityModel
from repro.fleet.shard import (ShardItem, ShardTask, execute_shard,
                               initialize_worker, plan_chunks, plan_shards)
from repro.fleet.vehicle import FleetVehicle, VehicleState
from repro.mcc.configuration import ChangeRequest, IntegrationReport
from repro.mcc.controller import MccSnapshot
from repro.monitoring.deviation import DeviationDetector
from repro.monitoring.metrics import MetricRegistry
from repro.observability.tracer import CampaignTracer
from repro.sim.random import SeededRNG, derive_seed

#: Builds the per-vehicle change request of the campaign's update.
UpdateFactory = Callable[[FleetVehicle], ChangeRequest]

#: Absolute slack on the halt threshold comparison, in *vehicles*.  The
#: failure count is an integer but the tolerated count is a float product
#: (``max_failure_rate * size``) that can round below the mathematically
#: equal integer (``(1/49) * 49 == 0.9999...``); the slack keeps an
#: exactly-at-threshold wave tolerated for any fleet far below a billion
#: vehicles.
_HALT_SLACK = 1e-9


class CampaignError(ValueError):
    """Raised for invalid campaign or wave-policy configuration."""


@dataclass(frozen=True)
class WavePolicy:
    """Staging and halting policy of a campaign.

    ``canary_size`` vehicles go first (0 disables the canary wave); the
    remainder is released in waves at the cumulative ``wave_fractions`` of
    the post-canary fleet (a final full wave is implied when the last
    fraction is below 1).

    ``max_failure_rate`` is the highest **tolerated** failure rate of one
    wave — failures being rejections plus post-deployment deviations.  The
    halt comparison is strict (*exceeds*, not *reaches*): a wave at exactly
    the threshold passes, ``max_failure_rate=1.0`` never halts.  Two edge
    semantics are pinned explicitly (see :meth:`halts`): a zero threshold is
    zero tolerance — **any** failed vehicle halts, without relying on
    floating-point strictness — and the exactly-at-threshold comparison is
    performed on integer failure counts with an absolute slack, so binary
    rounding of the tolerated count (``(1/49) * 49 < 1``) cannot turn a
    tolerated wave into a halt.
    ``rollback_on_halt`` then rolls the admitted vehicles of the halting
    wave back to their pre-wave state.
    """

    canary_size: int = 2
    wave_fractions: Tuple[float, ...] = (0.1, 0.3, 1.0)
    max_failure_rate: float = 0.3
    rollback_on_halt: bool = True
    refine_on_deviation: bool = False

    def __post_init__(self) -> None:
        if self.canary_size < 0:
            raise CampaignError("canary_size must be non-negative")
        if not 0.0 <= self.max_failure_rate <= 1.0:
            raise CampaignError("max_failure_rate must be in [0, 1]")
        previous = 0.0
        for fraction in self.wave_fractions:
            if not 0.0 < fraction <= 1.0:
                raise CampaignError(f"wave fraction {fraction} not in (0, 1]")
            if fraction < previous:
                raise CampaignError("wave_fractions must be non-decreasing")
            previous = fraction

    def halts(self, failures: int, size: int) -> bool:
        """Whether a wave with ``failures`` failed vehicles of ``size`` halts.

        A clean wave never halts (even at a zero threshold); a zero
        threshold halts on any failure; otherwise the integer failure count
        must strictly exceed the tolerated count ``max_failure_rate * size``
        beyond float rounding slack.  Empty waves are never planned, but a
        ``size <= 0`` input degrades to "no halt" rather than dividing by
        zero.
        """
        if failures <= 0 or size <= 0:
            return False
        if self.max_failure_rate == 0.0:
            return True
        return failures > self.max_failure_rate * size + _HALT_SLACK


@dataclass
class WaveRecord:
    """Outcome of one executed wave.

    Under an adversity model a wave's staged membership and its executed
    membership can differ: ``undelivered`` vehicles were staged but never
    received the update this wave (they carry into the next wave or are
    ``abandoned`` once their retry budget is spent), ``retried`` counts the
    members that were carried *into* this wave from earlier failed
    deliveries, and ``discounted`` counts deviation reports the feedback
    grader attributed to suspected-compromised senders — still recorded as
    deviating, but excluded from the halt decision.  All four stay zero on
    an unperturbed campaign.
    """

    index: int
    kind: str
    vehicle_ids: List[str]
    admitted: int = 0
    rejected: int = 0
    deviating: int = 0
    refined: int = 0
    rolled_back: int = 0
    undelivered: int = 0
    retried: int = 0
    abandoned: int = 0
    discounted: int = 0

    @property
    def size(self) -> int:
        return len(self.vehicle_ids)

    @property
    def delivered(self) -> int:
        """Members that actually received the update this wave."""
        return self.size - self.undelivered

    @property
    def failures(self) -> int:
        """Failed vehicles of the wave: rejections plus deviations."""
        return self.rejected + self.deviating

    @property
    def effective_failures(self) -> int:
        """Failures that count towards the halt decision (discount applied)."""
        return max(self.failures - self.discounted, 0)

    @property
    def failure_rate(self) -> float:
        """Failures over wave size (0.0 for a degenerate empty wave)."""
        return self.failures / self.size if self.size else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {"index": self.index, "kind": self.kind, "size": self.size,
                "admitted": self.admitted, "rejected": self.rejected,
                "deviating": self.deviating, "refined": self.refined,
                "rolled_back": self.rolled_back,
                "undelivered": self.undelivered, "retried": self.retried,
                "abandoned": self.abandoned, "discounted": self.discounted,
                "failure_rate": self.failure_rate}


@dataclass
class CampaignResult:
    """Aggregate outcome of one campaign run."""

    fleet_size: int
    batched: bool
    waves: List[WaveRecord] = field(default_factory=list)
    admitted: int = 0
    rejected: int = 0
    deviating: int = 0
    refined: int = 0
    rolled_back: int = 0
    #: Adversity accounting (all zero on an unperturbed campaign):
    #: ``undelivered`` counts deferred delivery *events* (a vehicle dropped
    #: twice before succeeding contributes two), ``retried`` counts
    #: carried-member wave slots, ``abandoned`` counts vehicles whose retry
    #: budget was exhausted (permanently not updated) and ``discounted``
    #: counts deviation reports excluded from halt decisions because the
    #: IDS suspected their sender.
    undelivered: int = 0
    retried: int = 0
    abandoned: int = 0
    discounted: int = 0
    halted: bool = False
    halted_wave: Optional[int] = None
    cache_hits: int = 0
    cache_misses: int = 0
    engine_reuse_rate: float = 0.0
    #: Per-shard execution telemetry of the pooled waves (one dict per
    #: executed shard: wave/shard indices, item count, worker pid, wall
    #: time, cache hit/miss deltas, store publish/absorb counts).  Purely
    #: informational — like the cache counters it varies with the worker
    #: layout and is excluded from canonical records and byte-parity.
    shard_telemetry: List[Dict[str, object]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        """Whether the campaign ran its staged rollout to the end.

        Requires at least one executed wave and no halt: a degenerate
        campaign over an empty fleet (zero waves planned) reports neither
        ``completed`` nor ``halted`` — it did not successfully roll anything
        out, it had nothing to do.
        """
        return bool(self.waves) and not self.halted

    @property
    def vehicles_updated(self) -> int:
        """Vehicles running the update after the campaign (net of rollback)."""
        return self.admitted - self.rolled_back

    @property
    def update_coverage(self) -> float:
        """Updated fraction of the fleet (0.0, not NaN, for an empty fleet)."""
        return self.vehicles_updated / self.fleet_size if self.fleet_size else 0.0

    @property
    def acceptance_rate(self) -> float:
        """Admitted fraction of attempted admissions (0.0 when none ran)."""
        attempted = self.admitted + self.rejected
        return self.admitted / attempted if attempted else 0.0


@dataclass
class CampaignCheckpoint:
    """A halted campaign, frozen at the start of its halting wave.

    ``result`` aggregates the waves executed *before* the halting wave;
    ``vehicle_states`` captures every fleet vehicle's portable MCC snapshot
    and rollout flags at that point (halting-wave members at their pre-wave
    state regardless of the rollback policy).  The checkpoint pickles
    cleanly — :meth:`save`/:meth:`load` move it across processes and runs —
    and :meth:`Campaign.run` with ``resume_from=`` re-executes the halting
    wave (remediated or not) and everything after it.
    """

    next_wave: int
    result: CampaignResult
    vehicle_states: List[VehicleState]

    def save(self, path: str) -> None:
        """Pickle this checkpoint to ``path`` (atomic replace).

        The checkpoint is the recovery artifact of a halted campaign, so a
        crash mid-write must never leave a truncated file where a valid
        earlier checkpoint used to be: the pickle lands in a temp file that
        replaces ``path`` only once fully written.
        """
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(self, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise

    @staticmethod
    def load(path: str) -> "CampaignCheckpoint":
        """Load a checkpoint previously written by :meth:`save`."""
        with open(path, "rb") as stream:
            checkpoint = pickle.load(stream)
        if not isinstance(checkpoint, CampaignCheckpoint):
            raise CampaignError(f"{path!r} is not a campaign checkpoint")
        return checkpoint


def plan_waves(vehicles: Sequence[FleetVehicle],
               policy: WavePolicy) -> List[Tuple[str, List[FleetVehicle]]]:
    """Deterministic wave partition of a fleet: canary, staged, full.

    Every returned wave is non-empty; an empty fleet yields no waves (the
    degenerate campaign executes nothing) and a single-vehicle fleet yields
    exactly one (canary when enabled).  The last wave always covers the
    remaining fleet even when ``wave_fractions`` stops short of 1.0, and a
    canary at least as large as the fleet simply is the whole rollout.
    """
    ordered = list(vehicles)
    if not ordered:
        return []
    waves: List[Tuple[str, List[FleetVehicle]]] = []
    cursor = 0
    if policy.canary_size > 0:
        canary = ordered[:policy.canary_size]
        waves.append(("canary", canary))
        cursor = len(canary)
    remainder = ordered[cursor:]
    released = 0
    fractions = list(policy.wave_fractions)
    if not fractions or fractions[-1] < 1.0:
        fractions.append(1.0)
    for fraction in fractions:
        if released >= len(remainder):
            break
        target = min(len(remainder), max(released + 1,
                                         round(fraction * len(remainder))))
        wave = remainder[released:target]
        kind = "full" if target == len(remainder) else "wave"
        waves.append((kind, wave))
        released = target
    return waves


class Campaign:
    """Rolls one update out across a fleet in staged waves.

    Parameters
    ----------
    vehicles:
        The fleet, in rollout order.
    update_factory:
        Builds the per-vehicle :class:`ChangeRequest` (vehicles of different
        variants typically get variant-scaled contracts of the same logical
        update).
    policy:
        Staging/halting policy.
    analysis_cache:
        The shared cache used for batched admission.  Required when
        ``batch_admission`` is on; for the full effect the fleet should have
        been generated with the same cache.
    batch_admission:
        Prefetch every wave's candidate task sets through
        ``analysis_cache.analyse_many`` before the per-vehicle integrations.
    failure_injection_rate:
        Probability that an updated vehicle's observed execution time exceeds
        its contracted budget (simulated field failure).
    feedback_seed:
        Seed of the simulated monitor feedback stream; per-vehicle draws are
        derived from it and the vehicle index, so feedback is identical for
        batched and sequential admission.
    workers:
        Size of the sharded execution pool.  ``1`` (the default) runs
        everything in-process; ``> 1`` ships each wave's new representative
        integrations to a ``multiprocessing`` pool (requires
        ``batch_admission`` — sharding *is* the deduped admission path) and
        produces byte-identical wave records, verdicts and vehicle state
        (only the informational parent-side cache counters vary with the
        worker layout).  When the campaign itself runs
        inside a daemonic pool worker (which may not fork children, e.g.
        under the parallel experiment runner), shard execution transparently
        falls back to in-process — same verdicts, only wall time differs.
    cache_path:
        Optional on-disk snapshot of the shared analysis cache.  Loaded (if
        present) at run start and rewritten when the run ends — halt
        included — so whole re-runs and resumed campaigns warm-start from
        every previously derived analysis.  (Within a run, wave N+1
        warm-starts from wave N through the live caches: the parent's, and
        each worker's fork-inherited or snapshot-seeded copy.)  Requires an
        ``analysis_cache``.
    checkpoint_path:
        Where to write a :class:`CampaignCheckpoint` when the campaign
        halts (also kept in memory as :attr:`last_checkpoint`).
    batch_kernel:
        Route the shared cache's cold-miss batches through the vectorized
        lockstep busy-window kernel
        (:class:`~repro.analysis.batch.BatchResponseTimeAnalysis`).
        Verdicts are bit-identical either way; only the wave-prefetch wall
        time changes.  Requires an ``analysis_cache``.
    shard_planner:
        ``"cost"`` (the default) partitions pooled waves with the
        cost-model planner (:func:`~repro.fleet.shard.plan_chunks`):
        congruence-structure co-location, chunk costs balanced on measured
        per-group integration times from prior waves.  ``"round_robin"``
        uses the deterministic :func:`~repro.fleet.shard.plan_shards`
        fallback.  Layout moves wall time only, never verdicts.
    steal:
        Dispatch shard tasks through ``Pool.imap_unordered`` so idle
        workers pull the next chunk the moment they finish (work
        stealing).  ``False`` restores the barrier-style ``Pool.map``
        dispatch of one static shard per worker.
    start_method:
        ``multiprocessing`` start method of the shard pool (``"fork"``,
        ``"spawn"``, ``"forkserver"`` or ``None`` for the platform
        default).  Spawn-started workers cannot inherit the parent cache
        copy-on-write; they warm-start from ``cache_path`` and/or
        ``cache_store`` instead — verdicts are identical either way.
    cache_store:
        Directory of an append-only
        :class:`~repro.analysis.cache_store.SegmentStore` shared by the
        parent and every worker.  Workers publish their newly derived
        analyses to it mid-wave and absorb their siblings' between chunks;
        the parent seeds it with the provisioning analyses before the pool
        starts and folds everything back at run end.  Mutually exclusive
        with ``cache_path`` (one durable warm-start medium per campaign);
        requires an ``analysis_cache``.
    adversity:
        Optional :class:`~repro.fleet.adversity.AdversityModel` perturbing
        the wave loop: lossy update delivery (undelivered vehicles carry
        into later waves, extra ``straggler`` waves run after the planned
        rollout until every retry budget is spent), forged monitor feedback
        graded by an IDS (suspected senders' deviations are recorded but
        *discounted* from the halt decision) and perturbed admission inputs
        (e.g. thermally inflated WCETs).  All adversity decisions execute
        in the parent in wave order from seeded streams, so perturbed
        campaigns keep the byte-parity guarantee across worker layouts.
        Mutually exclusive with ``resume_from`` — a delivery-perturbed
        staging cannot be validated against the static wave plan.
    tracer:
        Optional :class:`~repro.observability.tracer.CampaignTracer`.  When
        set, the wave loop, the shard executor, the adversity seams and the
        shared analysis cache report structured events into it (flushed to
        its JSONL path at run end); see ``docs/OBSERVABILITY.md`` for the
        event taxonomy.  Tracing is strictly read-only: traced campaigns
        produce field-for-field identical results to untraced ones at any
        worker count, and ``tracer=None`` (the default) leaves every
        instrumentation site a single attribute test — the zero-overhead
        path.
    """

    def __init__(self, vehicles: Sequence[FleetVehicle],
                 update_factory: UpdateFactory,
                 policy: Optional[WavePolicy] = None,
                 analysis_cache: Optional[AnalysisCache] = None,
                 batch_admission: bool = True,
                 failure_injection_rate: float = 0.0,
                 feedback_seed: int = 0,
                 workers: int = 1,
                 cache_path: Optional[str] = None,
                 checkpoint_path: Optional[str] = None,
                 batch_kernel: bool = False,
                 shard_planner: str = "cost",
                 steal: bool = True,
                 start_method: Optional[str] = None,
                 cache_store: Optional[str] = None,
                 adversity: Optional[AdversityModel] = None,
                 tracer: Optional[CampaignTracer] = None) -> None:
        if not 0.0 <= failure_injection_rate <= 1.0:
            raise CampaignError("failure_injection_rate must be in [0, 1]")
        if batch_admission and analysis_cache is None:
            raise CampaignError("batched admission needs a shared analysis cache")
        if workers < 1:
            raise CampaignError("workers must be at least 1")
        if workers > 1 and not batch_admission:
            raise CampaignError("sharded execution (workers > 1) requires "
                                "batched admission — sharding runs one "
                                "integration per equivalence group")
        if cache_path is not None and analysis_cache is None:
            raise CampaignError("cache_path needs an analysis cache to snapshot")
        if batch_kernel and analysis_cache is None:
            raise CampaignError("batch_kernel needs a shared analysis cache")
        if shard_planner not in ("cost", "round_robin"):
            raise CampaignError("shard_planner must be 'cost' or "
                                f"'round_robin', not {shard_planner!r}")
        if start_method not in (None, "fork", "spawn", "forkserver"):
            raise CampaignError(f"unknown start_method {start_method!r}")
        if cache_store is not None and analysis_cache is None:
            raise CampaignError("cache_store needs an analysis cache to share")
        if cache_store is not None and cache_path is not None:
            raise CampaignError("cache_path and cache_store are mutually "
                                "exclusive — pick one warm-start medium")
        if batch_kernel:
            analysis_cache.engine.batch_kernel = True
        self.batch_kernel = batch_kernel
        self.vehicles = list(vehicles)
        self.update_factory = update_factory
        self.policy = policy if policy is not None else WavePolicy()
        self.analysis_cache = analysis_cache
        self.batch_admission = batch_admission
        self.failure_injection_rate = failure_injection_rate
        self.feedback_seed = feedback_seed
        self.workers = workers
        self.cache_path = cache_path
        self.checkpoint_path = checkpoint_path
        self.shard_planner = shard_planner
        self.steal = steal
        self.start_method = start_method
        self.cache_store = cache_store
        self.adversity = adversity
        self.tracer = tracer
        if tracer is not None and analysis_cache is not None:
            # The shared cache reports its lookup/merge events into the
            # same trace (observation only; never pickled into workers).
            analysis_cache.tracer = tracer
        #: The checkpoint written at the most recent halt (None before).
        self.last_checkpoint: Optional[CampaignCheckpoint] = None
        #: EWMA of measured integration seconds per shard-group label,
        #: carried across waves and runs of this campaign object.  Seeds
        #: the cost-model planner; wall-time-only by construction.
        self._cost_model: Dict[Hashable, float] = {}
        #: Parent-side handle on ``cache_store`` plus the keys known to be
        #: durable there (so run-end publication ships only the delta).
        self._parent_store: Optional[SegmentStore] = None
        self._store_keys: set = set()

    # -- wave internals ----------------------------------------------------

    def _prefetch_wave(self,
                       representatives: Sequence[Tuple[FleetVehicle,
                                                       ChangeRequest]]) -> None:
        """Warm the shared cache with the representatives' candidate analyses.

        Only the vehicles that will actually run a full integration are
        previewed (one per equivalence group); the batch goes through
        ``analyse_many`` so representatives of *different* variants
        warm-start off each other in the incremental engine.  The prefetch is
        only a warm-up — a skipped preview costs cache misses, never a
        different verdict.
        """
        assert self.analysis_cache is not None
        tasksets = []
        for vehicle, request in representatives:
            preview = vehicle.mcc.process.preview_tasksets(vehicle.mcc.model, request)
            if preview is None:
                continue  # rejected before the acceptance phase; nothing to warm
            tasksets.extend(taskset for _, taskset in sorted(preview.items()))
        if tasksets:
            self.analysis_cache.analyse_many(tasksets)

    @staticmethod
    def _equivalence_key(vehicle: FleetVehicle, request: ChangeRequest) -> Tuple:
        """Identity of one admission problem, exact within this process.

        Two vehicles with the same platform shape (same variant), the same
        adopted contract *objects*, the same mapping/priority state and the
        same request contract object pose the identical integration problem.
        Diverged vehicles (refined WCETs build fresh contract objects,
        rollbacks restore the previous model) fall out of the group
        automatically because their object identities differ.

        Identity-based keys are only sound while the referenced objects stay
        alive — a recycled ``id`` could alias a stale key — so the campaign
        pins every object that enters a stored precedent key for the run's
        lifetime (see :meth:`run`).  For the same reason keys never cross a
        process boundary: shard workers receive wave positions, not keys.
        """
        model = vehicle.mcc.model
        return (vehicle.variant.index,
                tuple(sorted((contract.component, id(contract))
                             for contract in model.contracts())),
                tuple(sorted(model.mapping.items())),
                tuple(sorted(model.priorities.items())),
                request.kind, request.component, id(request.contract))

    @staticmethod
    def _group_label(vehicle: FleetVehicle, request: ChangeRequest) -> Tuple:
        """Coarse congruence label of one representative integration.

        Representatives of the same fleet variant receiving the same logical
        request share platform shape, contract structure and therefore
        congruence signature — their analyses dedupe against each other, so
        the chunk planner co-locates them in one shard and the cost model
        aggregates their measured integration times under one key.  Unlike
        :meth:`_equivalence_key` this label is value-based (no object
        identities), so it is stable across waves and runs.
        """
        return (vehicle.variant.index, request.kind, request.component)

    def _estimate_costs(self, labels: Sequence[Tuple]) -> List[float]:
        """Per-representative cost estimates from the prior-wave EWMA model.

        Labels never measured yet (wave 1, or a variant first reaching a
        later wave) are priced at the mean of the known costs — neutral
        weight — or 1.0 on a completely cold model (uniform partition).
        """
        known = self._cost_model
        fallback = (sum(known.values()) / len(known)) if known else 1.0
        return [known.get(label, fallback) for label in labels]

    def _record_cost(self, label: Tuple, elapsed_s: float) -> None:
        """Fold one measured integration time into the EWMA cost model."""
        previous = self._cost_model.get(label)
        self._cost_model[label] = elapsed_s if previous is None \
            else 0.5 * previous + 0.5 * elapsed_s

    def _admit_shards(self, wave: Sequence[FleetVehicle],
                      requests: Sequence[ChangeRequest],
                      keys: Sequence[Tuple], rep_positions: Sequence[int],
                      precedents: Dict[Tuple, Tuple[IntegrationReport,
                                                    Dict[str, str],
                                                    Dict[str, int]]],
                      pinned: List[object], pool,
                      wave_index: int, result: CampaignResult) -> None:
        """Run the wave's new representative integrations on the pool.

        The representatives were deduped pre-fork (one wave position per new
        equivalence key); their verdicts land in ``precedents`` post-join so
        the parent's adoption loop replays every group member — including
        the representative itself — without re-analysing anything.

        Layout and dispatch follow the campaign's ``shard_planner`` and
        ``steal`` knobs: cost-model chunks pulled completion-driven off the
        pool's shared queue by default, static round-robin shards behind a
        ``Pool.map`` barrier otherwise.  Fan-in order is nondeterministic
        under stealing, but each verdict updates exactly one equivalence
        key, so ``precedents`` — and every wave verdict derived from it —
        is independent of arrival order; only the telemetry rows and the
        cost model see the completion order.
        """
        labels = [self._group_label(wave[position], requests[position])
                  for position in rep_positions]
        if self.shard_planner == "cost":
            shards = plan_chunks(len(rep_positions), self.workers,
                                 costs=self._estimate_costs(labels),
                                 groups=labels)
        else:
            shards = plan_shards(len(rep_positions), self.workers)
        tasks = [ShardTask(shard_index=shard_index,
                           items=[ShardItem(position=item,
                                            vehicle=wave[rep_positions[item]],
                                            request=requests[rep_positions[item]])
                                  for item in shard],
                           cache_path=self.cache_path,
                           store_path=self.cache_store,
                           trace=self.tracer is not None)
                 for shard_index, shard in enumerate(shards)]
        if self.tracer is not None:
            self.tracer.emit("shard.plan", wave=wave_index,
                             planner=self.shard_planner, steal=self.steal,
                             shards=len(tasks),
                             representatives=len(rep_positions))
        if self.steal:
            # Completion-driven dispatch: the pool's shared task queue is
            # the steal target — an idle worker takes the next chunk
            # immediately, and results fan in as they finish.
            completed = pool.imap_unordered(execute_shard, tasks, chunksize=1)
        else:
            completed = pool.map(execute_shard, tasks)
        for shard_result in completed:
            if self.analysis_cache is not None:
                self.analysis_cache.merge_entries(shard_result.cache_entries)
            for verdict in shard_result.verdicts:
                position = rep_positions[verdict.position]
                vehicle, request = wave[position], requests[position]
                pinned.append(request.contract)
                pinned.extend(vehicle.mcc.model.contracts())
                precedents[keys[position]] = (verdict.report, verdict.mapping,
                                              verdict.priorities)
                self._record_cost(labels[verdict.position], verdict.elapsed_s)
            # Field set pinned by SHARD_TELEMETRY_SCHEMA (see
            # repro.fleet.shard) — extend both together.
            telemetry_row = {
                "wave": wave_index,
                "shard": shard_result.shard_index,
                "items": len(shard_result.verdicts),
                "worker_pid": shard_result.worker_pid,
                "elapsed_s": shard_result.elapsed_s,
                "cache_hits": shard_result.cache_hits,
                "cache_misses": shard_result.cache_misses,
                "published_entries": shard_result.published_entries,
                "absorbed_entries": shard_result.absorbed_entries,
            }
            result.shard_telemetry.append(telemetry_row)
            if self.tracer is not None:
                self.tracer.ingest(shard_result.events, wave=wave_index)
                self.tracer.emit("shard.execute",
                                 **{key: value for key, value
                                    in telemetry_row.items()})

    def _feedback(self, vehicle: FleetVehicle, request: ChangeRequest,
                  wave_index: int, record: WaveRecord) -> None:
        """Simulate one updated vehicle's monitor feedback and grade it.

        With an adversity model the honest observation passes through
        :meth:`~repro.fleet.adversity.AdversityModel.observe` (compromised
        vehicles forge it), the detector may grade against two-sided bands,
        and a raised deviation is additionally graded by the model — a
        report attributed to a suspected-compromised sender is recorded
        (``record.deviating``) but discounted from the halt decision
        (``record.discounted``).
        """
        contract = vehicle.mcc.model.contract(request.component)
        timing = contract.timing
        if timing is None:  # pragma: no cover - campaign updates carry timing
            return
        rng = SeededRNG(derive_seed(self.feedback_seed, vehicle.index))
        injected = rng.uniform() < self.failure_injection_rate
        nominal_range = (0.55, 0.95)
        two_sided = False
        if self.adversity is not None:
            two_sided = self.adversity.two_sided_feedback
            if self.adversity.nominal_factor_range is not None:
                nominal_range = self.adversity.nominal_factor_range
        factor = rng.uniform(1.25, 1.75) if injected \
            else rng.uniform(*nominal_range)
        observed = timing.wcet * factor
        if self.adversity is not None:
            observed = self.adversity.observe(vehicle, wave_index,
                                              timing.wcet, observed)
        registry = MetricRegistry()
        detector: DeviationDetector = vehicle.mcc.configure_deviation_detector(
            registry, two_sided=two_sided)
        source = f"{request.component}.task"
        anomalies = detector.observe(float(wave_index), source,
                                     "execution_time", observed)
        if self.tracer is not None:
            self.tracer.emit("feedback.observe", wave=wave_index,
                             vehicle=vehicle.vehicle_id, observed=observed,
                             deviating=bool(anomalies))
        if not anomalies:
            return
        vehicle.deviating = True
        record.deviating += 1
        if self.adversity is not None and self.adversity.grade_feedback(
                vehicle, wave_index, len(anomalies)):
            record.discounted += 1
            if self.tracer is not None:
                self.tracer.emit("feedback.discount", wave=wave_index,
                                 vehicle=vehicle.vehicle_id)
            return  # a discounted (suspect) report must not refine the model
        if self.policy.refine_on_deviation:
            refinements = vehicle.mcc.incorporate_observed_wcets({source: observed})
            record.refined += len(refinements)

    def _rollback_wave(self, admitted: List[Tuple[FleetVehicle, MccSnapshot]],
                       record: WaveRecord) -> None:
        for vehicle, snapshot in admitted:
            vehicle.mcc.rollback(snapshot)
            vehicle.updated = False
            vehicle.rolled_back = True
            record.rolled_back += 1
            if self.tracer is not None:
                self.tracer.emit("vehicle.rollback", wave=record.index,
                                 vehicle=vehicle.vehicle_id)

    # -- checkpoint/resume -------------------------------------------------

    @staticmethod
    def _copy_result(source: CampaignResult) -> CampaignResult:
        """An independent copy of a result (fresh wave records/lists)."""
        return replace(source,
                       waves=[replace(record,
                                      vehicle_ids=list(record.vehicle_ids))
                              for record in source.waves],
                       shard_telemetry=[dict(row)
                                        for row in source.shard_telemetry])

    def _build_checkpoint(self, halted_wave: int, result: CampaignResult,
                          wave: Sequence[FleetVehicle],
                          pre_wave: Dict[str, MccSnapshot]
                          ) -> CampaignCheckpoint:
        """Freeze the campaign at the start of its halting wave.

        The checkpointed result excludes the halting wave's record (the
        wave re-runs on resume); halting-wave members are stored at their
        pre-wave snapshot with clean flags even when ``rollback_on_halt`` is
        off, so a resume always re-admits the remediated wave from scratch.
        """
        prefix = self._copy_result(result)
        prefix.waves = prefix.waves[:-1]
        prefix.halted = False
        prefix.halted_wave = None
        # Telemetry rows of the *executed* waves stay with the checkpoint (a
        # resumed run merges them with its own); only the halting wave's
        # rows are dropped — that wave re-runs on resume and reports afresh.
        prefix.shard_telemetry = [row for row in prefix.shard_telemetry
                                  if row["wave"] < halted_wave]
        for attribute in ("admitted", "rejected", "deviating", "refined",
                          "rolled_back", "undelivered", "retried",
                          "abandoned", "discounted"):
            setattr(prefix, attribute,
                    sum(getattr(record, attribute) for record in prefix.waves))
        halting = {vehicle.vehicle_id for vehicle in wave}
        states = []
        for vehicle in self.vehicles:
            if vehicle.vehicle_id in halting:
                states.append(VehicleState(vehicle_id=vehicle.vehicle_id,
                                           snapshot=pre_wave[vehicle.vehicle_id],
                                           updated=False, deviating=False,
                                           rolled_back=False))
            else:
                states.append(vehicle.capture_state())
        return CampaignCheckpoint(next_wave=halted_wave, result=prefix,
                                  vehicle_states=states)

    def _restore_checkpoint(self, checkpoint: CampaignCheckpoint,
                            plan: Sequence[Tuple[str, List[FleetVehicle]]],
                            result: CampaignResult) -> int:
        """Rewind the fleet and seed ``result`` from ``checkpoint``.

        Validates that the resumed campaign stages the same fleet the same
        way (the executed waves' vehicle ids must match the plan — policy
        remediation may change thresholds, not the staging of already
        executed waves).  Returns the wave index to continue from.
        """
        checkpointed = {state.vehicle_id for state in checkpoint.vehicle_states}
        current = {vehicle.vehicle_id for vehicle in self.vehicles}
        if checkpointed != current:
            raise CampaignError(
                f"checkpoint covers a {len(checkpointed)}-vehicle fleet, the "
                f"resumed campaign stages {len(current)} vehicles; resume "
                "needs the exact fleet the campaign halted on")
        if checkpoint.next_wave > len(plan):
            raise CampaignError(
                f"checkpoint expects wave {checkpoint.next_wave} but the "
                f"resumed campaign plans only {len(plan)} waves")
        for index, record in enumerate(checkpoint.result.waves):
            planned = [vehicle.vehicle_id for vehicle in plan[index][1]]
            if planned != list(record.vehicle_ids):
                raise CampaignError(
                    f"resumed staging diverges at wave {index}: checkpoint "
                    f"executed {record.vehicle_ids}, plan stages {planned}")
        states = {state.vehicle_id: state for state in checkpoint.vehicle_states}
        for vehicle in self.vehicles:
            vehicle.restore_state(states[vehicle.vehicle_id])
        seeded = self._copy_result(checkpoint.result)
        result.waves = seeded.waves
        # Executed waves' shard telemetry is carried over so a resumed
        # campaign's telemetry covers the same waves an uninterrupted run's
        # would; the resumed waves append their own rows.  Cache counters
        # are deliberately not carried over: they describe one process's
        # cache traffic and the resumed run reports its own.
        result.shard_telemetry = seeded.shard_telemetry
        for attribute in ("admitted", "rejected", "deviating", "refined",
                          "rolled_back", "undelivered", "retried",
                          "abandoned", "discounted"):
            setattr(result, attribute, getattr(seeded, attribute))
        return checkpoint.next_wave

    # -- segment-store plumbing --------------------------------------------

    def _absorb_store(self) -> int:
        """Merge everything newly durable in ``cache_store`` into the
        parent cache; returns the number of new entries absorbed."""
        assert self._parent_store is not None and self.analysis_cache is not None
        entries = self._parent_store.read_new()
        self._store_keys.update(key for key, _ in entries)
        absorbed = self.analysis_cache.merge_entries(entries)
        if self.tracer is not None:
            self.tracer.emit("store.absorb", entries=absorbed)
        return absorbed

    def _publish_store(self) -> int:
        """Append the parent cache's not-yet-durable entries to the store."""
        assert self._parent_store is not None and self.analysis_cache is not None
        fresh = self.analysis_cache.export_entries(exclude=self._store_keys)
        if fresh:
            self._parent_store.append(fresh)
            self._store_keys.update(key for key, _ in fresh)
        if self.tracer is not None:
            self.tracer.emit("store.publish", entries=len(fresh))
        return len(fresh)

    # -- execution ---------------------------------------------------------

    def run(self, resume_from: Optional[CampaignCheckpoint] = None
            ) -> CampaignResult:
        """Execute the campaign and return its aggregate result.

        With ``resume_from`` the fleet is first rewound to the checkpoint
        (halting-wave members to their pre-wave state) and execution
        continues at the checkpointed wave; the returned result aggregates
        the checkpointed waves plus everything executed now.
        """
        result = CampaignResult(fleet_size=len(self.vehicles),
                                batched=self.batch_admission)
        plan = plan_waves(self.vehicles, self.policy)
        start_wave = 0
        if self.tracer is not None:
            self.tracer.emit("campaign.begin", fleet_size=len(self.vehicles),
                             waves_planned=len(plan), workers=self.workers,
                             batched=self.batch_admission,
                             planner=self.shard_planner, steal=self.steal,
                             adversity=type(self.adversity).__name__
                             if self.adversity is not None else None,
                             resumed=resume_from is not None)
        if resume_from is not None:
            if self.adversity is not None:
                raise CampaignError(
                    "resume_from cannot be combined with an adversity "
                    "model: delivery-perturbed staging (carried and "
                    "straggler waves) cannot be validated against the "
                    "static wave plan a checkpoint records")
            start_wave = self._restore_checkpoint(resume_from, plan, result)
        if self.analysis_cache is not None and self.cache_path is not None:
            # Warm-start this run from the previous run's snapshot.
            loaded = self.analysis_cache.load_snapshot(self.cache_path,
                                                       missing_ok=True)
            if self.tracer is not None:
                self.tracer.emit("cache.snapshot_load", entries=loaded)
            if self.workers > 1:
                # Refresh the snapshot so spawn-method workers (which cannot
                # inherit the parent cache at fork) warm-start from the
                # provisioning analyses; fork-method workers ignore the file.
                self.analysis_cache.save_snapshot(self.cache_path)
        if self.analysis_cache is not None and self.cache_store is not None:
            # Warm-start from the shared store, then make this run's
            # pre-pool entries (fleet provisioning analyses) durable so
            # even spawn-started workers begin warm.
            if self._parent_store is None:
                self._parent_store = SegmentStore(self.cache_store)
            self._absorb_store()
            self._publish_store()
        # Counter baseline: the shared cache typically served fleet
        # provisioning too; the result reports this run's traffic only (a
        # resumed run reports the resumed waves', not the halted run's).
        hits_before = self.analysis_cache.hits if self.analysis_cache else 0
        misses_before = self.analysis_cache.misses if self.analysis_cache else 0
        #: request-equivalence key -> (report, mapping, priorities) of the
        #: vehicle that ran the full integration; kept across waves so later
        #: waves of unchanged same-variant vehicles replay wave 1's verdicts.
        precedents: Dict[Tuple, Tuple[IntegrationReport, Dict[str, str],
                                      Dict[str, int]]] = {}
        #: Objects whose id() is baked into a stored precedent key.  Holding
        #: them prevents garbage collection from recycling an id into a new
        #: contract mid-campaign, which could falsely match a stale key.
        pinned: List[object] = []
        pool = None
        if self.workers > 1 and not multiprocessing.current_process().daemon:
            # Workers inherit the parent's warm cache copy-on-write at fork
            # (or load the snapshot once, under spawn) and keep it for the
            # whole campaign — see initialize_worker.  Inside a *daemonic*
            # worker (e.g. an experiment runner's pool) children are not
            # allowed; shard execution then stays in-process, which changes
            # wall time only — verdicts are worker-layout-independent.
            import repro.fleet.shard as shard_module
            context = multiprocessing.get_context(self.start_method)
            worker_max_entries = self.analysis_cache.max_entries \
                if self.analysis_cache is not None else 16384
            worker_batch_kernel = self.analysis_cache.batch_kernel \
                if self.analysis_cache is not None else False
            shard_module._FORK_SEED = self.analysis_cache
            try:
                pool = context.Pool(
                    processes=self.workers, initializer=initialize_worker,
                    initargs=(self.cache_path, worker_max_entries,
                              worker_batch_kernel, self.cache_store))
            finally:
                shard_module._FORK_SEED = None
        try:
            #: Vehicles whose delivery failed, carried into the next wave as
            #: ``(vehicle, failed_attempts)``; once the planned rollout is
            #: exhausted, remaining carry runs in extra ``straggler`` waves.
            carry: List[Tuple[FleetVehicle, int]] = []
            wave_index = 0
            stalled_waves = 0
            while wave_index < len(plan) or carry:
                if wave_index < len(plan):
                    kind, planned = plan[wave_index]
                else:
                    kind, planned = "straggler", []
                if wave_index < start_wave:
                    wave_index += 1
                    continue
                staged = [vehicle for vehicle, _ in carry] + list(planned)
                attempts = {vehicle.vehicle_id: tries
                            for vehicle, tries in carry}
                record = WaveRecord(index=wave_index, kind=kind,
                                    vehicle_ids=[v.vehicle_id
                                                 for v in staged])
                record.retried = len(carry)
                carry = []
                if self.tracer is not None:
                    self.tracer.emit("wave.begin", wave=wave_index, kind=kind,
                                     staged=len(staged),
                                     retried=record.retried)
                wave: List[FleetVehicle] = staged
                if self.adversity is not None:
                    if self.tracer is not None:
                        self.tracer.emit("adversity.begin_wave",
                                         wave=wave_index, staged=len(staged))
                    self.adversity.begin_wave(wave_index, staged)
                    wave = []
                    for vehicle in staged:
                        attempt = attempts.get(vehicle.vehicle_id, 0)
                        if self.adversity.deliver(vehicle, wave_index,
                                                  attempt):
                            wave.append(vehicle)
                            delivery = "delivered"
                        elif self.adversity.abandon(vehicle, attempt + 1):
                            record.abandoned += 1
                            delivery = "abandoned"
                        else:
                            carry.append((vehicle, attempt + 1))
                            delivery = "deferred"
                        if self.tracer is not None:
                            self.tracer.emit("adversity.deliver",
                                             wave=wave_index,
                                             vehicle=vehicle.vehicle_id,
                                             attempt=attempt,
                                             outcome=delivery)
                    record.undelivered = record.size - len(wave)
                    # A custom model that neither delivers nor abandons
                    # would loop forever on straggler waves; attempts grow
                    # strictly each round, so any sane retry budget
                    # terminates — guard against the insane ones.
                    if kind == "straggler" and not wave \
                            and record.abandoned == 0:
                        stalled_waves += 1
                        if stalled_waves > 1000:
                            raise CampaignError(
                                "adversity model stalled the campaign: "
                                "1000 consecutive straggler waves without "
                                "a delivery or an abandonment")
                    else:
                        stalled_waves = 0
                requests = []
                for vehicle in wave:
                    request = self.update_factory(vehicle)
                    if self.adversity is not None:
                        request = self.adversity.transform_request(
                            vehicle, request, wave_index)
                    requests.append(request)
                keys: List[Optional[Tuple]] = [None] * len(requests)
                rep_positions: List[int] = []
                if self.batch_admission:
                    # Keys are stable for the whole wave: a vehicle's model
                    # only changes when its own request is admitted, and
                    # adoption happens strictly after the dedupe pass.
                    seen_new = set()
                    for position, (vehicle, request) in enumerate(zip(wave,
                                                                      requests)):
                        key = self._equivalence_key(vehicle, request)
                        keys[position] = key
                        if key not in precedents and key not in seen_new:
                            seen_new.add(key)
                            rep_positions.append(position)
                    if pool is not None:
                        self._admit_shards(wave, requests, keys, rep_positions,
                                           precedents, pinned, pool,
                                           wave_index, result)
                    else:
                        self._prefetch_wave([(wave[p], requests[p])
                                             for p in rep_positions])
                admitted: List[Tuple[FleetVehicle, ChangeRequest,
                                     MccSnapshot]] = []
                pre_wave: Dict[str, MccSnapshot] = {}
                for vehicle, request, key in zip(wave, requests, keys):
                    snapshot = vehicle.mcc.snapshot()
                    pre_wave[vehicle.vehicle_id] = snapshot
                    replayed = False
                    if self.batch_admission:
                        precedent = precedents.get(key)
                        if precedent is None:
                            pinned.append(request.contract)
                            pinned.extend(vehicle.mcc.model.contracts())
                            report = vehicle.mcc.request_change(request)
                            precedents[key] = (report,
                                               dict(vehicle.mcc.model.mapping),
                                               dict(vehicle.mcc.model.priorities))
                        else:
                            replayed = True
                            report = vehicle.mcc.replay_change(request, *precedent)
                    else:
                        report = vehicle.mcc.request_change(request)
                    if self.tracer is not None:
                        self.tracer.emit("vehicle.admit", wave=wave_index,
                                         vehicle=vehicle.vehicle_id,
                                         accepted=report.accepted,
                                         replayed=replayed)
                    if report.accepted:
                        vehicle.updated = True
                        record.admitted += 1
                        admitted.append((vehicle, request, snapshot))
                    else:
                        record.rejected += 1
                for vehicle, request, _ in admitted:
                    self._feedback(vehicle, request, wave_index, record)
                # The halt decision judges the vehicles that actually ran
                # the update (delivered, not staged) and ignores failures
                # the feedback grader attributed to suspected-compromised
                # senders; on an unperturbed campaign both terms reduce to
                # the classic failures-over-size comparison.
                halt = self.policy.halts(record.effective_failures,
                                         record.delivered)
                if halt and self.policy.rollback_on_halt:
                    self._rollback_wave([(vehicle, snapshot)
                                         for vehicle, _, snapshot in admitted],
                                        record)
                if self.tracer is not None:
                    self.tracer.emit("wave.end", wave=wave_index, halt=halt,
                                     **record.to_dict())
                result.waves.append(record)
                result.admitted += record.admitted
                result.rejected += record.rejected
                result.deviating += record.deviating
                result.refined += record.refined
                result.rolled_back += record.rolled_back
                result.undelivered += record.undelivered
                result.retried += record.retried
                result.abandoned += record.abandoned
                result.discounted += record.discounted
                if halt:
                    result.halted = True
                    result.halted_wave = wave_index
                    if self.tracer is not None:
                        self.tracer.emit("campaign.halt", wave=wave_index,
                                         effective_failures=record.effective_failures,
                                         delivered=record.delivered)
                    if self.adversity is None:
                        self.last_checkpoint = self._build_checkpoint(
                            wave_index, result, wave, pre_wave)
                        if self.checkpoint_path is not None:
                            self.last_checkpoint.save(self.checkpoint_path)
                            if self.tracer is not None:
                                self.tracer.emit("checkpoint.save",
                                                 wave=wave_index,
                                                 path=self.checkpoint_path)
                    break
                wave_index += 1
        finally:
            if pool is not None:
                pool.close()
                pool.join()
        if self.analysis_cache is not None and self.cache_path is not None:
            # Persist everything this run derived (shard fan-ins included)
            # so re-runs — and a resume after a halt — warm-start from it.
            self.analysis_cache.save_snapshot(self.cache_path)
            if self.tracer is not None:
                self.tracer.emit("cache.snapshot_save", path=self.cache_path,
                                 entries=len(self.analysis_cache))
        if self.analysis_cache is not None and self._parent_store is not None:
            # Workers made their own derivations durable mid-wave; absorb
            # any last publications, then append what only the parent
            # derived (prefetch path, in-process fallback waves).
            self._absorb_store()
            self._publish_store()
        if self.analysis_cache is not None:
            result.cache_hits = self.analysis_cache.hits - hits_before
            result.cache_misses = self.analysis_cache.misses - misses_before
            result.engine_reuse_rate = self.analysis_cache.engine.reuse_rate
        if self.tracer is not None:
            self.tracer.emit("campaign.end", admitted=result.admitted,
                             rejected=result.rejected,
                             deviating=result.deviating,
                             halted=result.halted,
                             waves=len(result.waves))
            self.tracer.flush()
        return result
