"""Metric collection and aggregation.

"Monitoring is also performed based on models and metrics extracted from
individual layers.  Yet in order to achieve a meaningful self-awareness, the
overall monitoring concept must ensure that metrics from different layers
can be aggregated to a consistent self-representation of the system"
(Section V).  :class:`MetricSeries` stores time-stamped samples with sliding
window statistics; :class:`MetricRegistry` is the aggregation point that the
self-model reads.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


def _import_numpy():
    """Numpy, unless it is missing or ``REPRO_FORCE_PURE_BATCH`` disables it.

    Mirrors :func:`repro.analysis.batch._import_numpy` so the CI pure-python
    leg exercises the fallback summary statistics as well as the scalar
    analysis kernel.
    """
    if os.environ.get("REPRO_FORCE_PURE_BATCH", "0") not in ("", "0"):
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - exercised via the env-var gate
        return None
    return numpy


_np = _import_numpy()


def numpy_available() -> bool:
    """Whether summary statistics use the numpy path in this process."""
    return _np is not None


@dataclass(frozen=True)
class MetricSummary:
    """Summary statistics over a metric window."""

    count: int
    mean: float
    minimum: float
    maximum: float
    std: float
    last: float

    @classmethod
    def empty(cls) -> "MetricSummary":
        return cls(count=0, mean=math.nan, minimum=math.nan, maximum=math.nan,
                   std=math.nan, last=math.nan)


class MetricSeries:
    """A time series of scalar samples for one metric of one source.

    Parameters
    ----------
    name:
        Metric name, conventionally ``"<layer>.<source>.<quantity>"``.
    window:
        Maximum number of samples retained for windowed statistics; older
        samples are discarded (monitors run for the entire mission, so
        unbounded growth is not acceptable on an ECU).
    """

    def __init__(self, name: str, window: int = 1024, unit: str = "") -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.name = name
        self.window = window
        self.unit = unit
        self._times: List[float] = []
        self._values: List[float] = []
        self.total_samples = 0

    def sample(self, time: float, value: float) -> None:
        """Record one sample; evicts the oldest sample beyond the window."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"metric {self.name}: non-monotonic sample time {time} < {self._times[-1]}")
        self._times.append(time)
        self._values.append(float(value))
        self.total_samples += 1
        if len(self._values) > self.window:
            self._times.pop(0)
            self._values.pop(0)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def last(self) -> Optional[float]:
        return self._values[-1] if self._values else None

    @property
    def last_time(self) -> Optional[float]:
        return self._times[-1] if self._times else None

    def values(self) -> List[float]:
        return list(self._values)

    def times(self) -> List[float]:
        return list(self._times)

    def summary(self, since: Optional[float] = None) -> MetricSummary:
        """Summary statistics over the retained window (optionally only
        samples at or after ``since``)."""
        if since is None:
            values = self._values
        else:
            values = [v for t, v in zip(self._times, self._values) if t >= since]
        if not values:
            return MetricSummary.empty()
        if _np is not None:
            array = _np.asarray(values, dtype=float)
            return MetricSummary(count=len(values), mean=float(array.mean()),
                                 minimum=float(array.min()),
                                 maximum=float(array.max()),
                                 std=float(array.std()), last=float(values[-1]))
        # Pure-python fallback: population statistics (ddof=0, numpy's
        # default) so both paths agree to floating-point accumulation order.
        count = len(values)
        mean = math.fsum(values) / count
        variance = math.fsum((v - mean) ** 2 for v in values) / count
        return MetricSummary(count=count, mean=mean, minimum=min(values),
                             maximum=max(values), std=math.sqrt(variance),
                             last=values[-1])

    def rate(self, window_s: float) -> float:
        """Samples per second over the trailing ``window_s`` seconds."""
        if window_s <= 0:
            raise ValueError("window must be positive")
        if not self._times:
            return 0.0
        cutoff = self._times[-1] - window_s
        count = sum(1 for t in self._times if t >= cutoff)
        return count / window_s

    def exceeded(self, threshold: float, since: Optional[float] = None) -> bool:
        summary = self.summary(since=since)
        return summary.count > 0 and summary.maximum > threshold


class MetricRegistry:
    """Aggregation point for all metric series of a system.

    Keys are ``(source, metric)`` pairs; the registry lazily creates series
    on first use so monitors do not need central registration code.
    """

    def __init__(self, default_window: int = 1024) -> None:
        self.default_window = default_window
        self._series: Dict[Tuple[str, str], MetricSeries] = {}

    def series(self, source: str, metric: str, unit: str = "") -> MetricSeries:
        key = (source, metric)
        if key not in self._series:
            self._series[key] = MetricSeries(f"{source}.{metric}",
                                             window=self.default_window, unit=unit)
        return self._series[key]

    def sample(self, time: float, source: str, metric: str, value: float,
               unit: str = "") -> None:
        self.series(source, metric, unit=unit).sample(time, value)

    def get(self, source: str, metric: str) -> Optional[MetricSeries]:
        return self._series.get((source, metric))

    def last(self, source: str, metric: str) -> Optional[float]:
        series = self.get(source, metric)
        return series.last if series else None

    def sources(self) -> List[str]:
        seen: List[str] = []
        for source, _ in self._series:
            if source not in seen:
                seen.append(source)
        return seen

    def metrics_of(self, source: str) -> List[str]:
        return [metric for src, metric in self._series if src == source]

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Latest value of every metric, grouped by source — the raw material
        of the self-representation."""
        result: Dict[str, Dict[str, float]] = {}
        for (source, metric), series in self._series.items():
            if series.last is not None:
                result.setdefault(source, {})[metric] = series.last
        return result

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterable[MetricSeries]:
        return iter(self._series.values())
