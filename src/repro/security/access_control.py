"""Distributed access control derived from the deployed configuration.

The CCC execution domain follows the principle of least privilege: the only
communication relations that exist are the service sessions the MCC wired
(reference [5] of the paper: "A communication framework for distributed
access control in microkernel-based systems").  This module derives the
access-control whitelist (for the
:class:`~repro.monitoring.enforcement.AccessPolicyEnforcer`) and the IDS
rules from a component registry, so that policy always matches the deployed
configuration rather than being maintained by hand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.monitoring.enforcement import AccessPolicyEnforcer
from repro.platform.components import ComponentRegistry
from repro.security.ids import IdsRule, IntrusionDetectionSystem


@dataclass
class AccessControlConfig:
    """The derived access-control configuration.

    Attributes
    ----------
    allowed_calls:
        (client, provider, service) triples permitted by the configuration.
    can_id_assignments:
        Component -> set of CAN identifiers the component may transmit.
    rates:
        Component -> maximum sustained message rate (Hz).
    """

    allowed_calls: List[Tuple[str, str, str]] = field(default_factory=list)
    can_id_assignments: Dict[str, Set[int]] = field(default_factory=dict)
    rates: Dict[str, float] = field(default_factory=dict)

    def assign_can_ids(self, component: str, can_ids: Set[int],
                       max_rate_hz: Optional[float] = None) -> None:
        self.can_id_assignments.setdefault(component, set()).update(can_ids)
        if max_rate_hz is not None:
            self.rates[component] = max_rate_hz

    def allowed_peers_of(self, component: str) -> Set[str]:
        return {provider for client, provider, _ in self.allowed_calls if client == component}

    def components(self) -> List[str]:
        names: Set[str] = set(self.can_id_assignments)
        for client, provider, _ in self.allowed_calls:
            names.add(client)
            names.add(provider)
        return sorted(names)

    # -- materialization -----------------------------------------------------------------

    def configure_enforcer(self, enforcer: AccessPolicyEnforcer) -> AccessPolicyEnforcer:
        """Install the whitelist into an access-policy enforcer."""
        for client, provider, service in self.allowed_calls:
            enforcer.allow(client, provider, service)
        return enforcer

    def configure_ids(self, ids: IntrusionDetectionSystem) -> IntrusionDetectionSystem:
        """Derive and install IDS rules for every known component."""
        for component in self.components():
            ids.add_rule(IdsRule(
                sender=component,
                allowed_ids=set(self.can_id_assignments.get(component, set())),
                allowed_peers=self.allowed_peers_of(component),
                max_rate_hz=self.rates.get(component)))
        return ids


def build_policy_from_registry(registry: ComponentRegistry,
                               can_id_assignments: Optional[Dict[str, Set[int]]] = None,
                               default_rate_hz: Optional[float] = None) -> AccessControlConfig:
    """Derive the access-control configuration from the active service sessions.

    Parameters
    ----------
    registry:
        The component registry of the deployed configuration.
    can_id_assignments:
        Optional CAN identifier assignment per component (from the resource
        viewpoint of the contracts).
    default_rate_hz:
        Optional default rate limit applied to every component.
    """
    config = AccessControlConfig()
    for session in registry.active_sessions():
        config.allowed_calls.append((session.client, session.provider, session.service))
    for component in registry.components():
        if can_id_assignments and component.name in can_id_assignments:
            config.assign_can_ids(component.name, set(can_id_assignments[component.name]))
        if default_rate_hz is not None:
            config.rates.setdefault(component.name, default_rate_hz)
    config.allowed_calls.sort()
    return config
