"""E7 (Section V): platooning in dense fog with partially trusted members.

Regenerates the claim that a fog-impaired vehicle can keep driving at a
useful speed by joining a platoon of better-equipped vehicles, and that the
velocity/gap agreement stays safe in the presence of malicious members.

All runs drive through the scenario registry (``repro.experiments``).
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.experiments import run_scenario


@pytest.mark.benchmark(group="e7-platooning")
def test_e7_visibility_sweep(benchmark):
    """Platoon benefit of the fog-impaired ego vehicle vs visibility."""
    visibilities = [30.0, 60.0, 120.0, 250.0, 1000.0]

    def sweep():
        return [run_scenario("fog_platooning", visibility_m=v, num_members=5,
                             num_malicious=1)
                for v in visibilities]

    records = benchmark(sweep)
    rows = [{"visibility_m": r["visibility_m"],
             "standalone_ego_mps": r["ego_standalone_speed_mps"],
             "platoon_speed_mps": r["agreed_speed_mps"],
             "benefit_mps": r["ego_platoon_benefit_mps"],
             "consensus_rounds": r["rounds"],
             "agreement_error_mps": r["agreement_error_mps"]}
            for r in records]
    print_table("E7: platoon benefit for a fog-impaired vehicle vs visibility", rows)
    # Shape: the worse the visibility, the larger the benefit of platooning;
    # in (near-)clear conditions the benefit mostly vanishes.
    benefits = [r["ego_platoon_benefit_mps"] for r in records]
    assert benefits[0] > benefits[-1]
    assert benefits[0] > 3.0
    assert all(r["converged"] for r in records)


@pytest.mark.benchmark(group="e7-platooning")
def test_e7_malicious_member_sweep(benchmark):
    """Agreement quality as the number of malicious members grows."""
    malicious_counts = [0, 1, 2]

    def sweep():
        return [run_scenario("fog_platooning", visibility_m=60.0, num_members=6,
                             num_malicious=m)
                for m in malicious_counts]

    records = benchmark(sweep)
    rows = [{"malicious_members": m,
             "converged": r["converged"],
             "rounds": r["rounds"],
             "platoon_speed_mps": r["agreed_speed_mps"],
             "agreement_error_mps": r["agreement_error_mps"]}
            for m, r in zip(malicious_counts, records)]
    print_table("E7: agreement robustness vs number of malicious members", rows)
    assert all(r["converged"] for r in records)
    assert all(r["agreement_error_mps"] <= 0.5 for r in records)
    # Malicious members that broadcast inflated speeds must not raise the
    # agreed speed above the honest-only agreement by any meaningful margin.
    baseline = records[0]["agreed_speed_mps"]
    assert all(r["agreed_speed_mps"] <= baseline + 1.0 for r in records)


@pytest.mark.benchmark(group="e7-platooning")
def test_e7_platoon_size_sweep(benchmark):
    """Consensus effort as the platoon grows."""
    sizes = [2, 4, 6, 8]

    def sweep():
        return [run_scenario("fog_platooning", visibility_m=60.0, num_members=n,
                             num_malicious=0)
                for n in sizes]

    records = benchmark(sweep)
    rows = [{"platoon_size": n, "rounds": r["rounds"],
             "platoon_speed_mps": r["agreed_speed_mps"]}
            for n, r in zip(sizes, records)]
    print_table("E7: consensus effort vs platoon size", rows)
    assert all(r["converged"] for r in records)
