"""E12: vectorized lockstep batch busy-window kernel on the acceptance grid.

The fleet/acceptance workload hands the analysis stack whole grids of
congruent task sets (per-vehicle WCET perturbations of a few shared bases).
This benchmark measures the batch kernel against the scalar
``analyze_many`` path on exactly that workload and enforces the kernel's
two contracts at once:

* **speed** — >= 5x over the scalar engine on the full grid (>= 2x in
  ``REPRO_BENCH_QUICK`` CI smoke, where the grid is too small to amortize
  the lockstep setup);
* **exactness** — byte-identical results (every field, including iteration
  counts and completion traces) versus a cold from-scratch
  :class:`~repro.analysis.cpa.ResponseTimeAnalysis` per lane, and identical
  verdicts versus the scalar engine.

Timings are *interleaved* min-of-N: baseline and batch trials alternate so
a load spike on a busy CI runner degrades both sides instead of flipping
the ratio.
"""

from __future__ import annotations

import time
from typing import List

import pytest

from conftest import print_table, quick_mode, write_bench_record
from repro.analysis.batch import BatchResponseTimeAnalysis, numpy_available
from repro.analysis.cpa import ResponseTimeAnalysis
from repro.analysis.incremental import IncrementalResponseTimeAnalysis
from repro.platform.tasks import Task, TaskSet
from repro.sim.random import SeededRNG


def _taskset(seed: int, n: int, utilization: float) -> TaskSet:
    rng = SeededRNG(seed)
    utilizations = rng.uunifast(n, utilization)
    periods = rng.log_uniform_periods(n, 0.005, 0.5)
    taskset = TaskSet()
    for index, (u, period) in enumerate(zip(utilizations, periods)):
        taskset.add(Task(f"t{index}", period=period, wcet=max(1e-6, u * period)))
    taskset.assign_deadline_monotonic_priorities()
    return taskset


def _rebuild(tasks) -> TaskSet:
    return TaskSet([Task(t.name, period=t.period, wcet=t.wcet, deadline=t.deadline,
                         priority=t.priority, jitter=t.jitter) for t in tasks])


def _acceptance_grid(bases: int, variants: int, n: int,
                     utilization: float) -> List[TaskSet]:
    """``bases`` congruence groups of ``variants`` WCET-perturbed lanes each
    — the per-vehicle spread of a fleet admission wave."""
    grid: List[TaskSet] = []
    for seed in range(bases):
        base = _taskset(seed, n, utilization).tasks()
        rng = SeededRNG(seed + 5_000)
        grid.append(_rebuild(base))
        for _ in range(variants - 1):
            grid.append(_rebuild([t.scaled(rng.uniform(0.85, 1.2))
                                  for t in base]))
    return grid


def _interleaved_best_of(baseline_fn, batch_fn, repeats: int = 3):
    """Alternate baseline/batch trials; min wall time per side plus the last
    results.  Interleaving is what makes the ratio robust: a transient
    stall lands on whichever side is running, not systematically on one."""
    best_baseline = best_batch = float("inf")
    baseline_result = batch_result = None
    for _ in range(repeats):
        started = time.perf_counter()
        baseline_result = baseline_fn()
        best_baseline = min(best_baseline, time.perf_counter() - started)
        started = time.perf_counter()
        batch_result = batch_fn()
        best_batch = min(best_batch, time.perf_counter() - started)
    return best_baseline, best_batch, baseline_result, batch_result


def _verdicts(results):
    return [(r.wcrt, r.schedulable, r.converged, r.busy_window)
            for lane in results for r in lane.values()]


@pytest.mark.benchmark(group="e12-batch-kernel")
def test_e12_batch_kernel_speedup(benchmark):
    quick = quick_mode()
    if quick:
        grid = (_acceptance_grid(1, 80, 10, 0.7)
                + _acceptance_grid(1, 80, 12, 0.7))
        floor = 2.0
    else:
        grid = _acceptance_grid(4, 200, 16, 0.80)
        floor = 5.0

    def baseline_run():
        return IncrementalResponseTimeAnalysis().analyze_many(grid)

    def batch_run():
        return IncrementalResponseTimeAnalysis(batch_kernel=True).analyze_many(grid)

    baseline_s, batch_s, baseline_results, batch_results = \
        _interleaved_best_of(baseline_run, batch_run)
    benchmark(lambda: BatchResponseTimeAnalysis().analyse_many(grid[:20]))

    # Exactness first: the speedup is worthless if a single bit moved.
    # (a) byte-identical to the cold oracle, completions included;
    for lane, taskset in enumerate(grid):
        cold = ResponseTimeAnalysis(taskset).analyse()
        got = batch_results[lane]
        assert set(got) == set(cold), lane
        for name in cold:
            assert got[name] == cold[name], f"lane={lane} task={name}"
            assert got[name].completions == cold[name].completions, \
                f"lane={lane} task={name} completions"
    # (b) verdict-identical to the scalar engine (iteration counts may
    # differ: the scalar path warm-starts within the grid).
    assert _verdicts(batch_results) == _verdicts(baseline_results)

    speedup = baseline_s / batch_s if batch_s > 0 else float("inf")
    rows = [{
        "lanes": len(grid),
        "tasks_per_lane": len(grid[0].tasks()),
        "numpy": numpy_available(),
        "scalar_s": baseline_s,
        "batch_s": batch_s,
        "speedup": speedup,
    }]
    print_table(f"E12: batch kernel vs scalar analyze_many "
                f"(target: >= {floor}x)", rows)
    write_bench_record("e12_batch_kernel", rows[0])
    assert speedup >= floor


@pytest.mark.benchmark(group="e12-batch-kernel")
def test_e12_pure_python_path_parity(benchmark):
    """The pure-Python fallback is slower but just as exact; its timing is
    recorded so the no-numpy deployment cost stays visible."""
    grid = (_acceptance_grid(1, 40, 10, 0.7)
            + _acceptance_grid(1, 40, 12, 0.7))
    pure = BatchResponseTimeAnalysis(use_numpy=False)

    started = time.perf_counter()
    pure_results = pure.analyse_many(grid)
    pure_s = time.perf_counter() - started
    benchmark(lambda: BatchResponseTimeAnalysis(use_numpy=False)
              .analyse_many(grid[:20]))

    for lane, taskset in enumerate(grid):
        cold = ResponseTimeAnalysis(taskset).analyse()
        for name in cold:
            assert pure_results[lane][name] == cold[name], \
                f"lane={lane} task={name}"
            assert pure_results[lane][name].completions == cold[name].completions

    rows = [{"lanes": len(grid), "numpy": False, "pure_python_s": pure_s,
             "groups_solved": pure.groups_solved,
             "lanes_solved": pure.lanes_solved}]
    print_table("E12: pure-Python lockstep path (exactness + cost)", rows)
    write_bench_record("e12_pure_path", rows[0])
    assert pure.lanes_solved == len(grid)
