"""Hypervisor: VM admission, CPU/memory partitioning and device assignment.

The hypervisor is the privileged software component that (a) partitions the
physical platform among VMs, (b) owns the physical functions of virtualized
peripherals, and (c) hands out virtual functions to VMs.  The MCC runs at
this privilege level (Section III: "The PF shall only be accessible to
privileged SW components, e.g. the hypervisor running an MCC").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.can.controller import AcceptanceFilter
from repro.can.virtualization import VirtualFunction, VirtualizedCanController
from repro.platform.resources import Platform, ProcessingResource, ResourceError
from repro.virtualization.vm import VirtualMachine, VmError, VmState


class IsolationViolation(RuntimeError):
    """Raised when an operation would break VM isolation guarantees."""


@dataclass
class DeviceAssignment:
    """Record of a virtual function assigned to a VM."""

    vm: str
    controller: str
    vf_name: str


class Hypervisor:
    """Partitioning hypervisor for one vehicle platform.

    Parameters
    ----------
    platform:
        The physical platform whose resources are partitioned.
    name:
        Identity used when accessing physical functions (privileged owner).
    """

    def __init__(self, platform: Platform, name: str = "hypervisor") -> None:
        self.platform = platform
        self.name = name
        self._vms: Dict[str, VirtualMachine] = {}
        self._vm_processor: Dict[str, str] = {}
        self._controllers: Dict[str, VirtualizedCanController] = {}
        self._assignments: List[DeviceAssignment] = []

    # -- VM management -------------------------------------------------------------------

    def define_vm(self, vm: VirtualMachine, processor: Optional[str] = None) -> VirtualMachine:
        """Admit a VM: reserve CPU share and memory on a processor.

        If ``processor`` is omitted the hypervisor picks the first processor
        with enough spare CPU share (first-fit).
        """
        if vm.name in self._vms:
            raise VmError(f"VM {vm.name!r} already defined")
        candidates = ([self.platform.processor(processor)] if processor
                      else self.platform.processors())
        chosen: Optional[ProcessingResource] = None
        for candidate in candidates:
            used = sum(self._vms[name].cpu_share
                       for name, proc in self._vm_processor.items()
                       if proc == candidate.name)
            if used + vm.cpu_share <= candidate.capacity + 1e-9:
                chosen = candidate
                break
        if chosen is None:
            raise ResourceError(f"no processor has {vm.cpu_share:.2f} CPU share available "
                                f"for VM {vm.name}")
        chosen.allocate_memory(f"vm:{vm.name}", vm.memory_kib)
        self._vms[vm.name] = vm
        self._vm_processor[vm.name] = chosen.name
        return vm

    def destroy_vm(self, vm_name: str) -> None:
        vm = self.vm(vm_name)
        vm.stop()
        processor_name = self._vm_processor.pop(vm_name, None)
        if processor_name is not None:
            self.platform.processor(processor_name).release_memory(f"vm:{vm_name}")
        for assignment in [a for a in self._assignments if a.vm == vm_name]:
            controller = self._controllers[assignment.controller]
            controller.pf.destroy_vf(self.name, assignment.vf_name)
            self._assignments.remove(assignment)
        del self._vms[vm_name]

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self._vms[name]
        except KeyError as exc:
            raise VmError(f"unknown VM {name!r}") from exc

    def vms(self) -> List[VirtualMachine]:
        return list(self._vms.values())

    def processor_of(self, vm_name: str) -> ProcessingResource:
        return self.platform.processor(self._vm_processor[self.vm(vm_name).name])

    def start_all(self) -> None:
        for vm in self._vms.values():
            vm.start()

    # -- device virtualization --------------------------------------------------------------

    def register_controller(self, controller: VirtualizedCanController) -> None:
        """Take ownership of a virtualized CAN controller's physical function."""
        if controller.name in self._controllers:
            raise VmError(f"controller {controller.name!r} already registered")
        if controller.pf.privileged_owner != self.name:
            raise IsolationViolation(
                f"controller {controller.name} PF is owned by "
                f"{controller.pf.privileged_owner!r}, not by this hypervisor")
        self._controllers[controller.name] = controller

    def controller(self, name: str) -> VirtualizedCanController:
        try:
            return self._controllers[name]
        except KeyError as exc:
            raise VmError(f"unknown controller {name!r}") from exc

    def assign_can_vf(self, vm_name: str, controller_name: str,
                      filters: Optional[List[AcceptanceFilter]] = None,
                      tx_queue_depth: int = 16, rx_queue_depth: int = 32) -> VirtualFunction:
        """Create a VF on the controller and attach it to the VM."""
        vm = self.vm(vm_name)
        controller = self.controller(controller_name)
        vf_name = f"{controller_name}.vf.{vm_name}"
        vf = controller.pf.create_vf(self.name, vf_name, vm_name, filters,
                                     tx_queue_depth, rx_queue_depth)
        vm.attach_device(vf_name)
        self._assignments.append(DeviceAssignment(vm=vm_name, controller=controller_name,
                                                  vf_name=vf_name))
        return vf

    def revoke_can_vf(self, vm_name: str, controller_name: str) -> None:
        """Revoke the VM's VF on the controller (containment measure)."""
        assignment = next((a for a in self._assignments
                           if a.vm == vm_name and a.controller == controller_name), None)
        if assignment is None:
            raise VmError(f"VM {vm_name} has no VF on controller {controller_name}")
        controller = self.controller(controller_name)
        controller.pf.destroy_vf(self.name, assignment.vf_name)
        self.vm(vm_name).detach_device(assignment.vf_name)
        self._assignments.remove(assignment)

    def assignments(self) -> List[DeviceAssignment]:
        return list(self._assignments)

    # -- isolation checks --------------------------------------------------------------------------

    def verify_isolation(self) -> List[str]:
        """Return a list of isolation problems (empty when the partitioning is sound).

        Checks that per-processor CPU shares do not exceed capacity and that
        no VF is attached to more than one VM.
        """
        problems: List[str] = []
        for processor in self.platform.processors():
            share = sum(self._vms[name].cpu_share
                        for name, proc in self._vm_processor.items()
                        if proc == processor.name)
            if share > processor.capacity + 1e-9:
                problems.append(
                    f"processor {processor.name} oversubscribed: {share:.2f} > "
                    f"{processor.capacity:.2f}")
        seen_vfs: Dict[str, str] = {}
        for assignment in self._assignments:
            if assignment.vf_name in seen_vfs:
                problems.append(
                    f"VF {assignment.vf_name} assigned to both "
                    f"{seen_vfs[assignment.vf_name]} and {assignment.vm}")
            seen_vfs[assignment.vf_name] = assignment.vm
        return problems

    def guest_accesses_pf(self, vm_name: str, controller_name: str) -> None:
        """Model a guest VM attempting a privileged PF operation.

        Always raises :class:`IsolationViolation`; exists so tests and the
        intrusion scenario can demonstrate that the PF is not reachable from
        guests.
        """
        self.vm(vm_name)
        controller = self.controller(controller_name)
        try:
            controller.pf.set_bitrate(vm_name, 125_000.0)
        except Exception as exc:
            raise IsolationViolation(
                f"VM {vm_name} attempted a privileged operation on {controller_name}") from exc
        raise IsolationViolation(  # pragma: no cover - PF must have rejected the call
            f"VM {vm_name} succeeded in a privileged operation on {controller_name}; "
            "isolation is broken")
