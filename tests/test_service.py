"""The multi-tenant admission service: lifecycle, streaming, tenancy.

Four guarantees under test:

* **Lifecycle** — submit → queued → running → completed, with per-wave
  :class:`WaveProgress` streaming (late subscribers replay the backlog,
  the closing record carries ``final``) and blocking :meth:`wait`.
* **Tenancy identity** — a tenant's service-run campaign result is
  byte-identical to an isolated direct ``Campaign.run()`` of the same
  submission, shared analysis-cache store or not (the digest excludes
  cache counters, which sharing legitimately warms).
* **Operator control** — halt parks at the next wave boundary with a
  resumable checkpoint, resume continues to the uninterrupted-run result,
  rollback restores the pre-campaign fleet; a policy halt surfaces as the
  same HALTED state with the halt-written checkpoint and an optionally
  remediated threshold on resume.
* **Validation** — malformed requests and invalid transitions raise
  :class:`ServiceError` at the API surface, never inside the scheduler.

No pytest-asyncio in the toolchain: each test drives the service through
``asyncio.run`` on a self-contained coroutine.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.analysis.cache import AnalysisCache
from repro.fleet.campaign import Campaign, WavePolicy
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.observability.metrics_bridge import (SERVICE_SOURCE,
                                                service_metric_registry)
from repro.scenarios.fleet_campaign import build_update_contract
from repro.service import (AdmissionService, CampaignStatus, HaltRequest,
                           JobState, ResumeRequest, RollbackRequest,
                           ServiceError, SubmitCampaign, WaveProgress)

from test_parallel_campaign import campaign_digest

SUBMIT = SubmitCampaign(tenant="acme", fleet_size=8, seed=3)


def reference_result(request: SubmitCampaign):
    """Isolated ``Campaign.run()`` of one submission — the tenancy oracle."""
    cache = AnalysisCache(batch_kernel=request.batch_kernel)
    fleet = generate_fleet(
        FleetSpec(size=request.fleet_size, seed=request.seed,
                  heterogeneity=request.heterogeneity,
                  num_variants=request.num_variants,
                  extra_components=request.extra_components),
        analysis_cache=cache)
    contracts = {}

    def factory(vehicle):
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(
                vehicle.wcet_factor, utilization=request.update_utilization,
                component=request.component)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    policy = WavePolicy(canary_size=request.canary_size,
                        wave_fractions=request.wave_fractions,
                        max_failure_rate=request.max_failure_rate,
                        rollback_on_halt=request.rollback_on_halt)
    campaign = Campaign(fleet, factory, policy=policy, analysis_cache=cache,
                        failure_injection_rate=request.failure_injection_rate,
                        feedback_seed=request.seed, workers=request.workers,
                        batch_kernel=request.batch_kernel)
    return campaign.run()


class TestLifecycle:
    def test_submit_stream_wait_complete(self):
        async def drive():
            async with AdmissionService() as service:
                receipt = await service.submit(SUBMIT)
                assert receipt.tenant == "acme"
                assert receipt.state == JobState.QUEUED
                assert receipt.waves_planned >= 2
                progress = [record async for record
                            in service.stream(receipt.job_id)]
                status = await service.wait(receipt.job_id)
                return receipt, progress, status, \
                    service.result(receipt.job_id)

        receipt, progress, status, result = asyncio.run(drive())
        assert status.state == JobState.COMPLETED
        assert status.waves_executed == len(progress) == len(result.waves)
        assert [record.index for record in progress] == \
            [record.index for record in result.waves]
        assert all(isinstance(record, WaveProgress) for record in progress)
        assert [record.final for record in progress] == \
            [False] * (len(progress) - 1) + [True]
        assert not any(record.halted for record in progress)
        assert status.admitted == result.admitted == SUBMIT.fleet_size
        assert status.update_coverage == 1.0

    def test_late_subscriber_replays_backlog(self):
        async def drive():
            async with AdmissionService() as service:
                receipt = await service.submit(SUBMIT)
                await service.wait(receipt.job_id)  # job fully done first
                return [record async for record
                        in service.stream(receipt.job_id)]

        progress = asyncio.run(drive())
        assert progress and progress[-1].final

    def test_round_robin_interleaves_tenants(self):
        async def drive():
            async with AdmissionService(slots=1) as service:
                first = await service.submit(
                    SubmitCampaign(tenant="acme", fleet_size=8, seed=1))
                second = await service.submit(
                    SubmitCampaign(tenant="zephyr", fleet_size=8, seed=2))
                for receipt in (first, second):
                    status = await service.wait(receipt.job_id)
                    assert status.state == JobState.COMPLETED
                order = []
                for job_id in (first.job_id, second.job_id):
                    async for record in service.stream(job_id):
                        order.append((record.tenant, record.index))
                return order

        order = asyncio.run(drive())
        assert {tenant for tenant, _ in order} == {"acme", "zephyr"}

    def test_stop_parks_running_jobs_resumably(self):
        # Many shallow waves: stop() lands mid-campaign with certainty
        # (the event loop can only squeeze a couple of extra waves in
        # between our wake-up and the stop flags).
        request = SubmitCampaign(
            tenant="acme", fleet_size=24, seed=3,
            wave_fractions=(0.1, 0.2, 0.3, 0.4, 0.55, 0.7, 0.85, 1.0))

        async def drive():
            service = AdmissionService()
            await service.start()
            receipt = await service.submit(request)
            # Let the scheduler provision and execute at least one wave.
            async for _ in service.stream(receipt.job_id):
                break
            await service.stop()
            parked = service.status(receipt.job_id)
            assert parked.state == JobState.HALTED
            assert 0 < parked.waves_executed < receipt.waves_planned
            await service.start()
            await service.resume(ResumeRequest(job_id=receipt.job_id))
            final = await service.wait(receipt.job_id)
            await service.stop()
            return final, service.result(receipt.job_id)

        final, result = asyncio.run(drive())
        assert final.state == JobState.COMPLETED
        assert campaign_digest(result) == \
            campaign_digest(reference_result(request))


class TestTenancyIdentity:
    def test_shared_store_results_match_isolated_runs(self, tmp_path):
        requests = [SubmitCampaign(tenant="acme", fleet_size=8, seed=3),
                    SubmitCampaign(tenant="acme", fleet_size=8, seed=4),
                    SubmitCampaign(tenant="zephyr", fleet_size=8, seed=3)]

        async def drive():
            async with AdmissionService(store_dir=str(tmp_path)) as service:
                receipts = [await service.submit(request)
                            for request in requests]
                for receipt in receipts:
                    await service.wait(receipt.job_id)
                return [service.result(receipt.job_id)
                        for receipt in receipts]

        results = asyncio.run(drive())
        for request, result in zip(requests, results):
            assert campaign_digest(result) == \
                campaign_digest(reference_result(request))

    def test_progress_folds_into_metric_registry(self):
        async def drive():
            async with AdmissionService() as service:
                receipt = await service.submit(SUBMIT)
                await service.wait(receipt.job_id)
                return receipt.job_id, \
                    [record async for record in service.stream(receipt.job_id)]

        job_id, progress = asyncio.run(drive())
        registry = service_metric_registry(progress)
        fleet_series = registry.get(SERVICE_SOURCE, "admitted")
        job_series = registry.get(f"service.job/{job_id}", "admitted")
        assert fleet_series is not None and job_series is not None
        assert len(fleet_series) == len(job_series) == len(progress)
        assert sum(job_series.values()) == SUBMIT.fleet_size


class TestOperatorControl:
    def test_halt_resume_reaches_uninterrupted_result(self):
        async def drive():
            async with AdmissionService() as service:
                receipt = await service.submit(SUBMIT)
                halted = await service.halt(HaltRequest(job_id=receipt.job_id,
                                                        reason="maintenance"))
                if halted.state == JobState.HALTED:
                    resumed = await service.resume(
                        ResumeRequest(job_id=receipt.job_id))
                    assert resumed.state == JobState.QUEUED
                final = await service.wait(receipt.job_id)
                return halted, final, service.result(receipt.job_id)

        halted, final, result = asyncio.run(drive())
        assert halted.state in (JobState.HALTED, JobState.COMPLETED)
        assert final.state == JobState.COMPLETED
        assert campaign_digest(result) == \
            campaign_digest(reference_result(SUBMIT))

    def test_policy_halt_surfaces_and_remediates(self):
        request = SubmitCampaign(tenant="acme", fleet_size=8, seed=3,
                                 failure_injection_rate=1.0,
                                 max_failure_rate=0.0)

        async def drive():
            async with AdmissionService() as service:
                receipt = await service.submit(request)
                halted = await service.wait(receipt.job_id)
                assert halted.state == JobState.HALTED
                assert halted.halted_wave == 0
                progress = [record async for record
                            in service.stream(receipt.job_id)]
                assert progress[-1].halted and progress[-1].final
                await service.resume(ResumeRequest(job_id=receipt.job_id,
                                                   max_failure_rate=1.0))
                final = await service.wait(receipt.job_id)
                return final

        final = asyncio.run(drive())
        assert final.state == JobState.COMPLETED
        assert final.update_coverage == 1.0

    def test_rollback_restores_the_fleet_and_retires_the_job(self):
        request = SubmitCampaign(tenant="acme", fleet_size=8, seed=3,
                                 failure_injection_rate=1.0,
                                 max_failure_rate=0.0)

        async def drive():
            async with AdmissionService() as service:
                receipt = await service.submit(request)
                await service.wait(receipt.job_id)
                rolled = await service.rollback(
                    RollbackRequest(job_id=receipt.job_id))
                assert rolled.state == JobState.ROLLED_BACK
                job = service._jobs[receipt.job_id]
                assert all(not vehicle.updated and not vehicle.rolled_back
                           for vehicle in job.fleet)
                with pytest.raises(ServiceError, match="only halted"):
                    await service.resume(ResumeRequest(job_id=receipt.job_id))
                return rolled

        rolled = asyncio.run(drive())
        assert rolled.state == JobState.ROLLED_BACK


class TestValidation:
    def test_submit_schema_validates_at_construction(self):
        with pytest.raises(ServiceError, match="tenant"):
            SubmitCampaign(tenant="")
        with pytest.raises(ServiceError, match="fleet_size"):
            SubmitCampaign(tenant="acme", fleet_size=0)
        with pytest.raises(ServiceError, match="workers"):
            SubmitCampaign(tenant="acme", workers=0)
        with pytest.raises(ServiceError, match="staging policy"):
            SubmitCampaign(tenant="acme", wave_fractions=(0.5, 0.1))
        with pytest.raises(ServiceError, match="job_id"):
            HaltRequest(job_id="")
        with pytest.raises(ServiceError, match="max_failure_rate"):
            ResumeRequest(job_id="acme/1", max_failure_rate=2.0)

    def test_unknown_job_and_invalid_transitions(self):
        async def drive():
            async with AdmissionService() as service:
                with pytest.raises(ServiceError, match="unknown job"):
                    service.status("ghost/1")
                receipt = await service.submit(SUBMIT)
                with pytest.raises(ServiceError, match="only halted"):
                    await service.resume(ResumeRequest(job_id=receipt.job_id))
                with pytest.raises(ServiceError,
                                   match="no finalized result"):
                    service.result(receipt.job_id)
                await service.wait(receipt.job_id)

        asyncio.run(drive())

    def test_slots_must_be_positive(self):
        with pytest.raises(ServiceError, match="slots"):
            AdmissionService(slots=0)

    def test_status_is_immutable_snapshot(self):
        async def drive():
            async with AdmissionService() as service:
                receipt = await service.submit(SUBMIT)
                status = await service.wait(receipt.job_id)
                return status

        status = asyncio.run(drive())
        assert isinstance(status, CampaignStatus)
        with pytest.raises(AttributeError):
            status.admitted = 0


class TestServeCli:
    def test_serve_command_reports_throughput(self, capsys):
        from repro.experiments.cli import main
        code = main(["serve", "--tenants", "2", "--campaigns", "1",
                     "--fleet-size", "8", "--no-store"])
        out = capsys.readouterr().out
        assert code == 0
        assert "admissions/s" in out
        assert out.count("completed") == 2
