"""Security threat modelling for vehicular systems.

Section II.A cites building "a security threat model for vehicular systems"
as one of the viewpoint-specific analyses inside the MCC, and Section V uses
a security leak in the rear-braking component as the running cross-layer
example.  This module provides a lightweight threat model: components carry
security requirements (level, external exposure); communication edges come
from the service sessions; the analysis computes attack paths from external
interfaces to critical assets and flags contracts whose protection level is
insufficient for their exposure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.contracts.model import Contract, SecurityLevel


@dataclass
class AttackPath:
    """A path from an externally reachable entry point to a target asset."""

    entry_point: str
    target: str
    path: List[str]
    exposure: float

    @property
    def hops(self) -> int:
        return len(self.path) - 1


@dataclass
class ThreatAssessment:
    """Result of a threat analysis run."""

    attack_paths: List[AttackPath] = field(default_factory=list)
    under_protected: List[str] = field(default_factory=list)
    unreachable_assets: List[str] = field(default_factory=list)

    @property
    def acceptable(self) -> bool:
        """The MCC acceptance criterion for the security viewpoint: no
        under-protected component sits on an attack path."""
        exposed = {p.target for p in self.attack_paths} | {
            node for p in self.attack_paths for node in p.path}
        return not any(component in exposed for component in self.under_protected)

    def paths_to(self, target: str) -> List[AttackPath]:
        return [p for p in self.attack_paths if p.target == target]


class ThreatModel:
    """Communication-graph-based threat model.

    Nodes are components; a directed edge ``a -> b`` means that ``a`` can send
    data to ``b`` (i.e. an attacker controlling ``a`` can try to exploit
    ``b``).  Edges are derived from service sessions: a client can attack its
    provider through request payloads and a provider can attack its clients
    through responses, so sessions add edges in both directions with different
    weights.
    """

    #: Per-hop exposure attenuation: each additional hop makes exploitation harder.
    HOP_ATTENUATION = 0.6

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._contracts: Dict[str, Contract] = {}

    # -- construction --------------------------------------------------------------

    def add_component(self, contract: Contract) -> None:
        self._contracts[contract.component] = contract
        security = contract.security
        external = bool(security.external_interface) if security else False
        level = security.level if security else SecurityLevel.NONE
        self._graph.add_node(contract.component, external=external, level=level)

    def add_components(self, contracts: Iterable[Contract]) -> None:
        for contract in contracts:
            self.add_component(contract)

    def add_channel(self, source: str, destination: str, weight: float = 1.0) -> None:
        """Add a raw communication channel (e.g. a shared CAN bus segment)."""
        for node in (source, destination):
            if node not in self._graph:
                raise KeyError(f"unknown component {node!r}")
        self._graph.add_edge(source, destination, weight=weight)

    def add_session(self, client: str, provider: str) -> None:
        """Register a service session; adds attack edges in both directions."""
        self.add_channel(client, provider, weight=1.0)
        self.add_channel(provider, client, weight=0.8)

    # -- queries ---------------------------------------------------------------------

    def entry_points(self) -> List[str]:
        """Components with an external interface (telematics, OBD, V2X...)."""
        return sorted(n for n, data in self._graph.nodes(data=True) if data.get("external"))

    def components(self) -> List[str]:
        return list(self._graph.nodes)

    def required_level_for_exposure(self, hops_from_entry: int) -> SecurityLevel:
        """Protection level required as a function of distance to the attack
        surface: directly exposed components need HIGH, one hop away MEDIUM,
        two hops LOW, further away NONE."""
        if hops_from_entry <= 0:
            return SecurityLevel.HIGH
        if hops_from_entry == 1:
            return SecurityLevel.MEDIUM
        if hops_from_entry == 2:
            return SecurityLevel.LOW
        return SecurityLevel.NONE

    def analyse(self, critical_assets: Optional[Iterable[str]] = None) -> ThreatAssessment:
        """Compute attack paths and protection findings.

        ``critical_assets`` defaults to every component with a safety
        requirement of ASIL B or above.
        """
        if critical_assets is None:
            critical_assets = [name for name, contract in self._contracts.items()
                               if contract.safety is not None and contract.safety.asil >= 2]
        critical = [asset for asset in critical_assets if asset in self._graph]

        assessment = ThreatAssessment()
        entry_points = self.entry_points()

        for asset in sorted(critical):
            reachable = False
            for entry in entry_points:
                if entry == asset:
                    reachable = True
                    assessment.attack_paths.append(AttackPath(entry, asset, [asset], 1.0))
                    continue
                try:
                    path = nx.shortest_path(self._graph, entry, asset)
                except nx.NetworkXNoPath:
                    continue
                reachable = True
                exposure = self.HOP_ATTENUATION ** (len(path) - 1)
                assessment.attack_paths.append(AttackPath(entry, asset, list(path), exposure))
            if not reachable:
                assessment.unreachable_assets.append(asset)

        # Protection-level findings: every component's declared level must
        # match its distance from the nearest entry point.
        distances = self._distances_from_entries(entry_points)
        for name, contract in sorted(self._contracts.items()):
            hops = distances.get(name)
            if hops is None:
                continue  # not reachable from any entry point
            required = self.required_level_for_exposure(hops)
            declared = contract.security.level if contract.security else SecurityLevel.NONE
            if declared < required:
                assessment.under_protected.append(name)
        assessment.attack_paths.sort(key=lambda p: (-p.exposure, p.hops, p.target, p.entry_point))
        return assessment

    def _distances_from_entries(self, entry_points: List[str]) -> Dict[str, int]:
        distances: Dict[str, int] = {}
        for entry in entry_points:
            lengths = nx.single_source_shortest_path_length(self._graph, entry)
            for node, length in lengths.items():
                if node not in distances or length < distances[node]:
                    distances[node] = length
        return distances

    def blast_radius(self, compromised: str) -> Set[str]:
        """Components an attacker can reach after compromising ``compromised``
        (used by the intrusion-response layer to size the containment)."""
        if compromised not in self._graph:
            raise KeyError(f"unknown component {compromised!r}")
        return set(nx.descendants(self._graph, compromised))

    def containment_candidates(self, compromised: str) -> List[Tuple[str, int]]:
        """Rank the sessions/channels to cut, by how much of the blast radius
        each outgoing edge removal eliminates.  Returns (neighbour, saved)."""
        if compromised not in self._graph:
            raise KeyError(f"unknown component {compromised!r}")
        baseline = self.blast_radius(compromised)
        candidates: List[Tuple[str, int]] = []
        for neighbour in list(self._graph.successors(compromised)):
            pruned = self._graph.copy()
            pruned.remove_edge(compromised, neighbour)
            remaining = set(nx.descendants(pruned, compromised))
            candidates.append((neighbour, len(baseline) - len(remaining)))
        return sorted(candidates, key=lambda item: (-item[1], item[0]))
