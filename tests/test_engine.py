"""The re-entrant campaign engine: stepped/run parity, boundary checkpoints.

The refactor's contract is byte-parity by construction:
``Campaign.run()`` is nothing but a loop over
:meth:`~repro.fleet.engine.CampaignEngine.step`, so a stepped execution,
a run-to-completion execution and a resumed-mid-campaign execution of the
same submission must produce identical results — across worker counts,
with and without an adversity model, with and without a deterministic
tracer.  The hypothesis differentials here pin exactly that.

The satellite guarantees ride along:

* ``run()`` is one-shot — the second call raises ``CampaignError``
  instead of silently reusing per-run state;
* :meth:`CampaignEngine.checkpoint` serializes *any* wave boundary (not
  only where the halt policy tripped) and a resume from boundary ``k``
  reproduces the uninterrupted run byte-for-byte, including from a fresh
  process;
* ``CampaignCheckpoint.load`` unpickles through a restricted allowlist —
  a malicious reduce payload raises ``CampaignError`` without executing.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.cache import AnalysisCache
from repro.fleet.adversity import LossyDeliveryAdversity
from repro.fleet.campaign import (Campaign, CampaignCheckpoint, CampaignError,
                                  WavePolicy)
from repro.fleet.engine import CampaignEngine, CampaignState
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.observability.tracer import CampaignTracer

from test_parallel_campaign import campaign_digest, fleet_digest, make_factory


def build_campaign(size, seed, workers=1, *, policy=None, adversity=None,
                   tracer=None, failure_rate=0.0, num_variants=3):
    spec = FleetSpec(size=size, seed=seed, num_variants=num_variants,
                     extra_components=2)
    cache = AnalysisCache()
    fleet = generate_fleet(spec, analysis_cache=cache)
    campaign = Campaign(fleet, make_factory(), policy=policy,
                        analysis_cache=cache, workers=workers,
                        failure_injection_rate=failure_rate,
                        feedback_seed=seed, adversity=adversity,
                        tracer=tracer)
    return fleet, campaign


def step_to_completion(campaign, resume_from=None):
    """Drive an engine by hand, asserting the per-step invariants."""
    engine = CampaignEngine(campaign, resume_from=resume_from)
    records = []
    while not engine.done:
        records.append(engine.step())
    result = engine.finalize()
    assert [record.index for record in records] == \
        [record.index for record in result.waves[len(result.waves)
                                                 - len(records):]]
    return engine, result


class TestSteppedRunParity:
    """step()-driven and run()-driven executions are byte-identical."""

    @given(size=st.integers(min_value=6, max_value=14),
           seed=st.integers(min_value=0, max_value=2**20),
           workers=st.sampled_from([1, 2]),
           trace=st.booleans())
    @settings(max_examples=5, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stepped_matches_run(self, size, seed, workers, trace):
        run_tracer = CampaignTracer(deterministic=True) if trace else None
        fleet_run, campaign_run = build_campaign(size, seed, workers,
                                                 tracer=run_tracer)
        reference = campaign_run.run()

        step_tracer = CampaignTracer(deterministic=True) if trace else None
        fleet_step, campaign_step = build_campaign(size, seed, workers,
                                                   tracer=step_tracer)
        _, stepped = step_to_completion(campaign_step)

        assert campaign_digest(stepped) == campaign_digest(reference)
        assert fleet_digest(fleet_step) == fleet_digest(fleet_run)
        if trace and workers == 1:
            # Deterministic traces are a pure function of the computation:
            # the stepped engine must neither add nor reorder events.
            # (Pooled layouts fan shard events in completion order, which
            # is nondeterministic even between two run() calls.)
            assert step_tracer.events == run_tracer.events

    @given(seed=st.integers(min_value=0, max_value=2**20),
           drop_rate=st.floats(min_value=0.1, max_value=0.5))
    @settings(max_examples=4, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_stepped_matches_run_under_adversity(self, seed, drop_rate):
        fleet_run, campaign_run = build_campaign(
            10, seed, adversity=LossyDeliveryAdversity(drop_rate, seed=seed))
        reference = campaign_run.run()
        fleet_step, campaign_step = build_campaign(
            10, seed, adversity=LossyDeliveryAdversity(drop_rate, seed=seed))
        _, stepped = step_to_completion(campaign_step)
        assert campaign_digest(stepped) == campaign_digest(reference)
        assert fleet_digest(fleet_step) == fleet_digest(fleet_run)

    def test_step_past_done_raises(self):
        _, campaign = build_campaign(6, seed=3)
        engine = CampaignEngine(campaign)
        while not engine.done:
            engine.step()
        with pytest.raises(CampaignError, match="no next wave"):
            engine.step()
        engine.finalize()

    def test_finalize_is_one_shot(self):
        _, campaign = build_campaign(6, seed=3)
        engine, _ = step_to_completion(campaign)
        with pytest.raises(CampaignError, match="already finalized"):
            engine.finalize()
        with pytest.raises(CampaignError, match="already finalized"):
            engine.step()

    def test_cost_model_is_shared_with_campaign(self):
        # The pooled path is the one that measures integration costs.
        _, campaign = build_campaign(10, seed=5, workers=2)
        engine = CampaignEngine(campaign)
        assert engine.state.cost_model is campaign._cost_model
        while not engine.done:
            engine.step()
        engine.finalize()
        assert campaign._cost_model  # measured costs persisted on campaign


class TestDoubleRunGuard:
    """run() is one-shot: per-run state must never silently leak."""

    def test_second_run_raises(self):
        _, campaign = build_campaign(6, seed=9)
        campaign.run()
        with pytest.raises(CampaignError, match="one-shot"):
            campaign.run()

    def test_failed_run_still_consumes_the_instance(self):
        _, campaign = build_campaign(6, seed=9)
        campaign.update_factory = None  # force the first wave to blow up
        with pytest.raises(TypeError):
            campaign.run()
        with pytest.raises(CampaignError, match="one-shot"):
            campaign.run()


class TestBoundaryCheckpoint:
    """checkpoint() at any wave boundary resumes byte-identically."""

    @given(seed=st.integers(min_value=0, max_value=2**20))
    @settings(max_examples=3, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_resume_from_every_boundary(self, seed, tmp_path_factory):
        fleet_ref, campaign_ref = build_campaign(10, seed)
        reference = campaign_ref.run()
        reference_fleet = fleet_digest(fleet_ref)
        waves = len(reference.waves)
        assert waves >= 2
        directory = tmp_path_factory.mktemp("boundaries")
        for boundary in range(waves + 1):
            _, campaign = build_campaign(10, seed)
            engine = CampaignEngine(campaign)
            for _ in range(boundary):
                engine.step()
            path = str(directory / f"wave{boundary}_{seed}.ckpt")
            checkpoint = engine.checkpoint(path)
            assert checkpoint.next_wave == boundary
            assert len(checkpoint.result.waves) == boundary
            engine.finalize()

            loaded = CampaignCheckpoint.load(path)
            fleet_resumed, campaign_resumed = build_campaign(10, seed)
            resumed = campaign_resumed.run(resume_from=loaded)
            assert campaign_digest(resumed) == campaign_digest(reference)
            assert fleet_digest(fleet_resumed) == reference_fleet

    def test_resume_in_fresh_process(self, tmp_path):
        """A boundary checkpoint survives a real process boundary."""
        seed, size = 13, 8
        fleet_ref, campaign_ref = build_campaign(size, seed)
        reference = campaign_ref.run()

        _, campaign = build_campaign(size, seed)
        engine = CampaignEngine(campaign)
        engine.step()
        path = str(tmp_path / "boundary.ckpt")
        engine.checkpoint(path)
        engine.finalize()

        script = f"""
import pickle, sys
from repro.analysis.cache import AnalysisCache
from repro.fleet.campaign import Campaign, CampaignCheckpoint
from repro.fleet.vehicle import FleetSpec, generate_fleet
sys.path.insert(0, {os.path.dirname(__file__)!r})
from test_parallel_campaign import campaign_digest, make_factory

cache = AnalysisCache()
fleet = generate_fleet(FleetSpec(size={size}, seed={seed}, num_variants=3,
                                 extra_components=2), analysis_cache=cache)
campaign = Campaign(fleet, make_factory(), analysis_cache=cache,
                    feedback_seed={seed})
resumed = campaign.run(resume_from=CampaignCheckpoint.load({path!r}))
sys.stdout.write(repr(campaign_digest(resumed)))
"""
        environment = dict(os.environ)
        environment["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(os.path.dirname(os.path.dirname(__file__)), "src"),
             environment.get("PYTHONPATH", "")]).rstrip(os.pathsep)
        completed = subprocess.run([sys.executable, "-c", script],
                                   capture_output=True, text=True,
                                   env=environment, check=True)
        assert completed.stdout == repr(campaign_digest(reference))

    def test_checkpoint_carries_the_cost_model(self, tmp_path):
        # workers=2: the pooled admission path feeds the EWMA cost model.
        _, campaign = build_campaign(10, seed=21, workers=2)
        engine = CampaignEngine(campaign)
        engine.step()
        engine.step()
        assert engine.state.cost_model
        checkpoint = engine.checkpoint()
        assert checkpoint.cost_model == campaign._cost_model
        assert checkpoint.cost_model is not campaign._cost_model
        engine.finalize()

        _, campaign_resumed = build_campaign(10, seed=21, workers=2)
        resumed_engine = CampaignEngine(campaign_resumed,
                                        resume_from=checkpoint)
        assert resumed_engine.state.cost_model == checkpoint.cost_model
        while not resumed_engine.done:
            resumed_engine.step()
        resumed_engine.finalize()

    def test_checkpoint_emits_trace_event_only_when_saved(self, tmp_path):
        tracer = CampaignTracer(deterministic=True)
        _, campaign = build_campaign(8, seed=2, tracer=tracer)
        engine = CampaignEngine(campaign)
        engine.step()
        engine.checkpoint()  # in-memory: no event
        assert not [event for event in tracer.events
                    if event["event"] == "checkpoint.save"]
        engine.checkpoint(str(tmp_path / "boundary.ckpt"))
        saves = [event for event in tracer.events
                 if event["event"] == "checkpoint.save"]
        assert len(saves) == 1 and saves[0]["wave"] == 1
        while not engine.done:
            engine.step()
        engine.finalize()

    def test_checkpoint_requires_no_adversity(self):
        _, campaign = build_campaign(
            8, seed=4, adversity=LossyDeliveryAdversity(0.3, seed=4))
        engine = CampaignEngine(campaign)
        engine.step()
        with pytest.raises(CampaignError, match="adversity"):
            engine.checkpoint()
        while not engine.done:
            engine.step()
        engine.finalize()

    def test_checkpoint_after_halt_points_at_last_checkpoint(self):
        policy = WavePolicy(canary_size=2, wave_fractions=(0.5, 1.0),
                            max_failure_rate=0.0)
        _, campaign = build_campaign(8, seed=6, policy=policy,
                                     failure_rate=1.0)
        engine = CampaignEngine(campaign)
        record = engine.step()
        assert engine.done and engine.state.result.halted
        assert record.index == 0
        with pytest.raises(CampaignError, match="last_checkpoint"):
            engine.checkpoint()
        assert campaign.last_checkpoint is not None
        engine.finalize()


class _EvilPayload:
    """Pickles to a reduce payload that would execute on a naive load."""

    def __init__(self, marker: str) -> None:
        self.marker = marker

    def __reduce__(self):
        return (os.system, (f"touch {self.marker}",))


class TestRestrictedUnpickler:
    """CampaignCheckpoint.load never executes foreign pickle payloads."""

    def test_reduce_payload_is_rejected_not_executed(self, tmp_path):
        marker = str(tmp_path / "owned")
        malicious = str(tmp_path / "malicious.ckpt")
        with open(malicious, "wb") as handle:
            pickle.dump(_EvilPayload(marker), handle)
        with pytest.raises(CampaignError,
                           match="not a loadable campaign checkpoint"):
            CampaignCheckpoint.load(malicious)
        assert not os.path.exists(marker)  # the payload never ran

    def test_foreign_class_is_rejected(self, tmp_path):
        import pathlib
        foreign = str(tmp_path / "foreign.ckpt")
        with open(foreign, "wb") as handle:
            pickle.dump(pathlib.PurePosixPath("x"), handle)
        with pytest.raises(CampaignError,
                           match="not a loadable campaign checkpoint"):
            CampaignCheckpoint.load(foreign)

    def test_missing_file_raises_file_not_found(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            CampaignCheckpoint.load(str(tmp_path / "absent.ckpt"))

    def test_real_checkpoint_round_trips(self, tmp_path):
        _, campaign = build_campaign(8, seed=17)
        engine = CampaignEngine(campaign)
        engine.step()
        path = str(tmp_path / "real.ckpt")
        original = engine.checkpoint(path)
        engine.finalize()
        loaded = CampaignCheckpoint.load(path)
        assert isinstance(loaded, CampaignCheckpoint)
        assert loaded.next_wave == original.next_wave
        assert campaign_digest(loaded.result) == \
            campaign_digest(original.result)


class TestCampaignState:
    def test_default_state_is_inert(self):
        state = CampaignState()
        assert state.wave_index == 0 and state.start_wave == 0
        assert state.carry == [] and state.cost_model == {}
        assert state.result.fleet_size == 0
