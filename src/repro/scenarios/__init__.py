"""The paper's worked cross-layer scenarios as reusable drivers.

Each scenario is a function that builds the required subsystems, injects the
disturbance the paper describes, runs the closed loop and returns a result
object with the metrics the benchmarks (E1, E5–E8) and examples report.
"""

from repro.scenarios.intrusion import IntrusionScenarioResult, run_intrusion_scenario
from repro.scenarios.thermal import ThermalScenarioResult, ThermalStrategy, run_thermal_scenario
from repro.scenarios.platooning_fog import FogPlatooningResult, run_fog_platooning_scenario
from repro.scenarios.weather_routing import WeatherRoutingResult, run_weather_routing_scenario
from repro.scenarios.infield_update import InFieldUpdateResult, run_infield_update_scenario
from repro.scenarios.fleet_campaign import FleetCampaignResult, run_fleet_campaign_scenario
from repro.scenarios.distributed_e2e import DistributedE2EResult, run_distributed_e2e_scenario
from repro.scenarios.adversity_campaigns import (
    IntrusionCampaignResult,
    LossyOtaCampaignResult,
    ThermalCampaignResult,
    run_intrusion_campaign_scenario,
    run_lossy_ota_campaign_scenario,
    run_thermal_campaign_scenario,
)

__all__ = [
    "IntrusionScenarioResult",
    "run_intrusion_scenario",
    "ThermalScenarioResult",
    "ThermalStrategy",
    "run_thermal_scenario",
    "FogPlatooningResult",
    "run_fog_platooning_scenario",
    "WeatherRoutingResult",
    "run_weather_routing_scenario",
    "InFieldUpdateResult",
    "run_infield_update_scenario",
    "FleetCampaignResult",
    "run_fleet_campaign_scenario",
    "DistributedE2EResult",
    "run_distributed_e2e_scenario",
    "IntrusionCampaignResult",
    "LossyOtaCampaignResult",
    "ThermalCampaignResult",
    "run_intrusion_campaign_scenario",
    "run_lossy_ota_campaign_scenario",
    "run_thermal_campaign_scenario",
]
