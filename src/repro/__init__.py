"""repro — cross-layer self-awareness for autonomous automotive systems.

A reproduction of Schlatow, Möstl, Ernst, Nolte, Jatzkowski, Maurer, Herber
and Herkersdorf, *Self-awareness in autonomous automotive systems* (DATE
2017), built as a pure-Python simulation library.

The package is organized by system layer (see DESIGN.md):

* ``repro.sim`` — discrete-event simulation kernel
* ``repro.contracts`` — contracting language and viewpoints
* ``repro.platform`` — execution domain (components, tasks, scheduler, RTE, thermal)
* ``repro.analysis`` — model-domain analyses (WCRT, dependencies, threats, safety)
* ``repro.mcc`` — Multi-Change Controller (in-field integration)
* ``repro.monitoring`` — run-time monitors, deviation detection, enforcement
* ``repro.virtualization`` / ``repro.can`` — hypervisor and virtualized CAN controller
* ``repro.skills`` — skill/ability graphs and graceful degradation
* ``repro.vehicle`` — driving-function substrate (dynamics, sensors, ACC)
* ``repro.security`` — intrusion detection, access control, attacks
* ``repro.platooning`` / ``repro.routing`` — cooperation and weather-aware planning
* ``repro.core`` — the cross-layer self-awareness coordinator and the
  integrated :class:`~repro.core.vehicle_system.SelfAwareVehicle`
* ``repro.scenarios`` — the paper's worked scenarios as reusable drivers
* ``repro.experiments`` — experiment orchestration: scenario registry,
  declarative parameter sweeps, serial/parallel runner, CPA memoization and
  the ``python -m repro.experiments`` CLI
"""

from repro.core import (
    ArbitrationPolicy,
    CrossLayerCoordinator,
    Countermeasure,
    CountermeasureCatalog,
    Layer,
    SelfAwareVehicle,
    SelfAwarenessLoop,
    SelfModel,
    VehicleSystemConfig,
)
from repro.monitoring import Anomaly, AnomalySeverity, AnomalyType
from repro.skills import (
    AbilityGraph,
    AbilityLevel,
    SkillGraph,
    build_acc_ability_graph,
    build_acc_skill_graph,
)

__version__ = "0.1.0"

__all__ = [
    "ArbitrationPolicy",
    "CrossLayerCoordinator",
    "Countermeasure",
    "CountermeasureCatalog",
    "Layer",
    "SelfAwareVehicle",
    "SelfAwarenessLoop",
    "SelfModel",
    "VehicleSystemConfig",
    "Anomaly",
    "AnomalySeverity",
    "AnomalyType",
    "AbilityGraph",
    "AbilityLevel",
    "SkillGraph",
    "build_acc_ability_graph",
    "build_acc_skill_graph",
    "__version__",
]
