"""Differential oracle for the MCC's accept/reject logic.

The cache + incremental-engine admission stack must be *verdict-invisible*:
for any chain of change requests, an MCC running the default battery (shared
:class:`AnalysisCache`, incremental engine, warm history) must produce
exactly the verdicts of a reference MCC whose timing viewpoint re-derives
every busy window from scratch with a cold
:class:`~repro.analysis.cpa.ResponseTimeAnalysis`.

The harness drives both controllers through randomized chains of
add/update/remove requests over UUniFast-derived component sets — well over
200 randomized cases — and fails on the first diverging verdict, viewpoint
result or failed-viewpoint list.
"""

from __future__ import annotations

import pytest

from harness import (ColdTimingAcceptanceTest, build_platform, clone_request,
                     make_contract, random_chain)
from repro.analysis.cache import AnalysisCache
from repro.mcc.acceptance import (ResourceAcceptanceTest, SafetyAcceptanceTest,
                                  SecurityAcceptanceTest)
from repro.mcc.controller import MultiChangeController
from repro.sim.random import SeededRNG


def assert_chain_equivalent(seed: int, pool_size: int, length: int,
                            num_processors: int) -> int:
    """Drive both MCCs through one chain; return the number of compared
    verdicts."""
    rng = SeededRNG(seed)
    chain = random_chain(rng, pool_size, length)
    fast = MultiChangeController(build_platform(num_processors),
                                 analysis_cache=AnalysisCache())
    reference = MultiChangeController(
        build_platform(num_processors),
        acceptance_tests=[ColdTimingAcceptanceTest(), SafetyAcceptanceTest(),
                          SecurityAcceptanceTest(), ResourceAcceptanceTest()])
    for step, request in enumerate(chain):
        fast_report = fast.request_change(clone_request(request))
        ref_report = reference.request_change(clone_request(request))
        context = f"seed={seed} step={step} {request.kind.value} {request.component}"
        assert fast_report.accepted == ref_report.accepted, context
        assert fast_report.acceptance_results == ref_report.acceptance_results, context
        assert fast_report.failed_viewpoints() == ref_report.failed_viewpoints(), context
    assert fast.version == reference.version
    assert sorted(fast.model.components()) == sorted(reference.model.components())
    return len(chain)


class TestMccDifferential:
    """Cache + incremental admission == cold reference admission."""

    @pytest.mark.parametrize("num_processors", [1, 2, 3])
    def test_randomized_chains(self, num_processors):
        compared = 0
        for seed in range(5):
            compared += assert_chain_equivalent(
                seed=seed * 10 + num_processors, pool_size=8, length=15,
                num_processors=num_processors)
        assert compared == 5 * 15

    def test_long_high_churn_chains(self):
        """Longer chains with a bigger pool: more interleaved adds/removes,
        deeper engine history."""
        compared = 0
        for seed in range(4):
            compared += assert_chain_equivalent(
                seed=1_000 + seed, pool_size=12, length=20, num_processors=2)
        assert compared == 4 * 20

    def test_total_case_count_clears_200(self):
        """The harness as a whole compares >= 200 randomized verdicts (this
        mirrors the two tests above; kept explicit so shrinking either one
        trips the floor)."""
        total = 3 * 5 * 15 + 4 * 20
        assert total >= 200

    def test_shared_cache_across_chains_stays_equivalent(self):
        """One cache reused across several campaigns (the fleet pattern) must
        not leak verdicts between chains."""
        cache = AnalysisCache()
        for seed in (5, 6):
            rng = SeededRNG(seed)
            chain = random_chain(rng, pool_size=6, length=12)
            fast = MultiChangeController(build_platform(2), analysis_cache=cache)
            reference = MultiChangeController(
                build_platform(2),
                acceptance_tests=[ColdTimingAcceptanceTest(),
                                  SafetyAcceptanceTest(),
                                  SecurityAcceptanceTest(),
                                  ResourceAcceptanceTest()])
            for request in chain:
                fast_report = fast.request_change(clone_request(request))
                ref_report = reference.request_change(clone_request(request))
                assert fast_report.accepted == ref_report.accepted
                assert fast_report.failed_viewpoints() == ref_report.failed_viewpoints()

    def test_duplicate_add_and_missing_remove_agree(self):
        """Pre-acceptance rejections (model-level errors) also agree."""
        fast = MultiChangeController(build_platform(2),
                                     analysis_cache=AnalysisCache())
        reference = MultiChangeController(
            build_platform(2),
            acceptance_tests=[ColdTimingAcceptanceTest(), SafetyAcceptanceTest(),
                              SecurityAcceptanceTest(), ResourceAcceptanceTest()])
        contract = make_contract("dup", 0.05, 0.005)
        for mcc in (fast, reference):
            assert mcc.add_component(contract).accepted
            assert not mcc.add_component(contract).accepted  # duplicate add
            assert not mcc.remove_component("ghost").accepted  # unknown removal
        assert fast.version == reference.version
