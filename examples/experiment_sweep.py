#!/usr/bin/env python3
"""Parameter sweeps with the experiment orchestration subsystem.

Builds a declarative :class:`~repro.experiments.ExperimentSpec` over the
intrusion scenario (three arbitration policies x three seeds), executes it
serially and in a process pool, shows that both produce byte-identical
metric records, and prints the aggregated mean/p95 summary — the workflow
behind ``python -m repro.experiments run``.

Run with::

    python examples/experiment_sweep.py
"""

from repro.experiments import (
    ExperimentSpec,
    Runner,
    format_table,
    summarize_result,
)


def main() -> None:
    """Define, execute and aggregate one experiment sweep."""
    spec = ExperimentSpec(
        name="intrusion-policies",
        scenario="intrusion",
        grid={"policy": ["lowest_adequate", "local_only", "always_escalate"],
              "attack_time_s": 4.0, "duration_s": 30.0},
        seeds=[0, 1, 2],
        description="E5 arbitration-policy comparison, three seeds per policy")
    print(f"spec {spec.name!r}: {spec.num_runs()} runs over scenario "
          f"{spec.scenario!r}\n")

    serial = Runner(parallel=False).run(spec)
    parallel = Runner(parallel=True, workers=2).run(spec)
    print(f"serial:   {serial.wall_time_s:6.2f} s wall")
    print(f"parallel: {parallel.wall_time_s:6.2f} s wall (pool of "
          f"{parallel.workers})")
    identical = serial.canonical_json() == parallel.canonical_json()
    print(f"parallel records byte-identical to serial: {identical}\n")

    rows = [{"run": record.run_id,
             "policy": record.params["policy"],
             "seed": record.params["seed"],
             "fail_operational": record.metrics["fail_operational"],
             "avg_speed_mps": record.metrics["average_speed_after_attack_mps"]}
            for record in serial.records]
    print(format_table("per-run records", rows))
    print()
    print(format_table("metric summary (mean / p95 over all runs)",
                       summarize_result(serial)))


if __name__ == "__main__":
    main()
