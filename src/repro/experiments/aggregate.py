"""Aggregation and comparison of experiment results.

Turns lists of :class:`~repro.experiments.runner.RunRecord` into summary
statistics (mean / p95 / min / max per numeric metric), renders aligned text
tables for the CLI and the examples, and diffs a result set against a saved
baseline so regressions in scenario metrics are visible run by run.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.experiments.runner import ExperimentResult, RunRecord


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolation percentile (``q`` in [0, 100]) of ``values``."""
    if not values:
        raise ValueError("cannot take the percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be in [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    position = (len(ordered) - 1) * q / 100.0
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(ordered[low])
    fraction = position - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


def _numeric_metrics(records: Iterable[RunRecord]) -> Dict[str, List[float]]:
    """Collect numeric (non-bool) metric values across successful runs."""
    collected: Dict[str, List[float]] = {}
    for record in records:
        if not record.ok:
            continue
        for key, value in record.metrics.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            collected.setdefault(key, []).append(float(value))
    return collected


def summarize(records: Sequence[RunRecord]) -> List[Dict[str, Any]]:
    """Per-metric summary rows (n, mean, p95, min, max) over ``records``.

    Zero records — an empty grid's clean no-op result — summarize to zero
    rows rather than tripping the percentile/mean math; the same holds for
    records whose runs all failed (no metrics to collect).
    """
    rows: List[Dict[str, Any]] = []
    for key, values in sorted(_numeric_metrics(records).items()):
        rows.append({
            "metric": key,
            "n": len(values),
            "mean": sum(values) / len(values),
            "p95": percentile(values, 95.0),
            "min": min(values),
            "max": max(values),
        })
    return rows


def summarize_result(result: ExperimentResult) -> List[Dict[str, Any]]:
    """Summary rows of one executed spec."""
    return summarize(result.records)


def diff_records(baseline: Sequence[Mapping[str, Any]],
                 current: Sequence[RunRecord],
                 tolerance: float = 1e-9) -> List[Dict[str, Any]]:
    """Compare current records against a baseline (parsed result JSON).

    Matches runs by ``run_id`` and reports rows for every metric whose value
    changed by more than ``tolerance`` (numerics) or at all (non-numerics),
    plus runs that appear only on one side.
    """
    baseline_by_id = {entry["run_id"]: entry for entry in baseline}
    rows: List[Dict[str, Any]] = []
    seen = set()
    for record in current:
        seen.add(record.run_id)
        old = baseline_by_id.get(record.run_id)
        if old is None:
            rows.append({"run_id": record.run_id, "metric": "<run>",
                         "baseline": "<absent>", "current": "<present>"})
            continue
        old_metrics = old.get("metrics", {})
        for key in sorted(set(old_metrics) | set(record.metrics)):
            old_value = old_metrics.get(key)
            new_value = record.metrics.get(key)
            if _metric_equal(old_value, new_value, tolerance):
                continue
            rows.append({"run_id": record.run_id, "metric": key,
                         "baseline": old_value, "current": new_value})
    for run_id in sorted(set(baseline_by_id) - seen):
        rows.append({"run_id": run_id, "metric": "<run>",
                     "baseline": "<present>", "current": "<absent>"})
    return rows


def _metric_equal(old: Any, new: Any, tolerance: float) -> bool:
    if isinstance(old, (int, float)) and isinstance(new, (int, float)) \
            and not isinstance(old, bool) and not isinstance(new, bool):
        return abs(float(old) - float(new)) <= tolerance
    return old == new


def format_table(title: str, rows: Sequence[Mapping[str, Any]],
                 float_format: str = "{:.3f}") -> str:
    """Render row dictionaries as an aligned text table (the CLI's output
    format; mirrors the benchmark harness' tables)."""
    lines = [f"=== {title} ==="]
    if not rows:
        lines.append("(no rows)")
        return "\n".join(lines)
    columns = list(rows[0].keys())

    def fmt(value: Any) -> str:
        if isinstance(value, bool) or value is None:
            return str(value)
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    widths = {c: max(len(str(c)), *(len(fmt(r.get(c))) for r in rows)) for c in columns}
    header = "  ".join(str(c).rjust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(fmt(row.get(c)).rjust(widths[c]) for c in columns))
    return "\n".join(lines)
