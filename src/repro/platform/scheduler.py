"""Fixed-priority preemptive scheduling simulator.

The execution domain enforces real-time behaviour; the platform monitor
observes execution times and deadline misses (Section II.B).  This module
provides an exact event-driven simulation of static-priority preemptive
scheduling on a single processing resource.  It produces per-job response
times, preemption counts and deadline-miss statistics that (a) validate the
analytical WCRT bounds from :mod:`repro.analysis.cpa` and (b) feed the
platform monitor in closed-loop scenarios (thermal stress, overload).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.platform.resources import ProcessingResource
from repro.platform.tasks import Job, Task, TaskSet, TaskState
from repro.sim.trace import TraceRecorder

_EPS = 1e-12


@dataclass
class SchedulerStats:
    """Aggregate statistics of one scheduling simulation run."""

    jobs_released: int = 0
    jobs_completed: int = 0
    deadline_misses: int = 0
    preemptions: int = 0
    busy_time: float = 0.0
    horizon: float = 0.0
    worst_response_times: Dict[str, float] = field(default_factory=dict)
    response_times: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def utilization_observed(self) -> float:
        return self.busy_time / self.horizon if self.horizon > 0 else 0.0

    @property
    def deadline_miss_ratio(self) -> float:
        if self.jobs_completed == 0:
            return 0.0
        return self.deadline_misses / self.jobs_completed

    def worst_response_time(self, task_name: str) -> Optional[float]:
        return self.worst_response_times.get(task_name)


class FixedPriorityScheduler:
    """Event-driven simulation of fixed-priority preemptive scheduling.

    Parameters
    ----------
    taskset:
        The tasks to simulate.  Priorities: lower number = higher priority.
    speed_factor:
        Execution-speed scaling (1.0 nominal).  WCETs are divided by this
        factor, which is how thermal throttling shows up as longer execution.
    critical_instant:
        If True (default), all tasks are released simultaneously at their
        offset, producing the worst-case ("critical instant") alignment that
        the analytical WCRT bounds assume.
    """

    def __init__(self, taskset: TaskSet, speed_factor: float = 1.0,
                 critical_instant: bool = True,
                 recorder: Optional[TraceRecorder] = None,
                 execution_time_fn: Optional[Callable[[Task, int], float]] = None) -> None:
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        self.taskset = taskset
        self.speed_factor = speed_factor
        self.critical_instant = critical_instant
        self.recorder = recorder
        self.execution_time_fn = execution_time_fn
        self.jobs: List[Job] = []

    # -- helpers -------------------------------------------------------------

    def _execution_time(self, task: Task, job_index: int) -> float:
        if self.execution_time_fn is not None:
            execution = self.execution_time_fn(task, job_index)
        else:
            execution = task.wcet
        return execution / self.speed_factor

    def _release_times(self, task: Task, horizon: float) -> List[float]:
        releases: List[float] = []
        start = task.offset if self.critical_instant else task.offset
        time = start
        while time < horizon - _EPS:
            releases.append(time)
            time += task.period
        return releases

    # -- simulation ----------------------------------------------------------

    def run(self, horizon: float) -> SchedulerStats:
        """Simulate the task set for ``horizon`` seconds and return statistics."""
        if horizon <= 0:
            raise ValueError("horizon must be positive")

        stats = SchedulerStats(horizon=horizon)
        releases: List[Tuple[float, Task, int]] = []
        for task in self.taskset:
            for index, release in enumerate(self._release_times(task, horizon)):
                releases.append((release, task, index))
        # Deterministic order: by time, then priority, then name.
        releases.sort(key=lambda item: (item[0], item[1].priority, item[1].name))
        stats.jobs_released = len(releases)
        num_releases = len(releases)

        # The ready queue is a heap keyed (priority, release_time, name) —
        # the same ordering the former sort-per-pick used, so the simulated
        # schedule is identical, but admitting/picking a job is O(log n)
        # instead of re-sorting the whole queue at every decision point.
        ready: List[Tuple[int, float, str, Job]] = []
        heappush = heapq.heappush
        heappop = heapq.heappop
        self.jobs = []
        jobs = self.jobs
        current: Optional[Job] = None
        time = 0.0
        release_index = 0

        def admit_until(admit_time: float) -> int:
            index = release_index
            while index < num_releases and releases[index][0] <= admit_time + _EPS:
                rel_time, task, idx = releases[index]
                job = self._make_job(task, rel_time, idx)
                heappush(ready, (task.priority, rel_time, task.name, job))
                jobs.append(job)
                index += 1
            return index

        while time < horizon - _EPS:
            # Next release after the current time.
            next_release = releases[release_index][0] if release_index < num_releases else None

            if current is None:
                if not ready:
                    if next_release is None:
                        break
                    time = next_release
                    release_index = admit_until(time)
                    continue
                current = heappop(ready)[3]
                current.state = TaskState.RUNNING
                if current.start_time is None:
                    current.start_time = time

            # Run the current job until it finishes or the next release occurs.
            finish_time = time + current.remaining
            if next_release is not None and next_release < finish_time - _EPS:
                # Execute until the release, then admit new jobs and possibly preempt.
                executed = next_release - time
                current.remaining -= executed
                stats.busy_time += executed
                time = next_release
                release_index = admit_until(time)
                if ready and ready[0][0] < current.task.priority:
                    # Preemption.
                    contender = heappop(ready)[3]
                    current.state = TaskState.READY
                    current.preemptions += 1
                    stats.preemptions += 1
                    heappush(ready, (current.task.priority, current.release_time,
                                     current.task.name, current))
                    contender.state = TaskState.RUNNING
                    if contender.start_time is None:
                        contender.start_time = time
                    current = contender
            else:
                # Job completes (possibly beyond the horizon; clip busy time).
                executed = min(current.remaining, max(0.0, horizon - time))
                stats.busy_time += executed
                time = finish_time
                current.remaining = 0.0
                current.completion_time = time
                current.state = TaskState.COMPLETED
                stats.jobs_completed += 1
                name = current.task.name
                response = current.response_time or 0.0
                stats.response_times.setdefault(name, []).append(response)
                worst = stats.worst_response_times.get(name, 0.0)
                stats.worst_response_times[name] = max(worst, response)
                if current.deadline_missed:
                    stats.deadline_misses += 1
                    if self.recorder is not None:
                        self.recorder.record(time, "scheduler.deadline_miss", name,
                                             response_time=response,
                                             deadline=current.task.deadline)
                elif self.recorder is not None:
                    self.recorder.record(time, "scheduler.job_complete", name,
                                         response_time=response)
                current = None

        return stats

    def _make_job(self, task: Task, release_time: float, index: int) -> Job:
        execution = self._execution_time(task, index)
        return Job(task=task, release_time=release_time,
                   absolute_deadline=release_time + (task.deadline or task.period),
                   remaining=execution)


class ResourceScheduler:
    """Convenience wrapper: simulate every processor of a platform.

    Returns one :class:`SchedulerStats` per processing resource, with WCETs
    scaled to each resource's current operating point (speed factor), so the
    thermal scenario can observe deadline misses appear as the platform is
    throttled.
    """

    def __init__(self, recorder: Optional[TraceRecorder] = None) -> None:
        self.recorder = recorder

    def simulate(self, processors: List[ProcessingResource], horizon: float,
                 critical_instant: bool = True) -> Dict[str, SchedulerStats]:
        results: Dict[str, SchedulerStats] = {}
        for processor in processors:
            scheduler = FixedPriorityScheduler(
                processor.taskset,
                speed_factor=processor.condition.speed_factor,
                critical_instant=critical_instant,
                recorder=self.recorder)
            results[processor.name] = scheduler.run(horizon)
        return results
