"""E14–E16 (adversity campaigns): hostile and degraded-world rollouts.

Three records cover the adversity layer (PR 8):

* **E14 intrusion.**  The defended/undefended pair under forged deviation
  reports: without the IDS countermeasure the over-reporting burst halts the
  rollout at the canary; with ``discount_suspected`` the forged reports are
  discounted and coverage reaches the whole fleet, with zero false suspects.
  The headline ``speedup`` pins the precedent-replay admission path *under
  adversity*: batched admission dedupes the per-variant integrations even
  while an adversity model rewrites feedback, so it must stay well ahead of
  per-vehicle sequential admission (the regression gate tracks this key).
* **E15 lossy OTA.**  Delivery accounting over a dropping network: retries
  and straggler waves recover full coverage within the retry budget.
* **E16 thermal.**  The heat-wave rollout: DVFS throttling inflates WCETs,
  verdicts flip in hot waves only and recover with the temperature.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table, quick_mode, write_bench_record
from repro.analysis.cache import AnalysisCache
from repro.fleet.adversity import IntrusionAdversity
from repro.fleet.campaign import Campaign, WavePolicy
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.adversity_campaigns import (
    run_intrusion_campaign_scenario, run_lossy_ota_campaign_scenario,
    run_thermal_campaign_scenario)
from repro.scenarios.fleet_campaign import build_update_contract

SEED = 7


def _fleet_size() -> int:
    return 16 if quick_mode() else 36


def _run_intrusion_admission(fleet_size: int, batch: bool):
    """Time one defended intrusion campaign's wave loop (admission only,
    fleet provisioning excluded — the E10 admission benchmark's protocol).

    The sequential baseline runs without the shared analysis cache, the
    same baseline E10 uses, so the two speedup trajectories stay
    comparable.  Returns ``(elapsed_s, result)``.
    """
    spec = FleetSpec(size=fleet_size, seed=SEED, num_variants=6,
                     extra_components=6)
    cache = AnalysisCache() if batch else None
    fleet = generate_fleet(spec, analysis_cache=cache)
    contracts = {}

    def factory(vehicle):
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor,
                                             utilization=0.18)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    policy = WavePolicy(canary_size=2, wave_fractions=(0.2, 0.5, 1.0),
                        max_failure_rate=0.2)
    campaign = Campaign(fleet, factory, policy=policy, analysis_cache=cache,
                        batch_admission=batch, feedback_seed=SEED,
                        adversity=IntrusionAdversity(compromise_rate=0.25,
                                                     seed=SEED))
    started = time.perf_counter()
    result = campaign.run()
    return time.perf_counter() - started, result


@pytest.mark.benchmark(group="e14-adversity")
def test_e14_intrusion_campaign_defense(benchmark):
    """Defended vs undefended forged-report campaigns, plus the batched-
    admission speedup under adversity (the regression-gated headline)."""
    fleet_size = _fleet_size()
    undefended = run_intrusion_campaign_scenario(
        fleet_size=fleet_size, seed=SEED, discount_suspected=False)
    defended = run_intrusion_campaign_scenario(
        fleet_size=fleet_size, seed=SEED, discount_suspected=True)

    assert undefended.halted  # the burst trips the undefended halt policy
    assert defended.completed and not defended.halted
    assert defended.update_coverage == 1.0
    assert defended.false_suspects == 0
    assert defended.true_suspects == defended.compromised > 0

    repeats = 3
    sequential_s = batched_s = float("inf")
    sequential = batched = None
    for _ in range(repeats):  # min-of-N, fresh fleet each run (run mutates)
        elapsed, sequential = _run_intrusion_admission(fleet_size,
                                                       batch=False)
        sequential_s = min(sequential_s, elapsed)
        elapsed, batched = _run_intrusion_admission(fleet_size, batch=True)
        batched_s = min(batched_s, elapsed)
    assert batched.admitted == sequential.admitted
    assert batched.halted == sequential.halted
    speedup = sequential_s / batched_s

    benchmark(lambda: run_intrusion_campaign_scenario(
        fleet_size=8, seed=SEED, num_variants=2, extra_components=2))

    row = {
        "fleet_size": fleet_size,
        "compromised": defended.compromised,
        "suspected": defended.suspected,
        "false_suspects": defended.false_suspects,
        "undefended_halted_wave": undefended.halted_wave,
        "defended_coverage": defended.update_coverage,
        "discounted_reports": defended.discounted,
        "sequential_admission_s": sequential_s,
        "batched_admission_s": batched_s,
        "speedup": speedup,
    }
    print_table("E14: forged deviation reports — IDS discount on vs off, "
                "batched-admission speedup under adversity", [row])
    write_bench_record("e14_intrusion_adversity", row)
    # The quick-mode fleet is less than half the size, so per-variant
    # dedupe has less to amortize — the smoke floor is correspondingly lower.
    assert speedup >= (1.2 if quick_mode() else 1.5)


@pytest.mark.benchmark(group="e14-adversity")
def test_e15_lossy_ota_delivery(benchmark):
    """Retry/straggler recovery over a lossy OTA network."""
    fleet_size = _fleet_size()
    result = run_lossy_ota_campaign_scenario(fleet_size=fleet_size,
                                             seed=SEED, drop_rate=0.3,
                                             max_retries=6)
    assert result.completed
    assert result.abandoned == 0 and result.update_coverage == 1.0
    assert result.drops == result.undelivered_events > 0

    benchmark(lambda: run_lossy_ota_campaign_scenario(
        fleet_size=8, seed=SEED, num_variants=2, extra_components=2))

    row = {
        "fleet_size": fleet_size,
        "drop_rate": result.drop_rate,
        "delivery_attempts": result.delivery_attempts,
        "drops": result.drops,
        "retried": result.retried,
        "abandoned": result.abandoned,
        "straggler_waves": result.straggler_waves,
        "update_coverage": result.update_coverage,
    }
    print_table("E15: lossy OTA rollout — drops recovered by retry and "
                "straggler waves", [row])
    write_bench_record("e15_lossy_ota", row)


@pytest.mark.benchmark(group="e14-adversity")
def test_e16_thermal_campaign(benchmark):
    """Verdict flips are confined to DVFS-throttled waves."""
    fleet_size = _fleet_size()
    result = run_thermal_campaign_scenario(fleet_size=fleet_size, seed=SEED,
                                           peak_ambient_c=90.0,
                                           update_utilization=0.35)
    assert result.verdicts_flipped
    assert result.hot_wave_rejections > 0
    assert result.cool_wave_rejections == 0
    assert result.min_speed_factor < 1.0

    benchmark(lambda: run_thermal_campaign_scenario(
        fleet_size=8, seed=SEED, num_variants=2, extra_components=2))

    row = {
        "fleet_size": fleet_size,
        "peak_ambient_c": result.peak_ambient_c,
        "throttled_waves": result.throttled_waves,
        "min_speed_factor": result.min_speed_factor,
        "hot_wave_rejections": result.hot_wave_rejections,
        "cool_wave_rejections": result.cool_wave_rejections,
        "admitted": result.admitted,
        "rejected": result.rejected,
        "update_coverage": result.update_coverage,
    }
    print_table("E16: heat-wave rollout — DVFS-inflated WCET admission "
                "(hot waves reject, cool waves admit)", [row])
    write_bench_record("e16_thermal_campaign", row)
