"""Sharded campaign engine: parallel/sequential equivalence, shard protocol,
persistent cache warm-starts and checkpoint/resume.

The load-bearing guarantee of the parallel engine is *byte-identical
results*: for any fleet, any staging policy and any failure injection,
``workers=4`` must produce the same :class:`CampaignResult`, the same wave
records and the same per-vehicle rollout state as ``workers=1`` — including
campaigns that halt mid-rollout.  A hypothesis-seeded differential harness
pins that; deterministic tests cover the shard partition, snapshot
portability and resume-after-remediation.
"""

from __future__ import annotations

import os
import pickle

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro.fleet.shard as shard_module
from repro.analysis.cache import AnalysisCache
from repro.analysis.cache_store import SegmentStore
from repro.fleet.campaign import (Campaign, CampaignCheckpoint, CampaignError,
                                  CampaignResult, WavePolicy)
from repro.fleet.shard import (ShardItem, ShardTask, execute_shard,
                               plan_chunks, plan_shards)
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import build_update_contract


def make_factory():
    """Per-variant ADD update factory (one shared contract per variant)."""
    contracts = {}

    def factory(vehicle):
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    return factory


def campaign_digest(result: CampaignResult):
    """Everything deterministic about a result (no cache/engine counters —
    those legitimately differ between worker layouts)."""
    return (result.fleet_size, result.batched, result.admitted,
            result.rejected, result.deviating, result.refined,
            result.rolled_back, result.halted, result.halted_wave,
            result.completed,
            [record.to_dict() for record in result.waves])


def fleet_digest(fleet):
    """Per-vehicle rollout state: flags, model version, installed set."""
    return [(vehicle.vehicle_id, vehicle.updated, vehicle.deviating,
             vehicle.rolled_back, vehicle.mcc.version,
             sorted(vehicle.mcc.model.components()),
             sorted(vehicle.mcc.model.mapping.items()))
            for vehicle in fleet]


def run_campaign(size, seed, workers, *, failure_rate=0.0, policy=None,
                 cache_path=None, checkpoint_path=None, num_variants=4,
                 **campaign_kwargs):
    spec = FleetSpec(size=size, seed=seed, num_variants=num_variants,
                     extra_components=2)
    cache = AnalysisCache()
    fleet = generate_fleet(spec, analysis_cache=cache)
    campaign = Campaign(fleet, make_factory(), policy=policy,
                        analysis_cache=cache, workers=workers,
                        failure_injection_rate=failure_rate,
                        feedback_seed=seed, cache_path=cache_path,
                        checkpoint_path=checkpoint_path, **campaign_kwargs)
    return fleet, campaign, campaign.run()


class TestShardPlanning:
    """The deterministic round-robin partition."""

    def test_round_robin_partition(self):
        assert plan_shards(5, 2) == [[0, 2, 4], [1, 3]]
        assert plan_shards(4, 4) == [[0], [1], [2], [3]]

    def test_fewer_items_than_workers(self):
        assert plan_shards(2, 8) == [[0], [1]]

    def test_degenerate_inputs(self):
        assert plan_shards(0, 4) == []
        assert plan_shards(3, 1) == [[0, 1, 2]]
        assert plan_shards(3, 0) == [[0, 1, 2]]

    def test_every_item_lands_exactly_once(self):
        shards = plan_shards(17, 5)
        flat = sorted(position for shard in shards for position in shard)
        assert flat == list(range(17))
        assert max(len(s) for s in shards) - min(len(s) for s in shards) <= 1

    @settings(max_examples=40, deadline=None)
    @given(item_count=st.integers(min_value=0, max_value=300),
           workers=st.integers(min_value=1, max_value=16))
    def test_fallback_is_within_one_balanced_for_any_count(self, item_count,
                                                           workers):
        """The documented contract of the deterministic fallback planner:
        every item exactly once, never more shards than workers, and shard
        sizes within one of each other — for ANY item count."""
        shards = plan_shards(item_count, workers)
        flat = sorted(position for shard in shards for position in shard)
        assert flat == list(range(item_count))
        assert len(shards) <= max(workers, 1)
        if shards:
            assert all(shard for shard in shards)  # no empty shards
            sizes = [len(shard) for shard in shards]
            assert max(sizes) - min(sizes) <= 1


class TestChunkPlanning:
    """The cost-model chunk planner of the work-stealing dispatch."""

    def test_degenerate_inputs(self):
        assert plan_chunks(0, 4) == []
        assert plan_chunks(3, 1) == [[0, 1, 2]]
        assert plan_chunks(3, 0) == [[0, 1, 2]]

    def test_every_item_lands_exactly_once(self):
        for item_count, workers in ((1, 4), (7, 2), (40, 4), (100, 3)):
            chunks = plan_chunks(item_count, workers)
            flat = sorted(position for chunk in chunks for position in chunk)
            assert flat == list(range(item_count))

    def test_produces_more_chunks_than_workers_for_stealing(self):
        # 40 uniform items on 4 workers: the shared queue needs spare
        # chunks for idle workers to pull — more than one per worker,
        # bounded by workers * chunks_per_worker.
        chunks = plan_chunks(40, 4)
        assert 4 < len(chunks) <= 16

    def test_group_members_are_co_located(self):
        # Three groups of 4 items each on 2 workers with a chunk target of
        # 4 chunks: every group fits under the oversize threshold, so no
        # group may be split across chunks.
        groups = [f"g{i // 4}" for i in range(12)]
        chunks = plan_chunks(12, 2, groups=groups, chunks_per_worker=2)
        chunk_of = {}
        for index, chunk in enumerate(chunks):
            for position in chunk:
                chunk_of[position] = index
        for start in (0, 4, 8):
            members = {chunk_of[position]
                       for position in range(start, start + 4)}
            assert len(members) == 1, f"group at {start} split across {members}"

    def test_oversized_group_is_split_in_order(self):
        # One giant group: it must split (a single chunk would kill
        # stealing) and the pieces must preserve item order.
        chunks = plan_chunks(64, 4, groups=["same"] * 64)
        assert len(chunks) > 1
        for chunk in chunks:
            assert chunk == sorted(chunk)

    def test_costly_items_dispatch_first(self):
        # LPT order: the first chunk's summed cost must be at least the
        # last chunk's — heavy work first, small tail chunks last.
        costs = [10.0] * 4 + [1.0] * 28
        chunks = plan_chunks(32, 4, costs=costs)
        chunk_cost = [sum(costs[i] for i in chunk) for chunk in chunks]
        assert chunk_cost[0] == max(chunk_cost)
        assert chunk_cost[-1] == min(chunk_cost)

    def test_cost_balancing_beats_count_balancing(self):
        # 2 heavy + 14 light items: cost-aware chunks never pack both heavy
        # items together with a pile of light ones.
        costs = [50.0, 50.0] + [1.0] * 14
        chunks = plan_chunks(16, 4, costs=costs)
        for chunk in chunks:
            assert sum(1 for i in chunk if costs[i] == 50.0) <= 1

    def test_zero_costs_degenerate_to_count_balancing(self):
        chunks = plan_chunks(16, 4, costs=[0.0] * 16)
        flat = sorted(position for chunk in chunks for position in chunk)
        assert flat == list(range(16))
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1

    def test_determinism(self):
        costs = [float((i * 7) % 5 + 1) for i in range(30)]
        groups = [i % 6 for i in range(30)]
        first = plan_chunks(30, 4, costs=costs, groups=groups)
        second = plan_chunks(30, 4, costs=costs, groups=groups)
        assert first == second

    def test_input_validation(self):
        with pytest.raises(ValueError, match="costs"):
            plan_chunks(4, 2, costs=[1.0])
        with pytest.raises(ValueError, match="groups"):
            plan_chunks(4, 2, groups=["a"])
        with pytest.raises(ValueError, match="chunks_per_worker"):
            plan_chunks(4, 2, chunks_per_worker=0)

    @settings(max_examples=40, deadline=None)
    @given(item_count=st.integers(min_value=0, max_value=120),
           workers=st.integers(min_value=1, max_value=8),
           num_groups=st.integers(min_value=1, max_value=10),
           seed=st.integers(min_value=0, max_value=1000))
    def test_partition_property(self, item_count, workers, num_groups, seed):
        """Whatever the costs and groups, the output is a partition."""
        costs = [((i * 31 + seed) % 17) / 4.0 for i in range(item_count)]
        groups = [(i * 13 + seed) % num_groups for i in range(item_count)]
        chunks = plan_chunks(item_count, workers, costs=costs, groups=groups)
        flat = sorted(position for chunk in chunks for position in chunk)
        assert flat == list(range(item_count))
        assert all(chunk for chunk in chunks)


class TestShardExecution:
    """execute_shard run in-process: the worker path without the pool."""

    def test_shard_verdicts_match_direct_integration(self, tmp_path):
        cache = AnalysisCache()
        fleet = generate_fleet(FleetSpec(size=2, seed=5, num_variants=2,
                                         extra_components=2),
                               analysis_cache=cache)
        factory = make_factory()
        requests = [factory(vehicle) for vehicle in fleet]
        snapshot_path = os.path.join(tmp_path, "cache.pkl")
        cache.save_snapshot(snapshot_path)
        # Pickle-roundtrip the task exactly as the pool would.
        task = pickle.loads(pickle.dumps(ShardTask(
            shard_index=0,
            items=[ShardItem(position=i, vehicle=vehicle, request=request)
                   for i, (vehicle, request) in enumerate(zip(fleet, requests))],
            cache_path=snapshot_path)))
        shard_result = execute_shard(task)
        # Reference: the same integrations on the original (unpickled) fleet.
        accepted = 0
        for verdict, vehicle, request in zip(shard_result.verdicts, fleet,
                                             requests):
            reference = vehicle.mcc.request_change(request)
            assert verdict.report.accepted == reference.accepted
            assert verdict.report.acceptance_results == \
                reference.acceptance_results
            if reference.accepted:
                accepted += 1
                assert verdict.mapping == dict(vehicle.mcc.model.mapping)
                assert verdict.priorities == dict(vehicle.mcc.model.priorities)
        assert accepted > 0  # the baseline fleet hosts this update

    def test_shard_returns_only_new_cache_entries(self, tmp_path):
        cache = AnalysisCache()
        fleet = generate_fleet(FleetSpec(size=1, seed=5, num_variants=1,
                                         extra_components=2),
                               analysis_cache=cache)
        factory = make_factory()
        snapshot_path = os.path.join(tmp_path, "cache.pkl")
        preloaded = cache.save_snapshot(snapshot_path)
        assert preloaded > 0  # provisioning analyses are in the snapshot
        task = pickle.loads(pickle.dumps(ShardTask(
            shard_index=0,
            items=[ShardItem(position=0, vehicle=fleet[0],
                             request=factory(fleet[0]))],
            cache_path=snapshot_path)))
        shard_result = execute_shard(task)
        assert shard_result.cache_entries  # the candidate analyses are new
        returned = {key for key, _ in shard_result.cache_entries}
        warm = AnalysisCache()
        warm.load_snapshot(snapshot_path)
        preloaded_keys = {key for key, _ in warm.export_entries()}
        assert not returned & preloaded_keys  # fan-in excludes the warm-start


class TestWorkerInitializer:
    """initialize_worker: fork-seed preferred, snapshot fallback."""

    def teardown_method(self):
        shard_module._WORKER_CACHE = None
        shard_module._WORKER_STORE = None
        shard_module._FORK_SEED = None

    def test_fork_seed_wins(self, tmp_path):
        seed_cache = AnalysisCache(max_entries=5)
        shard_module._FORK_SEED = seed_cache
        shard_module.initialize_worker(str(tmp_path / "ignored.pkl"))
        assert shard_module._WORKER_CACHE is seed_cache

    def test_snapshot_fallback_without_seed(self, tmp_path):
        source = AnalysisCache()
        fleet = generate_fleet(FleetSpec(size=1, seed=5, num_variants=1,
                                         extra_components=1),
                               analysis_cache=source)
        path = str(tmp_path / "snap.pkl")
        entries = source.save_snapshot(path)
        shard_module._FORK_SEED = None
        shard_module.initialize_worker(path)
        assert shard_module._WORKER_CACHE is not None
        assert len(shard_module._WORKER_CACHE) == entries

    def test_no_seed_no_snapshot(self):
        shard_module.initialize_worker(None)
        assert shard_module._WORKER_CACHE is not None
        assert len(shard_module._WORKER_CACHE) == 0

    def test_missing_snapshot_is_a_cold_start_not_an_error(self, tmp_path):
        # The first pooled run of a cache_path campaign: no snapshot yet.
        shard_module.initialize_worker(str(tmp_path / "never-written.pkl"))
        assert len(shard_module._WORKER_CACHE) == 0

    def test_parent_cache_configuration_is_plumbed(self, tmp_path):
        """Satellite of the work-stealing PR: a spawn-started worker must
        analyse with the parent cache's configuration, not hardcoded
        defaults."""
        shard_module.initialize_worker(None, max_entries=7, batch_kernel=True)
        assert shard_module._WORKER_CACHE.max_entries == 7
        assert shard_module._WORKER_CACHE.batch_kernel is True
        shard_module.initialize_worker(None)
        assert shard_module._WORKER_CACHE.max_entries == 16384
        assert shard_module._WORKER_CACHE.batch_kernel is False

    def test_store_path_warm_starts_and_installs_store(self, tmp_path):
        source = AnalysisCache()
        generate_fleet(FleetSpec(size=1, seed=5, num_variants=1,
                                 extra_components=1), analysis_cache=source)
        store_path = str(tmp_path / "store")
        SegmentStore(store_path).append(source.export_entries())
        shard_module.initialize_worker(None, store_path=store_path)
        assert shard_module._WORKER_STORE is not None
        assert len(shard_module._WORKER_CACHE) == len(source)

    def test_fork_seed_skips_already_published_store_entries(self, tmp_path):
        store_path = str(tmp_path / "store")
        SegmentStore(store_path).append([(("old",), {"task": 1.0})])
        seed_cache = AnalysisCache()
        shard_module._FORK_SEED = seed_cache
        shard_module.initialize_worker(None, store_path=store_path)
        # The pre-pool entries are presumed in the fork seed already; the
        # worker's read offsets start past them.
        assert shard_module._WORKER_STORE.read_new() == []


class TestParallelSequentialEquivalence:
    """workers=1 vs workers=4 must be byte-identical, halt included."""

    def test_clean_rollout_equivalence(self):
        fleet_seq, _, sequential = run_campaign(12, seed=1, workers=1)
        fleet_par, _, parallel = run_campaign(12, seed=1, workers=4)
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)

    def test_mid_campaign_halt_equivalence(self):
        """A failure-injected campaign that halts mid-rollout: identical
        halted wave, identical rollback set, identical per-vehicle state."""
        policy = WavePolicy(canary_size=2, wave_fractions=(0.3, 1.0),
                            max_failure_rate=0.2)
        fleet_seq, _, sequential = run_campaign(16, seed=1, workers=1,
                                                failure_rate=0.5, policy=policy)
        fleet_par, _, parallel = run_campaign(16, seed=1, workers=4,
                                              failure_rate=0.5, policy=policy)
        # The scenario must actually exercise a *mid-campaign* halt.
        assert sequential.halted and sequential.halted_wave >= 1
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)
        rollback_seq = [v.vehicle_id for v in fleet_seq if v.rolled_back]
        rollback_par = [v.vehicle_id for v in fleet_par if v.rolled_back]
        assert rollback_par == rollback_seq

    def test_workers_knob_survives_daemonic_runner_workers(self):
        """The E10 scenario's `workers` knob inside the *parallel*
        experiment runner: a daemonic pool worker may not fork children, so
        the campaign must fall back to in-process sharding — identical
        records, no 'daemonic processes are not allowed to have children'."""
        from repro.experiments import ExperimentSpec, Runner
        spec = ExperimentSpec(
            name="nested", scenario="fleet_update_campaign",
            grid={"fleet_size": 6, "num_variants": 2, "extra_components": 2,
                  "workers": [1, 2]})
        parallel = Runner(parallel=True, workers=2).run(spec)
        assert parallel.ok(), [r.error for r in parallel.records]
        serial = Runner(parallel=False).run(spec)
        assert parallel.canonical_json() == serial.canonical_json()

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           failure_rate=st.sampled_from([0.0, 0.3, 0.8]),
           size=st.integers(min_value=4, max_value=14))
    def test_differential_random_fleets(self, seed, failure_rate, size):
        """Hypothesis-seeded fleets: the parallel engine may never diverge
        from sequential admission, whatever the fleet or failure pattern."""
        policy = WavePolicy(canary_size=1, wave_fractions=(0.5, 1.0),
                            max_failure_rate=0.25)
        fleet_seq, _, sequential = run_campaign(size, seed=seed, workers=1,
                                                failure_rate=failure_rate,
                                                policy=policy)
        fleet_par, _, parallel = run_campaign(size, seed=seed, workers=4,
                                              failure_rate=failure_rate,
                                              policy=policy)
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(seed=st.integers(min_value=0, max_value=10_000),
           failure_rate=st.sampled_from([0.0, 0.4]),
           shard_planner=st.sampled_from(["cost", "round_robin"]),
           steal=st.booleans(),
           warm=st.sampled_from(["none", "snapshot", "store"]))
    def test_differential_random_schedules(self, tmp_path, seed, failure_rate,
                                           shard_planner, steal, warm):
        """The work-stealing extension of the differential harness: random
        planner × dispatch × persistence-medium combinations may never
        change a verdict relative to sequential admission.  (The chunk
        layout additionally varies with the measured costs feeding the cost
        model — exactly the degrees of freedom this pins.)"""
        policy = WavePolicy(canary_size=1, wave_fractions=(0.5, 1.0),
                            max_failure_rate=0.25)
        fleet_seq, _, sequential = run_campaign(10, seed=seed, workers=1,
                                                failure_rate=failure_rate,
                                                policy=policy)
        tag = f"{seed}-{shard_planner}-{steal}"
        media = {"none": {},
                 "snapshot": {"cache_path":
                              str(tmp_path / f"snap-{tag}.pkl")},
                 "store": {"cache_store": str(tmp_path / f"store-{tag}")}}
        fleet_par, _, parallel = run_campaign(10, seed=seed, workers=3,
                                              failure_rate=failure_rate,
                                              policy=policy,
                                              shard_planner=shard_planner,
                                              steal=steal, **media[warm])
        assert campaign_digest(parallel) == campaign_digest(sequential)
        assert fleet_digest(fleet_par) == fleet_digest(fleet_seq)

    def test_round_robin_and_no_steal_stay_equivalent(self):
        fleet_default, _, default = run_campaign(12, seed=3, workers=4)
        fleet_static, _, static = run_campaign(12, seed=3, workers=4,
                                               shard_planner="round_robin",
                                               steal=False)
        assert campaign_digest(static) == campaign_digest(default)
        assert fleet_digest(fleet_static) == fleet_digest(fleet_default)


class TestSpawnStartMethod:
    """End-to-end spawn pools: byte-identical to fork and to workers=1,
    warm-started from the on-disk media (no copy-on-write inheritance)."""

    def test_spawn_matches_fork_and_sequential(self, tmp_path):
        fleet_seq, _, sequential = run_campaign(8, seed=2, workers=1)
        fleet_fork, _, forked = run_campaign(
            8, seed=2, workers=2, start_method="fork")
        spawn_cache = os.path.join(tmp_path, "spawn.pkl")
        fleet_spawn, _, spawned = run_campaign(
            8, seed=2, workers=2, start_method="spawn",
            cache_path=spawn_cache)
        assert campaign_digest(spawned) == campaign_digest(sequential)
        assert campaign_digest(forked) == campaign_digest(sequential)
        assert fleet_digest(fleet_spawn) == fleet_digest(fleet_seq)
        assert fleet_digest(fleet_fork) == fleet_digest(fleet_seq)

    def test_spawn_workers_warm_start_from_snapshot(self, tmp_path):
        cache_path = os.path.join(tmp_path, "analyses.pkl")
        _, _, first = run_campaign(8, seed=2, workers=2,
                                   start_method="spawn",
                                   cache_path=cache_path)
        _, _, second = run_campaign(8, seed=2, workers=2,
                                    start_method="spawn",
                                    cache_path=cache_path)
        assert campaign_digest(second) == campaign_digest(first)
        # Parent cache counters describe the *parent's* traffic, which is
        # near-zero on pooled runs — the warm start shows up in the shard
        # telemetry: first-run workers derive the wave analyses (misses),
        # re-run workers answer them from the loaded snapshot.
        first_misses = sum(row["cache_misses"]
                           for row in first.shard_telemetry)
        second_misses = sum(row["cache_misses"]
                            for row in second.shard_telemetry)
        assert first_misses > 0
        assert second_misses < first_misses

    def test_spawn_workers_warm_start_from_segment_store(self, tmp_path):
        store = os.path.join(tmp_path, "store")
        fleet_seq, _, sequential = run_campaign(8, seed=2, workers=1)
        fleet_spawn, _, spawned = run_campaign(8, seed=2, workers=2,
                                               start_method="spawn",
                                               cache_store=store)
        assert campaign_digest(spawned) == campaign_digest(sequential)
        assert fleet_digest(fleet_spawn) == fleet_digest(fleet_seq)
        # The store holds this campaign's analyses for the next run.
        assert len(SegmentStore(store).read_entries()) > 0


class TestSegmentStoreCampaign:
    """cache_store: mid-wave publication, cross-run warm starts, parity."""

    def test_store_backed_run_matches_plain_run(self, tmp_path):
        fleet_plain, _, plain = run_campaign(10, seed=4, workers=2)
        fleet_store, _, stored = run_campaign(
            10, seed=4, workers=2,
            cache_store=os.path.join(tmp_path, "store"))
        assert campaign_digest(stored) == campaign_digest(plain)
        assert fleet_digest(fleet_store) == fleet_digest(fleet_plain)

    def test_rerun_warm_starts_from_store(self, tmp_path):
        store = os.path.join(tmp_path, "store")
        _, _, first = run_campaign(10, seed=4, workers=1, cache_store=store)
        assert first.cache_misses > 0
        _, _, second = run_campaign(10, seed=4, workers=1, cache_store=store)
        assert campaign_digest(second) == campaign_digest(first)
        assert second.cache_misses < first.cache_misses
        assert second.cache_hits > 0

    def test_parent_publishes_provisioning_before_the_pool(self, tmp_path):
        store = os.path.join(tmp_path, "store")
        _, campaign, _ = run_campaign(6, seed=4, workers=2, cache_store=store)
        entries = SegmentStore(store).read_entries()
        # Everything the parent cache holds is durable in the store.
        stored_keys = {key for key, _ in entries}
        cache_keys = set(campaign.analysis_cache.keys())
        assert cache_keys <= stored_keys

    def test_store_and_snapshot_are_mutually_exclusive(self, tmp_path):
        cache = AnalysisCache()
        fleet = generate_fleet(FleetSpec(size=2, seed=1, num_variants=1,
                                         extra_components=1),
                               analysis_cache=cache)
        with pytest.raises(CampaignError, match="mutually"):
            Campaign(fleet, make_factory(), analysis_cache=cache,
                     cache_path=str(tmp_path / "snap.pkl"),
                     cache_store=str(tmp_path / "store"))

    def test_store_requires_a_cache(self, tmp_path):
        fleet = []
        with pytest.raises(CampaignError, match="cache_store"):
            Campaign(fleet, make_factory(), batch_admission=False,
                     cache_store=str(tmp_path / "store"))

    def test_knob_validation(self):
        cache = AnalysisCache()
        with pytest.raises(CampaignError, match="shard_planner"):
            Campaign([], make_factory(), analysis_cache=cache,
                     shard_planner="magic")
        with pytest.raises(CampaignError, match="start_method"):
            Campaign([], make_factory(), analysis_cache=cache,
                     start_method="teleport")


class TestShardTelemetry:
    """Per-shard timing/steal/cache telemetry on pooled campaigns."""

    def test_pooled_run_reports_telemetry(self, tmp_path):
        _, _, result = run_campaign(
            12, seed=1, workers=3,
            cache_store=os.path.join(tmp_path, "store"))
        assert result.shard_telemetry
        waves_seen = set()
        for row in result.shard_telemetry:
            assert set(row) == {"wave", "shard", "items", "worker_pid",
                                "elapsed_s", "cache_hits", "cache_misses",
                                "published_entries", "absorbed_entries"}
            assert row["items"] > 0
            assert row["worker_pid"] > 0
            assert row["elapsed_s"] >= 0.0
            waves_seen.add(row["wave"])
        # Wave 0 always ships representatives; later waves may dedupe to
        # zero new representatives (then no shards run for them).
        assert 0 in waves_seen
        # Workers published their derivations to the store mid-wave.
        assert sum(row["published_entries"]
                   for row in result.shard_telemetry) > 0

    def test_in_process_run_has_no_telemetry(self):
        _, _, result = run_campaign(8, seed=1, workers=1)
        assert result.shard_telemetry == []

    def test_telemetry_is_not_part_of_the_canonical_digest(self):
        # Two layouts, identical digests, (potentially) different telemetry:
        # the digest helpers must not look at it.
        _, _, stealing = run_campaign(10, seed=1, workers=3)
        _, _, static = run_campaign(10, seed=1, workers=2,
                                    shard_planner="round_robin", steal=False)
        assert campaign_digest(stealing) == campaign_digest(static)

    def test_cost_model_learns_from_pooled_waves(self):
        _, campaign, _ = run_campaign(12, seed=1, workers=3)
        assert campaign._cost_model
        assert all(cost >= 0.0 for cost in campaign._cost_model.values())

    def test_checkpoint_keeps_executed_waves_telemetry(self, tmp_path):
        """The checkpoint persists the telemetry of the waves it aggregates
        (the halting wave's rows are dropped — it re-runs on resume)."""
        policy = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                            max_failure_rate=0.1)
        checkpoint_path = os.path.join(tmp_path, "c.ckpt")
        fleet, campaign, halted = run_campaign(
            18, seed=1, workers=3, failure_rate=0.4, policy=policy,
            checkpoint_path=checkpoint_path)
        assert halted.halted
        checkpoint = CampaignCheckpoint.load(checkpoint_path)
        persisted = {row["wave"] for row in checkpoint.result.shard_telemetry}
        executed = {record.index for record in checkpoint.result.waves}
        assert persisted  # pre-halt pooled waves came with telemetry
        assert persisted <= executed
        assert halted.halted_wave not in persisted

    def test_resumed_telemetry_covers_all_pooled_waves(self, tmp_path):
        """Regression: a resumed campaign's telemetry must cover the same
        waves an uninterrupted run's does — pre-halt rows used to be
        silently dropped from the checkpoint."""
        policy = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                            max_failure_rate=0.1)
        checkpoint_path = os.path.join(tmp_path, "c.ckpt")
        fleet, campaign, halted = run_campaign(
            18, seed=1, workers=3, failure_rate=0.4, policy=policy,
            checkpoint_path=checkpoint_path)
        assert halted.halted
        checkpoint = CampaignCheckpoint.load(checkpoint_path)
        for vehicle in fleet:
            vehicle.restore_state(
                {s.vehicle_id: s for s in checkpoint.vehicle_states}
                [vehicle.vehicle_id])
        remediated = Campaign(fleet, make_factory(),
                              policy=WavePolicy(canary_size=2,
                                                wave_fractions=(0.4, 1.0),
                                                max_failure_rate=1.0),
                              analysis_cache=AnalysisCache(), workers=3,
                              failure_injection_rate=0.4, feedback_seed=1)
        resumed = remediated.run(resume_from=checkpoint)
        assert resumed.completed
        # An uninterrupted run at the tolerant threshold covers the same
        # fleet and staging; its telemetry wave coverage is the reference.
        _, _, uninterrupted = run_campaign(
            18, seed=1, workers=3, failure_rate=0.4,
            policy=WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                              max_failure_rate=1.0))
        resumed_waves = {row["wave"] for row in resumed.shard_telemetry}
        reference_waves = {row["wave"]
                           for row in uninterrupted.shard_telemetry}
        assert resumed_waves == reference_waves


class TestPersistentCache:
    """On-disk snapshots: warm-starts change wall time, never results."""

    def test_rerun_warm_starts_from_snapshot(self, tmp_path):
        cache_path = os.path.join(tmp_path, "analyses.pkl")
        _, _, first = run_campaign(10, seed=4, workers=1,
                                   cache_path=cache_path)
        assert os.path.exists(cache_path)
        assert first.cache_misses > 0
        _, _, second = run_campaign(10, seed=4, workers=1,
                                    cache_path=cache_path)
        assert campaign_digest(second) == campaign_digest(first)
        # The repeat run's wave analyses are answered from the snapshot.
        assert second.cache_misses < first.cache_misses
        assert second.cache_hits > 0

    def test_snapshot_roundtrip_under_parallel_run(self, tmp_path):
        cache_path = os.path.join(tmp_path, "analyses.pkl")
        _, _, parallel = run_campaign(10, seed=4, workers=3,
                                      cache_path=cache_path)
        _, _, sequential = run_campaign(10, seed=4, workers=1)
        assert campaign_digest(parallel) == campaign_digest(sequential)
        restored = AnalysisCache()
        assert restored.load_snapshot(cache_path) > 0


class TestCheckpointResume:
    """A halted campaign resumes — remediated — to the reference result."""

    POLICY_STRICT = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                               max_failure_rate=0.1)
    POLICY_TOLERANT = WavePolicy(canary_size=2, wave_fractions=(0.4, 1.0),
                                 max_failure_rate=1.0)

    def _halting_setup(self, tmp_path, workers=1):
        checkpoint_path = os.path.join(tmp_path, "campaign.ckpt")
        fleet, campaign, halted = run_campaign(
            18, seed=1, workers=workers, failure_rate=0.4,
            policy=self.POLICY_STRICT, checkpoint_path=checkpoint_path)
        assert halted.halted
        assert os.path.exists(checkpoint_path)
        assert campaign.last_checkpoint is not None
        return fleet, halted, checkpoint_path

    def test_resume_reaches_reference_result(self, tmp_path):
        fleet, halted, checkpoint_path = self._halting_setup(tmp_path)
        _, _, reference = run_campaign(18, seed=1, workers=1, failure_rate=0.4,
                                       policy=self.POLICY_TOLERANT)
        # Remediation: the operator raises the tolerance and resumes the
        # SAME fleet from the checkpoint (live objects, same process).
        cache = AnalysisCache()
        resumed = Campaign(fleet, make_factory(), policy=self.POLICY_TOLERANT,
                           analysis_cache=cache, failure_injection_rate=0.4,
                           feedback_seed=1).run(
            resume_from=CampaignCheckpoint.load(checkpoint_path))
        assert campaign_digest(resumed) == campaign_digest(reference)

    def test_resume_on_regenerated_fleet(self, tmp_path):
        """The checkpoint restores vehicles of a *freshly generated* fleet —
        the cross-process story (pickled MCC snapshots are portable)."""
        _, halted, checkpoint_path = self._halting_setup(tmp_path)
        _, _, reference = run_campaign(18, seed=1, workers=1, failure_rate=0.4,
                                       policy=self.POLICY_TOLERANT)
        spec = FleetSpec(size=18, seed=1, num_variants=4, extra_components=2)
        cache = AnalysisCache()
        fresh_fleet = generate_fleet(spec, analysis_cache=cache)
        resumed = Campaign(fresh_fleet, make_factory(),
                           policy=self.POLICY_TOLERANT, analysis_cache=cache,
                           failure_injection_rate=0.4, feedback_seed=1).run(
            resume_from=CampaignCheckpoint.load(checkpoint_path))
        assert campaign_digest(resumed) == campaign_digest(reference)

    def test_resume_with_parallel_workers(self, tmp_path):
        _, halted, checkpoint_path = self._halting_setup(tmp_path, workers=4)
        _, _, reference = run_campaign(18, seed=1, workers=1, failure_rate=0.4,
                                       policy=self.POLICY_TOLERANT)
        spec = FleetSpec(size=18, seed=1, num_variants=4, extra_components=2)
        cache = AnalysisCache()
        fresh_fleet = generate_fleet(spec, analysis_cache=cache)
        resumed = Campaign(fresh_fleet, make_factory(),
                           policy=self.POLICY_TOLERANT, analysis_cache=cache,
                           failure_injection_rate=0.4, feedback_seed=1,
                           workers=4).run(
            resume_from=CampaignCheckpoint.load(checkpoint_path))
        assert campaign_digest(resumed) == campaign_digest(reference)

    def test_checkpoint_excludes_the_halting_wave(self, tmp_path):
        _, halted, checkpoint_path = self._halting_setup(tmp_path)
        checkpoint = CampaignCheckpoint.load(checkpoint_path)
        assert checkpoint.next_wave == halted.halted_wave
        assert len(checkpoint.result.waves) == halted.halted_wave
        assert not checkpoint.result.halted
        # Halting-wave members are stored pre-wave: clean flags.
        halting_ids = set(halted.waves[-1].vehicle_ids)
        for state in checkpoint.vehicle_states:
            if state.vehicle_id in halting_ids:
                assert not (state.updated or state.deviating
                            or state.rolled_back)

    def test_resume_rejects_diverging_fleet(self, tmp_path):
        _, _, checkpoint_path = self._halting_setup(tmp_path)
        checkpoint = CampaignCheckpoint.load(checkpoint_path)
        spec = FleetSpec(size=5, seed=1, num_variants=4, extra_components=2)
        cache = AnalysisCache()
        wrong_fleet = generate_fleet(spec, analysis_cache=cache)
        with pytest.raises(CampaignError):
            Campaign(wrong_fleet, make_factory(), policy=self.POLICY_TOLERANT,
                     analysis_cache=cache).run(resume_from=checkpoint)

    def test_resume_rejects_diverging_staging(self, tmp_path):
        _, _, checkpoint_path = self._halting_setup(tmp_path)
        checkpoint = CampaignCheckpoint.load(checkpoint_path)
        spec = FleetSpec(size=18, seed=1, num_variants=4, extra_components=2)
        cache = AnalysisCache()
        fleet = generate_fleet(spec, analysis_cache=cache)
        reshaped = WavePolicy(canary_size=5, wave_fractions=(1.0,),
                              max_failure_rate=1.0)
        with pytest.raises(CampaignError):
            Campaign(fleet, make_factory(), policy=reshaped,
                     analysis_cache=cache).run(resume_from=checkpoint)

    def test_checkpoint_file_validation(self, tmp_path):
        bogus = os.path.join(tmp_path, "bogus.ckpt")
        with open(bogus, "wb") as stream:
            pickle.dump({"not": "a checkpoint"}, stream)
        with pytest.raises(CampaignError):
            CampaignCheckpoint.load(bogus)
