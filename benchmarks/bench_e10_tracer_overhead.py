"""E10 companion: tracer overhead on a staged fleet campaign.

The observability layer promises *zero overhead when disabled* and a
negligible cost when enabled (docs/OBSERVABILITY.md): every
instrumentation site is a plain ``if tracer is not None`` guard, and an
enabled tracer only appends dicts to a list until one file write at run
end.  This benchmark pins both claims on an E10-style campaign:

* enabled-tracer wall time must stay within 5% of the untraced run —
  the arms are interleaved sample by sample (untraced, traced,
  untraced again, ...) and each arm takes its minimum, so slow machine
  drift on a loaded CI runner hits all arms equally instead of biasing
  whichever arm ran last;
* the bound is taken against the *slower* of the two untraced arms:
  their spread is the run-to-run noise floor, and recording it shows
  the disabled guard itself is unmeasurable against that noise;
* traced and untraced campaigns must produce identical verdicts.

The measured ratios land in ``BENCH_e10_tracer_overhead.json`` so the
trajectory is diffable across PRs.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional, Tuple

import pytest

from conftest import print_table, quick_mode, write_bench_record
from repro.analysis.cache import AnalysisCache
from repro.fleet.campaign import Campaign, CampaignResult
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.observability import CampaignTracer
from repro.scenarios.fleet_campaign import build_update_contract

# Overhead bound for the enabled tracer, as a fraction of untraced wall
# time.  docs/OBSERVABILITY.md quotes this number.
MAX_ENABLED_OVERHEAD = 0.05


def _run_campaign(fleet_size: int, num_variants: int,
                  tracer: Optional[CampaignTracer]) -> CampaignResult:
    """Build a fresh fleet and run one batched campaign (admission only)."""
    spec = FleetSpec(size=fleet_size, seed=0, num_variants=num_variants)
    cache = AnalysisCache()
    fleet = generate_fleet(spec, analysis_cache=cache)
    contracts: Dict[int, object] = {}

    def factory(vehicle):
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    campaign = Campaign(fleet, factory, analysis_cache=cache,
                        batch_admission=True, tracer=tracer)
    return campaign.run()


def _digest(result: CampaignResult) -> Tuple:
    return (result.admitted, result.rejected, result.deviating,
            result.rolled_back, result.halted, result.halted_wave,
            [record.to_dict() for record in result.waves])


def _timed(fn) -> Tuple[float, CampaignResult]:
    started = time.perf_counter()
    result = fn()
    return time.perf_counter() - started, result


@pytest.mark.benchmark(group="e10-fleet")
def test_e10_tracer_overhead(benchmark, tmp_path):
    """An enabled tracer costs < 5% wall time; a disabled one is noise."""
    quick = quick_mode()
    fleet_size = 16 if quick else 50
    num_variants = 4 if quick else 8
    samples = 9 if quick else 5
    trace_path = tmp_path / "overhead_trace.jsonl"

    def untraced():
        return _run_campaign(fleet_size, num_variants, None)

    def traced():
        return _run_campaign(
            fleet_size, num_variants,
            CampaignTracer(path=str(trace_path), keep_events=False))

    untraced()  # warm caches/imports before any timed sample
    arm_a, arm_t, arm_b = [], [], []
    untraced_result = traced_result = None
    for _ in range(samples):
        elapsed, untraced_result = _timed(untraced)
        arm_a.append(elapsed)
        elapsed, traced_result = _timed(traced)
        arm_t.append(elapsed)
        arm_b.append(_timed(untraced)[0])
    untraced_s, traced_s = min(arm_a), min(arm_t)
    untraced_again_s = min(arm_b)
    benchmark(lambda: _run_campaign(fleet_size, num_variants, None))

    # Read-only contract: tracing never changes the verdicts.
    assert _digest(traced_result) == _digest(untraced_result)
    assert trace_path.exists() and os.path.getsize(trace_path) > 0

    # The spread between the two untraced arms is the noise floor; the
    # slower arm is the fair baseline (both arms are legitimate min-of-N
    # untraced measurements, so crediting the tracer against the faster
    # one would charge measurement noise to the tracer).
    baseline_s = max(untraced_s, untraced_again_s)
    overhead = traced_s / baseline_s - 1.0 if baseline_s > 0 else 0.0
    noise = abs(untraced_again_s / untraced_s - 1.0) if untraced_s > 0 else 0.0
    row = {
        "fleet_size": fleet_size,
        "num_variants": num_variants,
        "untraced_s": untraced_s,
        "untraced_again_s": untraced_again_s,
        "traced_s": traced_s,
        "overhead_frac": overhead,
        "noise_frac": noise,
        "trace_bytes": os.path.getsize(trace_path),
        "within_noise": overhead <= noise,
    }
    print_table(
        "E10: tracer overhead (bound: < "
        f"{MAX_ENABLED_OVERHEAD:.0%} enabled; disabled unmeasurable)", [row])
    write_bench_record("e10_tracer_overhead", row)
    assert overhead < MAX_ENABLED_OVERHEAD
