"""Event-driven CAN bus model with priority arbitration.

The bus connects :class:`~repro.can.controller.CanController` instances (or
the virtualized controller).  Whenever the bus goes idle and at least one
attached controller has a pending frame, the frame with the lowest
identifier wins arbitration — exactly the real-time property the
virtualization layer of the paper must preserve ("transmitted with respect to
their bus priority in real-time").  Transmission times are derived from the
bit-accurate frame lengths in :mod:`repro.can.frame`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from repro.can.frame import CanFrame
from repro.sim.kernel import Simulator
from repro.sim.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.can.controller import CanController


class BusError(RuntimeError):
    """Raised for invalid bus configuration or operation."""


@dataclass
class BusStatistics:
    """Aggregate statistics of one bus."""

    frames_transmitted: int = 0
    bits_transmitted: int = 0
    busy_time: float = 0.0
    arbitration_rounds: int = 0
    per_source: Dict[str, int] = field(default_factory=dict)

    def utilization(self, elapsed: float) -> float:
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


class CanBus:
    """A single CAN bus segment.

    Parameters
    ----------
    sim:
        The discrete-event simulator driving the bus.
    bitrate_bps:
        Nominal bitrate (500 kbit/s is the classic automotive default).
    name:
        Bus name for tracing.
    """

    def __init__(self, sim: Simulator, bitrate_bps: float = 500_000.0,
                 name: str = "can0", recorder: Optional[TraceRecorder] = None) -> None:
        if bitrate_bps <= 0:
            raise BusError("bitrate must be positive")
        self.sim = sim
        self.bitrate_bps = bitrate_bps
        self.name = name
        self.recorder = recorder or TraceRecorder()
        self.stats = BusStatistics()
        self._nodes: List["CanController"] = []
        self._busy = False
        self._current_frame: Optional[CanFrame] = None
        self._current_sender: Optional["CanController"] = None

    # -- topology -----------------------------------------------------------------

    def attach(self, controller: "CanController") -> None:
        if controller in self._nodes:
            raise BusError(f"controller {controller.name} already attached to {self.name}")
        self._nodes.append(controller)
        controller.bus = self

    def detach(self, controller: "CanController") -> None:
        if controller not in self._nodes:
            raise BusError(f"controller {controller.name} not attached to {self.name}")
        self._nodes.remove(controller)
        controller.bus = None

    @property
    def nodes(self) -> List["CanController"]:
        return list(self._nodes)

    @property
    def busy(self) -> bool:
        return self._busy

    # -- arbitration & transmission ----------------------------------------------------

    def notify_pending(self) -> None:
        """Called by controllers whenever they enqueue a frame; starts
        arbitration if the bus is idle."""
        if not self._busy:
            self._start_arbitration()

    def _start_arbitration(self) -> None:
        contenders = [(node, node.peek_tx()) for node in self._nodes]
        contenders = [(node, frame) for node, frame in contenders if frame is not None]
        if not contenders:
            return
        self.stats.arbitration_rounds += 1
        # Lowest arbitration key wins; tie-break on node order for determinism
        # (on a real bus identical identifiers from two nodes are a protocol
        # violation).
        winner_node, winner_frame = min(
            contenders, key=lambda item: (item[1].arbitration_key(), self._nodes.index(item[0])))
        frame = winner_node.pop_tx()
        if frame is None:  # pragma: no cover - defensive, peek/pop must agree
            return
        self._busy = True
        self._current_frame = frame
        self._current_sender = winner_node
        tx_time = frame.bit_length / self.bitrate_bps
        self.recorder.record(self.sim.now, "can.tx_start", self.name,
                             can_id=frame.can_id, sender=frame.source, dlc=frame.dlc)
        self.sim.schedule_in(tx_time, self._complete_transmission, name=f"{self.name}.tx_done")

    def _complete_transmission(self, sim: Simulator) -> None:
        frame = self._current_frame
        sender = self._current_sender
        self._busy = False
        self._current_frame = None
        self._current_sender = None
        if frame is None or sender is None:  # pragma: no cover - defensive
            return
        tx_time = frame.bit_length / self.bitrate_bps
        self.stats.frames_transmitted += 1
        self.stats.bits_transmitted += frame.bit_length
        self.stats.busy_time += tx_time
        self.stats.per_source[frame.source] = self.stats.per_source.get(frame.source, 0) + 1
        self.recorder.record(sim.now, "can.tx_complete", self.name,
                             can_id=frame.can_id, sender=frame.source, dlc=frame.dlc)
        sender.on_transmit_complete(frame, sim.now)
        for node in self._nodes:
            if node is not sender:
                node.on_bus_receive(frame, sim.now)
        # Next arbitration round happens immediately after the interframe
        # space, which is already included in the frame bit length.
        self._start_arbitration()
