"""Export hygiene: every subpackage's ``__all__`` matches what it defines.

This is the automated form of the docs audit: ``__all__`` entries must
resolve, public imported names must be listed, and every package/module must
carry a docstring.
"""

from __future__ import annotations

import importlib
import pkgutil
import types

import pytest

import repro

SUBPACKAGES = ["repro"] + [
    f"repro.{name}" for name in
    ["analysis", "can", "contracts", "core", "experiments", "fleet", "mcc",
     "monitoring", "platform", "platooning", "routing", "scenarios", "security",
     "service", "sim", "skills", "vehicle", "virtualization"]
]


@pytest.mark.parametrize("package", SUBPACKAGES)
def test_all_entries_resolve(package):
    module = importlib.import_module(package)
    exported = getattr(module, "__all__", None)
    assert exported is not None, f"{package} has no __all__"
    assert len(exported) == len(set(exported)), f"{package}.__all__ has duplicates"
    for name in exported:
        assert hasattr(module, name), f"{package}.__all__ lists missing {name!r}"


@pytest.mark.parametrize("package", SUBPACKAGES)
def test_public_names_are_exported(package):
    module = importlib.import_module(package)
    exported = set(getattr(module, "__all__", []))
    public = {name for name, value in vars(module).items()
              if not name.startswith("_")
              and not isinstance(value, types.ModuleType)
              and name not in ("annotations",)}
    missing = public - exported
    assert not missing, f"{package}: public names not in __all__: {sorted(missing)}"


def test_every_module_has_a_docstring():
    packages = [repro]
    missing = []
    seen = set()
    while packages:
        package = packages.pop()
        for info in pkgutil.iter_modules(package.__path__,
                                         prefix=package.__name__ + "."):
            if info.name in seen or info.name.endswith("__main__"):
                continue
            seen.add(info.name)
            module = importlib.import_module(info.name)
            if module.__doc__ is None or not module.__doc__.strip():
                missing.append(info.name)
            if info.ispkg:
                packages.append(module)
    assert not missing, f"modules without docstrings: {missing}"
