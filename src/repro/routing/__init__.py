"""Weather-aware route planning under uncertainty (Section V).

"If the system was aware that its systems may degrade on a certain route due
to possible weather influences, it could plan alternative routes which avoid
weather-related degradation. ... a self-aware vehicle could determine whether
it plans a (possibly shorter) route across an alpine pass in winter or
whether it is advantageous to take a longer detour without risking degraded
performance."
"""

from repro.routing.road_network import RoadNetwork, RoadSegment, RouteError
from repro.routing.weather_forecast import WeatherForecast, SegmentForecast
from repro.routing.planner import RiskAwarePlanner, Route, PlannerConfig, build_alpine_network

__all__ = [
    "RoadNetwork",
    "RoadSegment",
    "RouteError",
    "WeatherForecast",
    "SegmentForecast",
    "RiskAwarePlanner",
    "Route",
    "PlannerConfig",
    "build_alpine_network",
]
