"""System model, change requests and integration reports.

The MCC maintains a :class:`SystemModel` — the model-domain representation of
the currently deployed configuration (contracts plus mapping decisions) — and
processes :class:`ChangeRequest` objects describing in-field changes
(addition, update or removal of components).  Every integration attempt
produces an :class:`IntegrationReport` recording the refinement steps and the
verdicts of the acceptance tests, whether or not the change was accepted.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.contracts.model import Contract

_request_counter = itertools.count(1)


class ChangeKind(enum.Enum):
    """Kinds of in-field changes the MCC handles."""

    ADD_COMPONENT = "add_component"
    UPDATE_COMPONENT = "update_component"
    REMOVE_COMPONENT = "remove_component"


@dataclass
class ChangeRequest:
    """One requested change to the deployed system.

    ``contract`` is required for additions and updates and ignored for
    removals; ``component`` names the affected component.
    """

    kind: ChangeKind
    component: str
    contract: Optional[Contract] = None
    requester: str = "oem"
    request_id: int = field(default_factory=lambda: next(_request_counter))

    def __post_init__(self) -> None:
        if self.kind in (ChangeKind.ADD_COMPONENT, ChangeKind.UPDATE_COMPONENT):
            if self.contract is None:
                raise ValueError(f"{self.kind.value} requires a contract")
            if self.contract.component != self.component:
                raise ValueError(
                    f"contract is for {self.contract.component!r}, request names "
                    f"{self.component!r}")


@dataclass
class RefinementStep:
    """One step of the gradual model refinement performed during integration."""

    name: str
    description: str
    artefacts: Dict[str, Any] = field(default_factory=dict)


@dataclass
class IntegrationReport:
    """The result of one integration attempt."""

    request_id: int
    accepted: bool = False
    steps: List[RefinementStep] = field(default_factory=list)
    acceptance_results: Dict[str, bool] = field(default_factory=dict)
    findings: List[str] = field(default_factory=list)
    configuration_version: Optional[int] = None

    def add_step(self, name: str, description: str, **artefacts: Any) -> RefinementStep:
        step = RefinementStep(name=name, description=description, artefacts=dict(artefacts))
        self.steps.append(step)
        return step

    def failed_viewpoints(self) -> List[str]:
        return sorted(name for name, passed in self.acceptance_results.items() if not passed)

    def summary(self) -> str:
        verdict = "ACCEPTED" if self.accepted else "REJECTED"
        parts = [f"request {self.request_id}: {verdict}"]
        if self.acceptance_results:
            parts.append("acceptance: " + ", ".join(
                f"{name}={'pass' if ok else 'FAIL'}"
                for name, ok in sorted(self.acceptance_results.items())))
        if self.findings:
            parts.append(f"{len(self.findings)} finding(s)")
        return "; ".join(parts)


class SystemModel:
    """Model-domain view of the deployed system: contracts plus mapping.

    The MCC never mutates the deployed model directly; integration operates
    on a :meth:`candidate` copy and the controller swaps models only after
    acceptance.
    """

    def __init__(self, contracts: Optional[List[Contract]] = None,
                 mapping: Optional[Dict[str, str]] = None,
                 priorities: Optional[Dict[str, int]] = None,
                 version: int = 0) -> None:
        self._contracts: Dict[str, Contract] = {}
        for contract in contracts or []:
            self.add_contract(contract)
        self.mapping: Dict[str, str] = dict(mapping or {})
        self.priorities: Dict[str, int] = dict(priorities or {})
        self.version = version

    # -- contracts ------------------------------------------------------------------

    def add_contract(self, contract: Contract) -> None:
        if contract.component in self._contracts:
            raise ValueError(f"duplicate contract for {contract.component!r}")
        self._contracts[contract.component] = contract

    def replace_contract(self, contract: Contract) -> None:
        if contract.component not in self._contracts:
            raise KeyError(f"no contract for {contract.component!r}")
        self._contracts[contract.component] = contract

    def remove_contract(self, component: str) -> Contract:
        try:
            contract = self._contracts.pop(component)
        except KeyError as exc:
            raise KeyError(f"no contract for {component!r}") from exc
        self.mapping.pop(component, None)
        self.priorities.pop(component, None)
        return contract

    def contract(self, component: str) -> Contract:
        try:
            return self._contracts[component]
        except KeyError as exc:
            raise KeyError(f"no contract for {component!r}") from exc

    def contracts(self) -> List[Contract]:
        return list(self._contracts.values())

    def components(self) -> List[str]:
        return list(self._contracts)

    def __contains__(self, component: str) -> bool:
        return component in self._contracts

    def __len__(self) -> int:
        return len(self._contracts)

    # -- candidate handling --------------------------------------------------------------

    def candidate(self) -> "SystemModel":
        """A deep-enough copy for what-if integration (contracts are shared,
        mapping/priorities copied)."""
        return SystemModel(contracts=self.contracts(), mapping=dict(self.mapping),
                           priorities=dict(self.priorities), version=self.version)

    def apply_change(self, request: ChangeRequest) -> None:
        """Apply a change request to this model (used on candidates only)."""
        if request.kind == ChangeKind.ADD_COMPONENT:
            assert request.contract is not None
            self.add_contract(request.contract)
        elif request.kind == ChangeKind.UPDATE_COMPONENT:
            assert request.contract is not None
            self.replace_contract(request.contract)
            # A changed contract invalidates the old mapping decision for it.
            self.mapping.pop(request.component, None)
            self.priorities.pop(request.component, None)
        elif request.kind == ChangeKind.REMOVE_COMPONENT:
            self.remove_contract(request.component)
        else:  # pragma: no cover - exhaustive enum
            raise ValueError(f"unknown change kind {request.kind}")

    # -- provisioning helpers --------------------------------------------------------------

    def unmapped_components(self) -> List[str]:
        return [c for c in self._contracts if c not in self.mapping]

    def service_providers(self) -> Dict[str, List[str]]:
        providers: Dict[str, List[str]] = {}
        for contract in self._contracts.values():
            for provision in contract.provides:
                providers.setdefault(provision.service, []).append(contract.component)
        return providers

    def missing_services(self) -> List[str]:
        """Required, non-optional services without any provider."""
        providers = self.service_providers()
        missing: List[str] = []
        for contract in self._contracts.values():
            for requirement in contract.requires:
                if requirement.optional:
                    continue
                if requirement.service not in providers:
                    missing.append(f"{contract.component}:{requirement.service}")
        return sorted(missing)
