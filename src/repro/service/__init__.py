"""Multi-tenant fleet admission service over the re-entrant campaign engine.

The paper's in-field integration workflow is interactive — vehicles submit
change requests, the Multi-Change Controller admits or rejects them, the
fleet evolves — and this package gives the repo that long-running shape:
:class:`~repro.service.admission.AdmissionService` accepts typed campaign
submissions from many tenants, drives each campaign's
:class:`~repro.fleet.engine.CampaignEngine` one wave per scheduling claim,
streams per-wave progress to subscribers, and exposes halt/resume/rollback
as API calls over the campaign checkpoint machinery.  Tenants optionally
share one append-only analysis-cache store — identical per-tenant results,
warmer caches (see ``docs/SERVICE.md`` and the E17 benchmark).

``python -m repro.experiments serve`` runs a synthetic multi-tenant
workload against the service from the command line.
"""

from repro.service.admission import AdmissionService
from repro.service.schemas import (
    CampaignStatus,
    HaltRequest,
    JobState,
    ResumeRequest,
    RollbackRequest,
    ServiceError,
    SubmitCampaign,
    SubmitReceipt,
    WaveProgress,
)

__all__ = [
    "AdmissionService",
    "CampaignStatus",
    "HaltRequest",
    "JobState",
    "ResumeRequest",
    "RollbackRequest",
    "ServiceError",
    "SubmitCampaign",
    "SubmitReceipt",
    "WaveProgress",
]
