"""Application and platform monitors.

Each monitor supervises one run-time property the paper names explicitly —
execution times, access patterns, sensor values, heartbeats, temperatures —
"with very little interference on the actual functionality" (Section II.B).
Monitors write their observations into a :class:`MetricRegistry` and emit
:class:`Anomaly` objects when the observation deviates from the configured
expectation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType
from repro.monitoring.metrics import MetricRegistry


class Monitor:
    """Base class: a named observer bound to a layer and a metric registry."""

    def __init__(self, name: str, layer: str, registry: Optional[MetricRegistry] = None) -> None:
        self.name = name
        self.layer = layer
        self.registry = registry or MetricRegistry()
        self.anomalies: List[Anomaly] = []
        self.enabled = True

    def _emit(self, anomaly: Anomaly) -> Anomaly:
        self.anomalies.append(anomaly)
        return anomaly

    def drain(self) -> List[Anomaly]:
        """Return and clear the accumulated anomalies (the awareness loop
        polls monitors through this)."""
        anomalies = list(self.anomalies)
        self.anomalies.clear()
        return anomalies

    def reset(self) -> None:
        self.anomalies.clear()


class HeartbeatMonitor(Monitor):
    """Detects missing heartbeats of components or sensors.

    This is the baseline mechanism of RACE/SAFER that the paper contrasts
    with richer quality monitoring: "Any degradation strategy is only
    activated if the heartbeat of a sensor goes missing".
    """

    def __init__(self, name: str, layer: str, timeout: float,
                 registry: Optional[MetricRegistry] = None) -> None:
        super().__init__(name, layer, registry)
        if timeout <= 0:
            raise ValueError("heartbeat timeout must be positive")
        self.timeout = timeout
        self._last_beat: Dict[str, float] = {}

    def beat(self, time: float, source: str) -> None:
        self._last_beat[source] = time
        self.registry.sample(time, source, "heartbeat", 1.0)

    def check(self, time: float) -> List[Anomaly]:
        """Check all known sources for heartbeat loss at ``time``."""
        if not self.enabled:
            return []
        found: List[Anomaly] = []
        for source, last in self._last_beat.items():
            if time - last > self.timeout:
                found.append(self._emit(Anomaly(
                    anomaly_type=AnomalyType.HEARTBEAT_LOSS, subject=source,
                    layer=self.layer, severity=AnomalySeverity.CRITICAL, time=time,
                    observed=time - last, expected=self.timeout)))
        return found

    def sources(self) -> List[str]:
        return list(self._last_beat)


class ValueRangeMonitor(Monitor):
    """Boundary check on observed values (the RACE-style sensor check)."""

    def __init__(self, name: str, layer: str, low: float, high: float,
                 severity: AnomalySeverity = AnomalySeverity.WARNING,
                 registry: Optional[MetricRegistry] = None) -> None:
        super().__init__(name, layer, registry)
        if low >= high:
            raise ValueError("low bound must be below high bound")
        self.low = low
        self.high = high
        self.severity = severity

    def observe(self, time: float, source: str, value: float) -> Optional[Anomaly]:
        if not self.enabled:
            return None
        self.registry.sample(time, source, self.name, value)
        if value < self.low or value > self.high:
            expected = self.low if value < self.low else self.high
            return self._emit(Anomaly(
                anomaly_type=AnomalyType.VALUE_OUT_OF_RANGE, subject=source,
                layer=self.layer, severity=self.severity, time=time,
                observed=value, expected=expected,
                details={"low": self.low, "high": self.high}))
        return None


class ExecutionTimeMonitor(Monitor):
    """Supervises task execution times against their contracted WCET budget."""

    def __init__(self, name: str, layer: str = "platform",
                 registry: Optional[MetricRegistry] = None,
                 overrun_severity: AnomalySeverity = AnomalySeverity.WARNING) -> None:
        super().__init__(name, layer, registry)
        self._budgets: Dict[str, float] = {}
        self.overrun_severity = overrun_severity

    def set_budget(self, task: str, wcet: float) -> None:
        if wcet <= 0:
            raise ValueError("budget must be positive")
        self._budgets[task] = wcet

    def observe(self, time: float, task: str, execution_time: float) -> Optional[Anomaly]:
        if not self.enabled:
            return None
        self.registry.sample(time, task, "execution_time", execution_time)
        budget = self._budgets.get(task)
        if budget is not None and execution_time > budget:
            return self._emit(Anomaly(
                anomaly_type=AnomalyType.BUDGET_OVERRUN, subject=task, layer=self.layer,
                severity=self.overrun_severity, time=time,
                observed=execution_time, expected=budget))
        return None

    def budget(self, task: str) -> Optional[float]:
        return self._budgets.get(task)


class DeadlineMonitor(Monitor):
    """Supervises response times against deadlines (platform monitor)."""

    def __init__(self, name: str, layer: str = "platform",
                 registry: Optional[MetricRegistry] = None) -> None:
        super().__init__(name, layer, registry)
        self._deadlines: Dict[str, float] = {}

    def set_deadline(self, task: str, deadline: float) -> None:
        if deadline <= 0:
            raise ValueError("deadline must be positive")
        self._deadlines[task] = deadline

    def observe(self, time: float, task: str, response_time: float) -> Optional[Anomaly]:
        if not self.enabled:
            return None
        self.registry.sample(time, task, "response_time", response_time)
        deadline = self._deadlines.get(task)
        if deadline is not None and response_time > deadline:
            return self._emit(Anomaly(
                anomaly_type=AnomalyType.DEADLINE_MISS, subject=task, layer=self.layer,
                severity=AnomalySeverity.CRITICAL, time=time,
                observed=response_time, expected=deadline))
        return None


class TemperatureMonitor(Monitor):
    """Supervises junction/ambient temperatures of platform resources."""

    def __init__(self, name: str, layer: str = "platform",
                 warning_c: float = 85.0, critical_c: float = 100.0,
                 registry: Optional[MetricRegistry] = None) -> None:
        super().__init__(name, layer, registry)
        if warning_c >= critical_c:
            raise ValueError("warning threshold must be below critical threshold")
        self.warning_c = warning_c
        self.critical_c = critical_c

    def observe(self, time: float, resource: str, temperature_c: float) -> Optional[Anomaly]:
        if not self.enabled:
            return None
        self.registry.sample(time, resource, "temperature_c", temperature_c)
        if temperature_c >= self.critical_c:
            severity = AnomalySeverity.CRITICAL
            expected = self.critical_c
        elif temperature_c >= self.warning_c:
            severity = AnomalySeverity.WARNING
            expected = self.warning_c
        else:
            return None
        return self._emit(Anomaly(
            anomaly_type=AnomalyType.THERMAL, subject=resource, layer=self.layer,
            severity=severity, time=time, observed=temperature_c, expected=expected))


class SensorQualityMonitor(Monitor):
    """Data-quality assessment for environmental sensors.

    The paper argues self-diagnosis "need[s] to be extended towards the data
    quality assessment for environmental sensors (e.g. cameras, LiDAR-,
    RADAR-sensors)" — this monitor tracks a continuous quality score in
    [0, 1] per sensor and flags degradation below a threshold.
    """

    def __init__(self, name: str, layer: str = "ability", degraded_threshold: float = 0.7,
                 failed_threshold: float = 0.3,
                 registry: Optional[MetricRegistry] = None) -> None:
        super().__init__(name, layer, registry)
        if not 0 <= failed_threshold < degraded_threshold <= 1:
            raise ValueError("need 0 <= failed < degraded <= 1")
        self.degraded_threshold = degraded_threshold
        self.failed_threshold = failed_threshold

    def observe(self, time: float, sensor: str, quality: float) -> Optional[Anomaly]:
        if not self.enabled:
            return None
        self.registry.sample(time, sensor, "quality", quality)
        if quality <= self.failed_threshold:
            severity = AnomalySeverity.CRITICAL
            expected = self.failed_threshold
        elif quality <= self.degraded_threshold:
            severity = AnomalySeverity.WARNING
            expected = self.degraded_threshold
        else:
            return None
        return self._emit(Anomaly(
            anomaly_type=AnomalyType.SENSOR_DEGRADATION, subject=sensor, layer=self.layer,
            severity=severity, time=time, observed=quality, expected=expected))


class MonitorSuite:
    """A named collection of monitors sharing one metric registry.

    ``MonitorSuite`` plays the role of the *Application Monitor* and
    *Platform Monitor* boxes in Fig. 1: the awareness loop drains it once per
    cycle to obtain all fresh anomalies across layers.
    """

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry or MetricRegistry()
        self._monitors: Dict[str, Monitor] = {}

    def add(self, monitor: Monitor) -> Monitor:
        if monitor.name in self._monitors:
            raise ValueError(f"duplicate monitor {monitor.name!r}")
        monitor.registry = self.registry
        self._monitors[monitor.name] = monitor
        return monitor

    def get(self, name: str) -> Monitor:
        try:
            return self._monitors[name]
        except KeyError as exc:
            raise KeyError(f"unknown monitor {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self._monitors

    def __len__(self) -> int:
        return len(self._monitors)

    def monitors(self) -> List[Monitor]:
        return list(self._monitors.values())

    def drain(self) -> List[Anomaly]:
        """Collect anomalies from every monitor, ordered by time then severity."""
        anomalies: List[Anomaly] = []
        for monitor in self._monitors.values():
            anomalies.extend(monitor.drain())
        anomalies.sort(key=lambda a: (a.time, -int(a.severity), a.subject))
        return anomalies

    def disable(self, name: str) -> None:
        self.get(name).enabled = False

    def enable(self, name: str) -> None:
        self.get(name).enabled = True
