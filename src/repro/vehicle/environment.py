"""Environment model: weather, temperature and surrounding traffic.

Section V's examples hinge on environmental effects the system cannot fully
anticipate: ambient temperature as a common-cause fault, dense fog degrading
perception, and uncertain weather along a route.  The environment model
provides these effects as continuous fields over time that the sensors,
thermal model and route planner sample.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.random import SeededRNG


class WeatherCondition(enum.Enum):
    """Coarse weather classes used by sensors and the route planner."""

    CLEAR = "clear"
    RAIN = "rain"
    DENSE_FOG = "dense_fog"
    SNOW = "snow"


@dataclass
class Weather:
    """Weather state at one point in time/space.

    ``visibility_m`` is the meteorological visibility that optical sensors
    depend on; ``friction_factor`` scales the achievable tyre friction;
    ``precipitation`` in [0, 1] degrades radar performance mildly.
    """

    condition: WeatherCondition = WeatherCondition.CLEAR
    visibility_m: float = 10_000.0
    friction_factor: float = 1.0
    precipitation: float = 0.0
    ambient_temperature_c: float = 20.0

    def __post_init__(self) -> None:
        if self.visibility_m <= 0:
            raise ValueError("visibility must be positive")
        if not 0.0 < self.friction_factor <= 1.0:
            raise ValueError("friction factor must be in (0, 1]")
        if not 0.0 <= self.precipitation <= 1.0:
            raise ValueError("precipitation must be in [0, 1]")

    @classmethod
    def clear(cls) -> "Weather":
        return cls()

    @classmethod
    def rain(cls, intensity: float = 0.5) -> "Weather":
        intensity = min(max(intensity, 0.0), 1.0)
        return cls(condition=WeatherCondition.RAIN,
                   visibility_m=max(300.0, 5000.0 * (1.0 - 0.8 * intensity)),
                   friction_factor=1.0 - 0.3 * intensity,
                   precipitation=intensity,
                   ambient_temperature_c=12.0)

    @classmethod
    def dense_fog(cls, visibility_m: float = 60.0) -> "Weather":
        return cls(condition=WeatherCondition.DENSE_FOG,
                   visibility_m=visibility_m,
                   friction_factor=0.95,
                   precipitation=0.1,
                   ambient_temperature_c=8.0)

    @classmethod
    def snow(cls, intensity: float = 0.5) -> "Weather":
        intensity = min(max(intensity, 0.0), 1.0)
        return cls(condition=WeatherCondition.SNOW,
                   visibility_m=max(150.0, 2000.0 * (1.0 - 0.8 * intensity)),
                   friction_factor=max(0.25, 1.0 - 0.6 * intensity),
                   precipitation=intensity,
                   ambient_temperature_c=-3.0)


@dataclass
class LeadVehicle:
    """A vehicle ahead of the ego vehicle in the same lane."""

    name: str
    position_m: float
    speed_mps: float
    speed_profile: Optional[Callable[[float], float]] = None

    def step(self, dt: float, time: float) -> None:
        if self.speed_profile is not None:
            self.speed_mps = max(0.0, self.speed_profile(time))
        self.position_m += self.speed_mps * dt

    def gap_to(self, ego_position_m: float) -> float:
        """Bumper-to-bumper gap to the ego vehicle (positive if ahead)."""
        return self.position_m - ego_position_m


class Environment:
    """The world the ego vehicle operates in.

    Holds the current weather, an ambient-temperature profile and the lead
    vehicles, and advances them in lock-step with the vehicle dynamics.
    """

    def __init__(self, weather: Optional[Weather] = None,
                 rng: Optional[SeededRNG] = None) -> None:
        self.weather = weather or Weather.clear()
        self.rng = rng or SeededRNG(0)
        self.time = 0.0
        self._lead_vehicles: Dict[str, LeadVehicle] = {}
        self._temperature_profile: Optional[Callable[[float], float]] = None
        self._weather_schedule: List[tuple[float, Weather]] = []

    # -- traffic --------------------------------------------------------------------

    def add_lead_vehicle(self, vehicle: LeadVehicle) -> LeadVehicle:
        if vehicle.name in self._lead_vehicles:
            raise ValueError(f"duplicate lead vehicle {vehicle.name!r}")
        self._lead_vehicles[vehicle.name] = vehicle
        return vehicle

    def lead_vehicle(self, name: str) -> LeadVehicle:
        return self._lead_vehicles[name]

    def lead_vehicles(self) -> List[LeadVehicle]:
        return list(self._lead_vehicles.values())

    def closest_lead(self, ego_position_m: float) -> Optional[LeadVehicle]:
        ahead = [v for v in self._lead_vehicles.values() if v.position_m >= ego_position_m]
        if not ahead:
            return None
        return min(ahead, key=lambda v: v.position_m - ego_position_m)

    # -- environmental fields ----------------------------------------------------------

    def set_temperature_profile(self, profile: Callable[[float], float]) -> None:
        """Ambient temperature as a function of time (the thermal scenario's
        heat-up ramp)."""
        self._temperature_profile = profile

    def schedule_weather(self, at_time: float, weather: Weather) -> None:
        """Switch to the given weather at the given simulation time."""
        self._weather_schedule.append((at_time, weather))
        self._weather_schedule.sort(key=lambda item: item[0])

    @property
    def ambient_temperature_c(self) -> float:
        if self._temperature_profile is not None:
            return self._temperature_profile(self.time)
        return self.weather.ambient_temperature_c

    # -- time ---------------------------------------------------------------------------

    def step(self, dt: float) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        self.time += dt
        while self._weather_schedule and self._weather_schedule[0][0] <= self.time:
            _, weather = self._weather_schedule.pop(0)
            self.weather = weather
        for vehicle in self._lead_vehicles.values():
            vehicle.step(dt, self.time)
