"""CAN bus substrate and virtualized CAN controller (Section III, Fig. 2).

The paper's quantitative evaluation concerns a hardware-virtualized CAN
controller split into a physical function (PF) and per-VM virtual functions
(VFs).  We reproduce it with a discrete-event CAN bus model (priority-based
arbitration, bit-accurate frame lengths), a conventional controller model,
the PF/VF virtualization layer with a calibrated latency model, and an
analytical FPGA resource model used for the break-even analysis (E3).
"""

from repro.can.frame import CanFrame, FrameType, frame_bit_length
from repro.can.bus import CanBus, BusError, BusStatistics
from repro.can.controller import CanController, TxRequest, RxMessage, AcceptanceFilter
from repro.can.virtualization import (
    VirtualFunction,
    PhysicalFunction,
    VirtualizedCanController,
    VirtualizationLatencyModel,
    TxSchedulingPolicy,
)
from repro.can.resources import FpgaResourceModel, ResourceEstimate, break_even_vms

__all__ = [
    "CanFrame",
    "FrameType",
    "frame_bit_length",
    "CanBus",
    "BusError",
    "BusStatistics",
    "CanController",
    "TxRequest",
    "RxMessage",
    "AcceptanceFilter",
    "VirtualFunction",
    "PhysicalFunction",
    "VirtualizedCanController",
    "VirtualizationLatencyModel",
    "TxSchedulingPolicy",
    "FpgaResourceModel",
    "ResourceEstimate",
    "break_even_vms",
]
