"""Fleet-scale update campaigns (the MCC at production scale).

The paper's Multi-Change Controller admits in-field updates per vehicle; a
production deployment serves *fleets* — the same logical update rolled out to
many vehicles with heterogeneous platform models.  This package provides the
two halves of that workload:

* :mod:`repro.fleet.vehicle` — deterministic generation of a heterogeneous
  fleet (variant-clustered platforms, scaled WCETs, differing CAN topologies
  and baseline component sets), each vehicle with its own MCC.
* :mod:`repro.fleet.campaign` — the staged rollout description: canary and
  percentage waves, batched admission through a shared analysis cache and
  the incremental CPA engine, per-vehicle monitor/deviation feedback between
  waves, and halt/rollback when a wave's failure rate crosses the policy
  threshold.
* :mod:`repro.fleet.engine` — the re-entrant wave stepper executing a
  campaign one wave at a time (``Campaign.run()`` is a thin loop over it;
  the admission service interleaves many engines), with wave-boundary
  checkpointing.
* :mod:`repro.fleet.adversity` — hostile and degraded-world perturbations
  of the campaign loop: lossy OTA delivery with retry/straggler waves,
  compromised vehicles forging deviation reports (graded and discounted
  through the IDS), and thermal throttling inflating admission WCETs.

Scenarios E10 (``repro.scenarios.fleet_campaign``) and E14–E16
(``repro.scenarios.adversity_campaigns``) wire these into the experiment
registry.
"""

from repro.fleet.vehicle import (
    FleetSpec,
    FleetVehicle,
    VehicleState,
    VehicleVariant,
    build_vehicle_platform,
    generate_fleet,
    generate_variants,
    variant_contracts,
)
from repro.fleet.adversity import (
    MONITOR_PEER,
    AdversityModel,
    IntrusionAdversity,
    LossyDeliveryAdversity,
    ThermalAdversity,
)
from repro.fleet.campaign import (
    Campaign,
    CampaignCheckpoint,
    CampaignError,
    CampaignResult,
    WavePolicy,
    WaveRecord,
    plan_waves,
)
from repro.fleet.engine import (
    CampaignEngine,
    CampaignState,
)
from repro.fleet.shard import (
    ShardItem,
    ShardResult,
    ShardTask,
    ShardVerdict,
    execute_shard,
    plan_shards,
)

__all__ = [
    "MONITOR_PEER",
    "AdversityModel",
    "IntrusionAdversity",
    "LossyDeliveryAdversity",
    "ThermalAdversity",
    "FleetSpec",
    "FleetVehicle",
    "VehicleState",
    "VehicleVariant",
    "build_vehicle_platform",
    "generate_fleet",
    "generate_variants",
    "variant_contracts",
    "Campaign",
    "CampaignCheckpoint",
    "CampaignEngine",
    "CampaignError",
    "CampaignResult",
    "CampaignState",
    "WavePolicy",
    "WaveRecord",
    "plan_waves",
    "ShardItem",
    "ShardResult",
    "ShardTask",
    "ShardVerdict",
    "execute_shard",
    "plan_shards",
]
