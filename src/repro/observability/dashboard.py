"""Static HTML fleet dashboard, rendered offline with zero dependencies.

``python -m repro.experiments report`` folds three machine-readable record
families into one self-contained HTML page:

* **campaign run records** (``run --output`` files) — admission funnels,
  per-wave outcome stacks and rejection-reason breakdowns (including the
  distributed viewpoint's ``rejected_distributed_only`` exclusives);
* **tracer files** (:func:`~repro.observability.tracer.load_trace`) —
  per-wave cache-efficiency trends and admission latencies, via the same
  folds as :mod:`repro.observability.metrics_bridge`;
* **benchmark records** (``benchmarks/records/BENCH_*.json``) — the
  headline speedup trajectory from
  :func:`~repro.experiments.bench_history.bench_trajectory`.

The page is a single file: inline CSS, inline SVG charts, the system sans,
no scripts and no network fetches — it renders identically from a CI
artifact, a mail attachment or ``file://``.  Charts carry hover tooltips
via SVG ``<title>`` elements and every figure ships its data table, so the
numbers survive printing, forced-colors mode and screen readers.  Colors
are CSS custom properties with light and dark values (the validated
reference palette), so the page follows ``prefers-color-scheme``.

Like the metrics bridge, this module never imports the campaign engine —
it consumes the plain dicts the record files already contain.
"""

from __future__ import annotations

import html
import math
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.observability.metrics_bridge import (cache_efficiency,
                                                wave_latencies)

#: Campaign run records beyond this many get the table, not a chart each.
MAX_CAMPAIGN_CHARTS = 6
#: Series beyond the first four fold into the trajectory table (the
#: reference palette validates four adjacent categorical slots).
MAX_TRAJECTORY_SERIES = 4

_WIDTH = 720
_GUTTER = 170
_PLOT_W = 500
_BAR_H = 18
_PITCH = 26
_ROUND = 4

# Fixed categorical slot order (reference palette); never cycled.
_SLOTS = ("var(--series-1)", "var(--series-2)", "var(--series-3)",
          "var(--series-4)")


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _fmt(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 100 or value == int(value):
            return f"{value:.0f}"
        return f"{value:.3g}"
    return str(value)


def _axis(maximum: float) -> Tuple[float, List[float]]:
    """Nice axis top and 5 tick values (0 included) covering ``maximum``."""
    if maximum <= 0:
        maximum = 1.0
    raw = maximum / 4
    magnitude = 10.0 ** math.floor(math.log10(raw))
    step = magnitude
    for multiple in (1.0, 2.0, 2.5, 5.0, 10.0):
        step = multiple * magnitude
        if step * 4 >= maximum:
            break
    return step * 4, [step * index for index in range(5)]


def _bar_end_path(x: float, y: float, width: float, height: float) -> str:
    """A left-anchored bar with only its data end rounded (4px), square at
    the baseline."""
    radius = min(_ROUND, width, height / 2)
    return (f"M{x:.1f},{y:.1f} h{width - radius:.1f} "
            f"a{radius},{radius} 0 0 1 {radius},{radius} "
            f"v{height - 2 * radius:.1f} "
            f"a{radius},{radius} 0 0 1 -{radius},{radius} "
            f"h-{width - radius:.1f} z")


def _grid(ticks: Sequence[float], top: float, height: float,
          fmt=None) -> List[str]:
    fmt = fmt or _fmt
    parts = []
    for tick in ticks:
        x = _GUTTER + _PLOT_W * (tick / top if top else 0.0)
        parts.append(f'<line class="grid" x1="{x:.1f}" y1="0" '
                     f'x2="{x:.1f}" y2="{height - 16:.1f}"/>')
        parts.append(f'<text class="tick" x="{x:.1f}" '
                     f'y="{height - 4:.1f}" text-anchor="middle">'
                     f'{_esc(fmt(tick))}</text>')
    return parts


def _hbar_chart(rows: Sequence[Tuple[str, float, str]],
                color: str = _SLOTS[0], fmt=None) -> str:
    """Horizontal bars for one measure: ``rows`` of (label, value, hover)."""
    fmt = fmt or _fmt
    height = len(rows) * _PITCH + 20
    top, ticks = _axis(max((value for _, value, _ in rows), default=1.0))
    parts = [f'<svg role="img" viewBox="0 0 {_WIDTH} {height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    parts.extend(_grid(ticks, top, height, fmt))
    for index, (label, value, hover) in enumerate(rows):
        y = index * _PITCH + (_PITCH - _BAR_H) / 2
        width = _PLOT_W * (value / top if top else 0.0)
        parts.append(f'<text class="lbl" x="{_GUTTER - 8}" '
                     f'y="{y + _BAR_H - 4:.1f}" text-anchor="end">'
                     f'{_esc(label)}</text>')
        if width > 0.5:
            parts.append(f'<path d="{_bar_end_path(_GUTTER, y, width, _BAR_H)}"'
                         f' fill="{color}"><title>{_esc(hover)}</title></path>')
        parts.append(f'<text class="val" x="{_GUTTER + width + 6:.1f}" '
                     f'y="{y + _BAR_H - 4:.1f}">{_esc(fmt(value))}</text>')
    parts.append("</svg>")
    return "".join(parts)


def _stacked_chart(rows: Sequence[Tuple[str, List[Tuple[str, float, str]]]],
                   total_max: float) -> str:
    """Per-row stacked horizontal bars.

    ``rows`` pairs a row label with ordered segments of (hover, value,
    color); segments are separated by 2px surface gaps and only the last
    segment carries the rounded data end.
    """
    height = len(rows) * _PITCH + 20
    top, ticks = _axis(total_max)
    parts = [f'<svg role="img" viewBox="0 0 {_WIDTH} {height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    parts.extend(_grid(ticks, top, height))
    for index, (label, segments) in enumerate(rows):
        y = index * _PITCH + (_PITCH - _BAR_H) / 2
        parts.append(f'<text class="lbl" x="{_GUTTER - 8}" '
                     f'y="{y + _BAR_H - 4:.1f}" text-anchor="end">'
                     f'{_esc(label)}</text>')
        x = float(_GUTTER)
        drawn = [(hover, value, color) for hover, value, color in segments
                 if value > 0]
        for position, (hover, value, color) in enumerate(drawn):
            width = _PLOT_W * (value / top if top else 0.0)
            if width < 1.0:
                width = 1.0
            if position == len(drawn) - 1:
                shape = (f'<path d="{_bar_end_path(x, y, width, _BAR_H)}" '
                         f'fill="{color}">')
            else:
                shape = (f'<rect x="{x:.1f}" y="{y:.1f}" width="{width:.1f}" '
                         f'height="{_BAR_H}" fill="{color}">')
            parts.append(f'{shape}<title>{_esc(hover)}</title>'
                         f'{"</path>" if position == len(drawn) - 1 else "</rect>"}')
            x += width + 2  # 2px surface gap between stacked fills
    parts.append("</svg>")
    return "".join(parts)


def _line_chart(categories: Sequence[str],
                series: Sequence[Tuple[str, str, Dict[str, float]]],
                fmt=None, y_top: Optional[float] = None) -> str:
    """2px lines with 8px markers over shared x categories.

    ``series`` entries are (name, color, {category: value}).
    """
    fmt = fmt or _fmt
    height = 180
    plot_h = height - 28
    values = [value for _, _, points in series for value in points.values()]
    top, ticks = _axis(max(values, default=1.0))
    if y_top is not None:
        top = y_top
        ticks = [top * index / 4 for index in range(5)]
    parts = [f'<svg role="img" viewBox="0 0 {_WIDTH} {height}" '
             f'xmlns="http://www.w3.org/2000/svg">']
    for tick in ticks:
        y = plot_h - plot_h * (tick / top if top else 0.0) + 8
        parts.append(f'<line class="grid" x1="{_GUTTER}" y1="{y:.1f}" '
                     f'x2="{_GUTTER + _PLOT_W}" y2="{y:.1f}"/>')
        parts.append(f'<text class="tick" x="{_GUTTER - 8}" y="{y + 4:.1f}" '
                     f'text-anchor="end">{_esc(fmt(tick))}</text>')

    def x_of(index: int) -> float:
        if len(categories) <= 1:
            return _GUTTER + _PLOT_W / 2
        return _GUTTER + _PLOT_W * index / (len(categories) - 1)

    label_step = max(1, len(categories) // 8)
    for index, category in enumerate(categories):
        if index % label_step == 0 or index == len(categories) - 1:
            parts.append(f'<text class="tick" x="{x_of(index):.1f}" '
                         f'y="{height - 4}" text-anchor="middle">'
                         f'{_esc(category)}</text>')
    for name, color, points in series:
        coords = [(x_of(index), plot_h - plot_h *
                   (points[category] / top if top else 0.0) + 8)
                  for index, category in enumerate(categories)
                  if category in points]
        if len(coords) > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in coords)
            parts.append(f'<polyline class="line" points="{path}" '
                         f'stroke="{color}"/>')
        for (x, y), category in zip(
                coords, [c for c in categories if c in points]):
            parts.append(
                f'<circle cx="{x:.1f}" cy="{y:.1f}" r="4" fill="{color}" '
                f'stroke="var(--surface-1)" stroke-width="2">'
                f'<title>{_esc(name)} — {_esc(category)}: '
                f'{_esc(fmt(points[category]))}</title></circle>')
    parts.append("</svg>")
    return "".join(parts)


def _legend(entries: Sequence[Tuple[str, str]]) -> str:
    chips = "".join(
        f'<span class="chip"><span class="swatch" '
        f'style="background:{color}"></span>{_esc(label)}</span>'
        for label, color in entries)
    return f'<div class="legend">{chips}</div>'


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    head = "".join(f"<th>{_esc(header)}</th>" for header in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(_fmt(cell))}</td>" for cell in row)
        + "</tr>" for row in rows)
    return (f'<details class="tbl"><summary>Data table</summary>'
            f'<table><thead><tr>{head}</tr></thead>'
            f'<tbody>{body}</tbody></table></details>')


def _figure(title: str, chart: str, caption: str = "",
            legend: str = "", table: str = "") -> str:
    caption_html = f'<p class="cap">{_esc(caption)}</p>' if caption else ""
    return (f'<section><h2>{_esc(title)}</h2>{caption_html}{legend}'
            f'<figure>{chart}</figure>{table}</section>')


def _tiles(entries: Sequence[Tuple[str, str, str]]) -> str:
    cells = "".join(
        f'<div class="tile"><div class="tile-v">{_esc(value)}</div>'
        f'<div class="tile-l">{_esc(label)}</div>'
        f'<div class="tile-s">{_esc(sub)}</div></div>'
        for label, value, sub in entries)
    return f'<section class="tiles">{cells}</section>'


# ---------------------------------------------------------------------------
# Record extraction.
# ---------------------------------------------------------------------------

def flatten_result_documents(documents: Iterable[Any]) -> List[Dict[str, Any]]:
    """Run records of one or more ``run --output`` documents, flattened."""
    records: List[Dict[str, Any]] = []
    for document in documents:
        for result in document if isinstance(document, list) else [document]:
            if isinstance(result, dict):
                records.extend(entry for entry in result.get("records", [])
                               if isinstance(entry, dict))
    return records


def _campaign_records(run_records: Sequence[Dict[str, Any]]
                      ) -> List[Dict[str, Any]]:
    return [record for record in run_records
            if isinstance(record.get("metrics", {}).get("waves"), list)]


def _run_label(record: Dict[str, Any]) -> str:
    return str(record.get("run_id")
               or record.get("experiment")
               or record.get("scenario") or "run")


def _funnel_section(campaigns: Sequence[Dict[str, Any]]) -> str:
    rows: List[Tuple[str, float, str]] = []
    table_rows: List[List[Any]] = []
    for record in campaigns[:MAX_CAMPAIGN_CHARTS]:
        metrics = record["metrics"]
        waves = [dict(wave) for wave in metrics["waves"]]
        staged = sum(int(wave.get("size", 0)) for wave in waves)
        undelivered = sum(int(wave.get("undelivered", 0)) for wave in waves)
        admitted = int(metrics.get("admitted", 0))
        label = _run_label(record)
        delivered = staged - undelivered
        rows.extend([
            (f"{label} · staged", float(staged),
             f"{label}: {staged} vehicle slots staged across "
             f"{len(waves)} waves"),
            (f"{label} · delivered", float(delivered),
             f"{label}: {delivered} deliveries succeeded "
             f"({undelivered} dropped)"),
            (f"{label} · admitted", float(admitted),
             f"{label}: {admitted} admissions passed the acceptance test"),
        ])
        table_rows.append([label, staged, delivered, admitted,
                           metrics.get("rejected", 0),
                           metrics.get("halted", False)])
    chart = _hbar_chart(rows)
    return _figure(
        "Admission funnel", chart,
        caption="Staged wave slots, successful deliveries and admitted "
                "vehicles per campaign run — one ordinal measure, so all "
                "stages share the sequential hue.",
        table=_table(["run", "staged", "delivered", "admitted", "rejected",
                      "halted"], table_rows))


def _waves_section(campaigns: Sequence[Dict[str, Any]]) -> str:
    segments = (("admitted", _SLOTS[0]), ("rejected", _SLOTS[1]),
                ("deviating", _SLOTS[2]), ("undelivered", "var(--muted)"))
    parts: List[str] = []
    for record in campaigns[:MAX_CAMPAIGN_CHARTS]:
        label = _run_label(record)
        waves = [dict(wave) for wave in record["metrics"]["waves"]]
        rows: List[Tuple[str, List[Tuple[str, float, str]]]] = []
        table_rows: List[List[Any]] = []
        for wave in waves:
            name = f"wave {wave.get('index', '?')} ({wave.get('kind', '?')})"
            rows.append((name, [
                (f"{name}: {wave.get(key, 0)} {key}",
                 float(wave.get(key, 0)), color)
                for key, color in segments]))
            table_rows.append([wave.get("index", "?"), wave.get("kind", "?"),
                               wave.get("size", 0), wave.get("admitted", 0),
                               wave.get("rejected", 0),
                               wave.get("deviating", 0),
                               wave.get("undelivered", 0),
                               wave.get("rolled_back", 0),
                               wave.get("failure_rate", 0.0)])
        total_max = max((float(wave.get("size", 0)) for wave in waves),
                        default=1.0)
        chart = _stacked_chart(rows, total_max)
        parts.append(_figure(
            f"Wave outcomes — {label}", chart,
            legend=_legend([(key, color) for key, color in segments]),
            table=_table(["wave", "kind", "size", "admitted", "rejected",
                          "deviating", "undelivered", "rolled_back",
                          "failure_rate"], table_rows)))
    dropped = len(campaigns) - min(len(campaigns), MAX_CAMPAIGN_CHARTS)
    if dropped > 0:
        parts.append(f'<p class="cap">{dropped} further campaign run(s) not '
                     f'charted — see the admission funnel table.</p>')
    return "".join(parts)


def _rejections_section(run_records: Sequence[Dict[str, Any]]) -> str:
    reasons: Dict[str, int] = {}
    sources = 0
    for record in run_records:
        metrics = record.get("metrics", {})
        viewpoints = metrics.get("rejected_by_viewpoint")
        if not isinstance(viewpoints, dict):
            continue
        sources += 1
        for viewpoint, count in viewpoints.items():
            reasons[str(viewpoint)] = reasons.get(str(viewpoint), 0) + int(count)
        distributed = metrics.get("rejected_distributed_only")
        if isinstance(distributed, (int, float)) and distributed:
            reasons["distributed only"] = (reasons.get("distributed only", 0)
                                           + int(distributed))
    if not reasons:
        return ""
    ordered = sorted(reasons.items(), key=lambda item: -item[1])
    rows = [(reason, float(count),
             f"{count} rejections attributed to the {reason} viewpoint")
            for reason, count in ordered]
    return _figure(
        "Rejection reasons", _hbar_chart(rows, color=_SLOTS[1]),
        caption=f"Rejections by vetoing viewpoint across {sources} run(s); "
                "'distributed only' counts updates every local viewpoint "
                "accepted but the cross-vehicle analysis refused.",
        table=_table(["viewpoint", "rejections"],
                     [[reason, count] for reason, count in ordered]))


def _trace_sections(trace: Sequence[Dict[str, Any]]) -> str:
    parts: List[str] = []
    telemetry = [event for event in trace
                 if event.get("event") == "shard.execute"]
    efficiency = cache_efficiency(telemetry)
    if efficiency:
        categories = [str(wave) for wave in sorted(efficiency)]
        points = {str(wave): rate * 100.0
                  for wave, rate in efficiency.items()}
        chart = _line_chart(categories,
                            [("cache hit rate", _SLOTS[0], points)],
                            fmt=lambda v: f"{v:.0f}%", y_top=100.0)
        parts.append(_figure(
            "Cache efficiency by wave", chart,
            caption="Shared analysis-cache hit rate over each wave's shard "
                    "lookups (traced shard.execute events).",
            table=_table(["wave", "hit rate"],
                         [[wave, f"{rate:.1%}"] for wave, rate
                          in sorted(efficiency.items())])))
    latencies = wave_latencies(trace)
    if latencies:
        categories = [str(wave) for wave in sorted(latencies)]
        points = {str(wave): latency for wave, latency
                  in latencies.items()}
        chart = _line_chart(categories,
                            [("admission latency", _SLOTS[0], points)],
                            fmt=lambda v: f"{v:.3g}s")
        parts.append(_figure(
            "Admission latency by wave", chart,
            caption="Wall time between each wave.begin and wave.end trace "
                    "event (absent from deterministic traces, which carry "
                    "no wall clock).",
            table=_table(["wave", "latency"],
                         [[wave, f"{latency:.4f} s"] for wave, latency
                          in sorted(latencies.items())])))
    if trace:
        counts: Dict[str, int] = {}
        for event in trace:
            name = str(event.get("event", "?"))
            counts[name] = counts.get(name, 0) + 1
        parts.append(_figure(
            "Trace event volume", "",
            table=_table(["event", "count"],
                         sorted(counts.items(), key=lambda item: -item[1]))))
    return "".join(parts)


def _bench_section(bench_records: Sequence[Dict[str, Any]]) -> str:
    # Imported here, not at module level: the campaign engine loads this
    # package, and repro.experiments loads the scenarios that load the
    # campaign engine — a top-level import would close that cycle.
    from repro.experiments.bench_history import bench_trajectory
    trajectory = bench_trajectory(list(bench_records))
    series = trajectory["series"]
    if not series:
        return ""
    parts: List[str] = []
    multi = [entry for entry in series if len(entry["points"]) > 1]
    if multi:
        charted = multi[:MAX_TRAJECTORY_SERIES]
        categories: List[str] = []
        for entry in charted:
            for point in entry["points"]:
                if point["created_utc"] not in categories:
                    categories.append(point["created_utc"])
        categories.sort()
        short = [category[:10] for category in categories]
        chart_series = []
        for slot, entry in enumerate(charted):
            points = {point["created_utc"][:10]: point["value"]
                      for point in entry["points"]}
            chart_series.append((f"{entry['bench']} [{entry['mode']}]",
                                 _SLOTS[slot], points))
        legend = _legend([(name, color)
                          for name, color, _ in chart_series])
        parts.append(_figure(
            "Speedup trajectory", _line_chart(short, chart_series,
                                              fmt=lambda v: f"{v:.3g}x"),
            caption="Headline speedup of each benchmark over its recorded "
                    "runs (quick-mode smokes plotted separately from "
                    "full-fidelity runs).",
            legend=legend))
        if len(multi) > MAX_TRAJECTORY_SERIES:
            parts.append(f'<p class="cap">{len(multi) - MAX_TRAJECTORY_SERIES}'
                         ' further trajectories not charted — see the '
                         'table.</p>')
    latest = [(f"{entry['bench']} [{entry['mode']}]",
               entry["points"][-1]["value"],
               f"{entry['bench']} ({entry['mode']}): "
               f"{entry['points'][-1]['value']:.2f}x "
               f"{entry['points'][-1]['metric']}")
              for entry in series]
    table_rows = [[f"{entry['bench']} [{entry['mode']}]",
                   point["created_utc"], point["metric"],
                   f"{point['value']:.3f}"]
                  for entry in series for point in entry["points"]]
    parts.append(_figure(
        "Latest benchmark speedups",
        _hbar_chart(latest, fmt=lambda v: f"{v:.3g}x"),
        caption="Most recent headline speedup per benchmark and fidelity "
                "mode.",
        table=_table(["bench", "recorded", "metric", "speedup"], table_rows)))
    if trajectory["unplotted"]:
        parts.append('<p class="cap">No headline metric (not plotted): '
                     f'{_esc(", ".join(trajectory["unplotted"]))}.</p>')
    return "".join(parts)


def _overview_tiles(campaigns: Sequence[Dict[str, Any]],
                    run_records: Sequence[Dict[str, Any]],
                    trace: Sequence[Dict[str, Any]],
                    bench_records: Sequence[Dict[str, Any]]) -> str:
    admitted = sum(int(record["metrics"].get("admitted", 0))
                   for record in campaigns)
    rejected = sum(int(record["metrics"].get("rejected", 0))
                   for record in campaigns)
    halted = sum(1 for record in campaigns
                 if record["metrics"].get("halted"))
    entries = [
        ("campaign runs", str(len(campaigns)),
         f"of {len(run_records)} run records"),
        ("vehicles admitted", str(admitted),
         f"{rejected} rejected"),
        ("halted campaigns", str(halted),
         "rollout guard triggered" if halted else "no halts"),
    ]
    if trace:
        entries.append(("trace events", str(len(trace)), "from tracer files"))
    if bench_records:
        entries.append(("bench records", str(len(bench_records)),
                        "BENCH_*.json"))
    return _tiles(entries)


_STYLE = """
:root {
  color-scheme: light dark;
  --surface-1: #fcfcfb; --plane: #f9f9f7;
  --ink: #0b0b0b; --ink-2: #52514e; --muted: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --series-1: #2a78d6; --series-2: #eb6834;
  --series-3: #1baf7a; --series-4: #eda100;
  --border: rgba(11,11,11,0.10);
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface-1: #1a1a19; --plane: #0d0d0d;
    --ink: #ffffff; --ink-2: #c3c2b7;
    --grid: #2c2c2a; --baseline: #383835;
    --series-1: #3987e5; --series-2: #d95926;
    --series-3: #199e70; --series-4: #c98500;
    --border: rgba(255,255,255,0.10);
  }
}
body { margin: 0; padding: 24px; background: var(--plane); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif; }
main { max-width: 860px; margin: 0 auto; }
h1 { font-size: 22px; margin: 0 0 4px; }
h2 { font-size: 16px; margin: 0 0 8px; }
.sub, .cap { color: var(--ink-2); margin: 0 0 12px; font-size: 13px; }
section { background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin: 16px 0; }
figure { margin: 8px 0 0; }
svg { width: 100%; height: auto; display: block; }
svg text { font: 11px system-ui, -apple-system, "Segoe UI", sans-serif;
  fill: var(--ink-2); }
svg .val { fill: var(--ink); font-variant-numeric: tabular-nums; }
svg .tick { fill: var(--muted); font-variant-numeric: tabular-nums; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .line { fill: none; stroke-width: 2; stroke-linejoin: round; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; background: none;
  border: none; padding: 0; }
.tile { flex: 1 1 140px; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; padding: 12px 16px; }
.tile-v { font-size: 24px; font-weight: 600; }
.tile-l { color: var(--ink-2); font-size: 13px; }
.tile-s { color: var(--muted); font-size: 12px; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 4px 0;
  font-size: 12px; color: var(--ink-2); }
.chip { display: inline-flex; align-items: center; gap: 6px; }
.swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.tbl { margin-top: 10px; font-size: 13px; }
.tbl summary { color: var(--ink-2); cursor: pointer; }
table { border-collapse: collapse; margin-top: 8px; width: 100%; }
th, td { text-align: left; padding: 4px 10px 4px 0;
  border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
th { color: var(--ink-2); font-weight: 600; }
footer { color: var(--muted); font-size: 12px; margin: 24px 0 8px; }
"""


def render_dashboard(run_records: Optional[Sequence[Dict[str, Any]]] = None,
                     trace: Optional[Sequence[Dict[str, Any]]] = None,
                     bench_records: Optional[Sequence[Dict[str, Any]]] = None,
                     title: str = "Fleet campaign observability") -> str:
    """Render the complete dashboard page; always returns valid HTML.

    All inputs are optional — the page renders whatever record families it
    is given and says plainly which are absent, so a partial invocation
    (trace only, benches only) still produces a useful artifact.
    """
    run_records = list(run_records or [])
    trace = list(trace or [])
    bench_records = list(bench_records or [])
    campaigns = _campaign_records(run_records)
    body: List[str] = [_overview_tiles(campaigns, run_records, trace,
                                       bench_records)]
    if campaigns:
        body.append(_funnel_section(campaigns))
        body.append(_waves_section(campaigns))
    rejections = _rejections_section(run_records)
    if rejections:
        body.append(rejections)
    if not campaigns and not rejections:
        body.append('<section><h2>Campaigns</h2><p class="cap">No campaign '
                    'run records given — pass `--results` files written by '
                    '`run --output`.</p></section>')
    if trace:
        body.append(_trace_sections(trace))
    else:
        body.append('<section><h2>Traces</h2><p class="cap">No tracer files '
                    'given — run a campaign with a trace path and pass '
                    '`--trace`.</p></section>')
    if bench_records:
        body.append(_bench_section(bench_records))
    else:
        body.append('<section><h2>Benchmarks</h2><p class="cap">No '
                    'BENCH_*.json records found.</p></section>')
    return (
        '<!DOCTYPE html><html lang="en"><head><meta charset="utf-8">'
        '<meta name="viewport" content="width=device-width, initial-scale=1">'
        f'<title>{_esc(title)}</title><style>{_STYLE}</style></head>'
        f'<body><main><header><h1>{_esc(title)}</h1>'
        '<p class="sub">Self-contained static report — no scripts, no '
        'network. Hover marks for values; every figure ships its data '
        'table.</p></header>'
        + "".join(body) +
        '<footer>Generated by `python -m repro.experiments report`.</footer>'
        '</main></body></html>')


__all__ = ["MAX_CAMPAIGN_CHARTS", "MAX_TRAJECTORY_SERIES",
           "flatten_result_documents", "render_dashboard"]
