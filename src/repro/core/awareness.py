"""The self-awareness loop: observe, decide, act.

The loop ties the layers together at run time: every cycle it (1) collects
fresh anomalies from all registered observation sources (monitor suites, the
IDS, the ability graph, arbitrary callables), (2) refreshes the self-model
snapshot, (3) hands each anomaly to the cross-layer coordinator, and (4)
executes the chosen countermeasures.  This is the runtime embodiment of
"self-awareness refers to a system's capability to recognize its own state,
possible actions and the result of these actions" from the introduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.arbitration import CrossLayerCoordinator
from repro.core.countermeasures import Resolution
from repro.core.self_model import SelfModel, SelfModelSnapshot
from repro.monitoring.anomaly import Anomaly
from repro.monitoring.monitors import MonitorSuite

#: An observation source is any callable returning fresh anomalies.
AnomalySource = Callable[[float], List[Anomaly]]


@dataclass
class AwarenessCycleResult:
    """Everything that happened in one awareness cycle."""

    time: float
    snapshot: SelfModelSnapshot
    anomalies: List[Anomaly] = field(default_factory=list)
    resolutions: List[Resolution] = field(default_factory=list)

    @property
    def acted(self) -> bool:
        return any(r.executed for r in self.resolutions)

    def resolutions_on(self, layer_label: str) -> List[Resolution]:
        return [r for r in self.resolutions
                if r.chosen_layer is not None and r.chosen_layer.label == layer_label]


class SelfAwarenessLoop:
    """Periodic observe–decide–act loop over the self-model.

    Parameters
    ----------
    self_model:
        The shared self-representation.
    coordinator:
        The cross-layer coordinator making the decisions.
    dedup_window_s:
        Identical anomalies (same type and subject) within this window are
        reported once; monitors typically re-detect a persisting condition
        every cycle and the coordinator should not re-decide every time.
    """

    def __init__(self, self_model: SelfModel, coordinator: CrossLayerCoordinator,
                 dedup_window_s: float = 1.0) -> None:
        if dedup_window_s < 0:
            raise ValueError("dedup window must be non-negative")
        self.self_model = self_model
        self.coordinator = coordinator
        self.dedup_window_s = dedup_window_s
        self._sources: List[AnomalySource] = []
        self._suites: List[MonitorSuite] = []
        self._last_seen: Dict[tuple, float] = {}
        #: (type, subject, layer) -> severity of the anomaly already mitigated.
        #: A persisting condition that has been reacted to is not re-decided
        #: every cycle; only an *escalation* in severity re-opens it.  This is
        #: part of the "avoid forwarding ad infinitum" requirement.
        self._mitigated: Dict[tuple, int] = {}
        self.cycles: List[AwarenessCycleResult] = []

    # -- wiring --------------------------------------------------------------------------

    def add_source(self, source: AnomalySource) -> None:
        """Register a callable returning fresh anomalies each cycle."""
        self._sources.append(source)

    def add_monitor_suite(self, suite: MonitorSuite) -> None:
        self._suites.append(suite)

    # -- execution ------------------------------------------------------------------------

    def _collect(self, time: float) -> List[Anomaly]:
        anomalies: List[Anomaly] = []
        for suite in self._suites:
            anomalies.extend(suite.drain())
        for source in self._sources:
            anomalies.extend(source(time))
        return self._deduplicate(anomalies)

    def _deduplicate(self, anomalies: List[Anomaly]) -> List[Anomaly]:
        fresh: List[Anomaly] = []
        for anomaly in anomalies:
            key = (anomaly.anomaly_type, anomaly.subject, anomaly.layer)
            mitigated_severity = self._mitigated.get(key)
            if mitigated_severity is not None and int(anomaly.severity) <= mitigated_severity:
                continue
            last = self._last_seen.get(key)
            if last is not None and anomaly.time - last < self.dedup_window_s:
                continue
            self._last_seen[key] = anomaly.time
            fresh.append(anomaly)
        return fresh

    def acknowledge_recovery(self, subject: str) -> None:
        """Forget mitigations concerning the subject (e.g. after a repair), so
        future anomalies about it are decided afresh."""
        for key in [k for k in self._mitigated if k[1] == subject]:
            del self._mitigated[key]
        for key in [k for k in self._last_seen if k[1] == subject]:
            del self._last_seen[key]

    def cycle(self, time: float) -> AwarenessCycleResult:
        """Run one observe–decide–act cycle at the given time."""
        snapshot = self.self_model.snapshot(time)
        anomalies = self._collect(time)
        result = AwarenessCycleResult(time=time, snapshot=snapshot, anomalies=anomalies)
        for anomaly in anomalies:
            resolution = self.coordinator.decide_and_execute(anomaly, snapshot, time=time)
            result.resolutions.append(resolution)
            if resolution.resolved and resolution.executed:
                key = (anomaly.anomaly_type, anomaly.subject, anomaly.layer)
                self._mitigated[key] = max(self._mitigated.get(key, 0), int(anomaly.severity))
        self.cycles.append(result)
        return result

    def run(self, start: float, end: float, period: float) -> List[AwarenessCycleResult]:
        """Run cycles at a fixed period over [start, end]."""
        if period <= 0:
            raise ValueError("period must be positive")
        results: List[AwarenessCycleResult] = []
        time = start
        while time <= end + 1e-12:
            results.append(self.cycle(time))
            time += period
        return results

    # -- statistics ------------------------------------------------------------------------

    def all_resolutions(self) -> List[Resolution]:
        return [r for cycle in self.cycles for r in cycle.resolutions]

    def anomalies_observed(self) -> int:
        return sum(len(cycle.anomalies) for cycle in self.cycles)

    def first_resolution_for(self, subject: str) -> Optional[Resolution]:
        for cycle in self.cycles:
            for resolution in cycle.resolutions:
                if resolution.anomaly.subject == subject:
                    return resolution
        return None

    def time_to_mitigation(self, subject: str, onset_time: float) -> Optional[float]:
        """Delay between an injected problem's onset and the first executed
        countermeasure addressing it (the E5/E6 headline metric)."""
        for cycle in self.cycles:
            for resolution in cycle.resolutions:
                if resolution.anomaly.subject == subject and resolution.executed:
                    return max(0.0, cycle.time - onset_time)
        return None
