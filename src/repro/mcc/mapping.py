"""Mapping of components to platform resources and priority assignment.

This is the "fitting this functionality to the target platform" step of the
integration process (Section II.A): the functional architecture is turned
into a technical architecture by deciding which processing resource hosts
which component, and the implementation model is completed by assigning
scheduling priorities and resource budgets.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.contracts.model import Contract
from repro.platform.resources import Platform, ProcessingResource


class MappingError(RuntimeError):
    """Raised when no feasible mapping can be constructed."""


class MappingStrategy(enum.Enum):
    """Heuristics for placing components onto processors."""

    #: Fill processors in order (packs components tightly; leaves spare
    #: processors empty for future changes).
    FIRST_FIT = "first_fit"
    #: Place each component on the currently least-utilized processor
    #: (balances thermal load and interference).
    WORST_FIT = "worst_fit"
    #: Place each component on the processor with the smallest remaining
    #: capacity that still fits (minimizes fragmentation).
    BEST_FIT = "best_fit"


@dataclass
class MappingDecision:
    """The outcome of the mapping step for one candidate model."""

    placement: Dict[str, str]
    priorities: Dict[str, int]
    utilization: Dict[str, float]

    def processor_of(self, component: str) -> Optional[str]:
        return self.placement.get(component)


class MappingEngine:
    """Heuristic component-to-processor mapping with priority assignment.

    Parameters
    ----------
    platform:
        The target platform (processor capacities are respected).
    strategy:
        Placement heuristic.
    keep_existing:
        If True (default), components that already have a mapping in the
        candidate model keep it (minimal-change integration, as expected for
        in-field updates); only unmapped components are placed.
    """

    def __init__(self, platform: Platform,
                 strategy: MappingStrategy = MappingStrategy.FIRST_FIT,
                 keep_existing: bool = True) -> None:
        self.platform = platform
        self.strategy = strategy
        self.keep_existing = keep_existing

    # -- placement ------------------------------------------------------------------------

    def map(self, contracts: List[Contract],
            existing: Optional[Dict[str, str]] = None) -> MappingDecision:
        """Place all components and assign deadline-monotonic priorities.

        Raises :class:`MappingError` if some component cannot be placed
        within the capacity bounds.
        """
        existing = dict(existing or {})
        utilization: Dict[str, float] = {p.name: 0.0 for p in self.platform.processors()}
        placement: Dict[str, str] = {}
        #: Redundancy-group members must not share a processor (their
        #: co-location would defeat the redundancy; the safety analysis treats
        #: it as a blocking finding).
        group_processors: Dict[str, set] = {}
        group_of = {c.component: c.safety.redundancy_group for c in contracts
                    if c.safety and c.safety.redundancy_group}

        def note_placement(component: str, processor_name: str, contract: Contract) -> None:
            placement[component] = processor_name
            utilization[processor_name] += self._utilization_of(contract)
            group = group_of.get(component)
            if group:
                group_processors.setdefault(group, set()).add(processor_name)

        # Account for components that keep their existing placement.
        ordered = sorted(contracts, key=self._utilization_of, reverse=True)
        if self.keep_existing:
            for contract in contracts:
                previous = existing.get(contract.component)
                if previous is not None and previous in utilization:
                    note_placement(contract.component, previous, contract)

        for contract in ordered:
            if contract.component in placement:
                continue
            group = group_of.get(contract.component)
            excluded = group_processors.get(group, set()) if group else set()
            processor = self._choose_processor(contract, utilization, excluded)
            if processor is None and excluded:
                # Prefer separation, but a shared processor beats no mapping.
                processor = self._choose_processor(contract, utilization, set())
            if processor is None:
                raise MappingError(
                    f"no processor can host component {contract.component!r} "
                    f"(utilization {self._utilization_of(contract):.2f})")
            note_placement(contract.component, processor.name, contract)

        priorities = self._assign_priorities(contracts, placement)
        return MappingDecision(placement=placement, priorities=priorities,
                               utilization=utilization)

    def _utilization_of(self, contract: Contract) -> float:
        timing = contract.timing
        return timing.utilization if timing else 0.0

    def _choose_processor(self, contract: Contract, utilization: Dict[str, float],
                          excluded: Optional[set] = None) -> Optional[ProcessingResource]:
        demand = self._utilization_of(contract)
        isolation = contract.resources.requires_vm_isolation if contract.resources else False
        _ = isolation  # isolation constraints are handled by the hypervisor layer
        excluded = excluded or set()
        candidates: List[Tuple[float, ProcessingResource]] = []
        for processor in self.platform.processors():
            if processor.name in excluded:
                continue
            remaining = processor.capacity - utilization[processor.name]
            if demand <= remaining + 1e-12:
                candidates.append((remaining, processor))
        if not candidates:
            return None
        if self.strategy == MappingStrategy.FIRST_FIT:
            names = [p.name for p in self.platform.processors()]
            return min((p for _, p in candidates), key=lambda p: names.index(p.name))
        if self.strategy == MappingStrategy.WORST_FIT:
            return max(candidates, key=lambda item: (item[0], item[1].name))[1]
        return min(candidates, key=lambda item: (item[0], item[1].name))[1]

    # -- priorities ----------------------------------------------------------------------------

    def _assign_priorities(self, contracts: List[Contract],
                           placement: Dict[str, str]) -> Dict[str, int]:
        """Deadline-monotonic priorities per processor; ties broken by higher
        ASIL first, then by name for determinism.  Keys are task names
        (``<component>.task``) as deployed by the RTE."""
        priorities: Dict[str, int] = {}
        by_processor: Dict[str, List[Contract]] = {}
        for contract in contracts:
            if contract.timing is None:
                continue
            processor = placement.get(contract.component)
            if processor is None:
                continue
            by_processor.setdefault(processor, []).append(contract)
        for processor, hosted in by_processor.items():
            ordered = sorted(hosted, key=lambda c: (c.timing.deadline, -int(c.asil), c.component))
            for index, contract in enumerate(ordered):
                priorities[f"{contract.component}.task"] = index
        return priorities
