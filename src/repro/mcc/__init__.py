"""Multi-Change Controller (MCC) — the model domain of the CCC architecture.

"A so-called Multi-Change Controller (MCC) takes full control over the
system and platform configuration ... It performs the integration process
and ensures that a new configuration passes all necessary acceptance and
conformance tests." (Section II.A)

The MCC consumes contracts (from :mod:`repro.contracts`), gradually refines
a candidate configuration (functional architecture -> technical architecture
-> implementation mapping), runs the viewpoint analyses from
:mod:`repro.analysis` as acceptance tests, and only then hands the
configuration over to the execution domain's RTE.
"""

from repro.mcc.configuration import ChangeRequest, ChangeKind, SystemModel, IntegrationReport
from repro.mcc.mapping import MappingEngine, MappingStrategy, MappingError
from repro.mcc.acceptance import (
    AcceptanceResult,
    AcceptanceTest,
    TimingAcceptanceTest,
    DistributedTimingAcceptanceTest,
    DistributedChainSpec,
    MessageSpec,
    SafetyAcceptanceTest,
    SecurityAcceptanceTest,
    ResourceAcceptanceTest,
    default_acceptance_tests,
    tasksets_from_mapping,
)
from repro.mcc.integration import IntegrationProcess, IntegrationError
from repro.mcc.controller import MccSnapshot, MultiChangeController

__all__ = [
    "ChangeRequest",
    "ChangeKind",
    "SystemModel",
    "IntegrationReport",
    "MappingEngine",
    "MappingStrategy",
    "MappingError",
    "AcceptanceResult",
    "AcceptanceTest",
    "TimingAcceptanceTest",
    "DistributedTimingAcceptanceTest",
    "DistributedChainSpec",
    "MessageSpec",
    "SafetyAcceptanceTest",
    "SecurityAcceptanceTest",
    "ResourceAcceptanceTest",
    "default_acceptance_tests",
    "tasksets_from_mapping",
    "IntegrationProcess",
    "IntegrationError",
    "MccSnapshot",
    "MultiChangeController",
]
