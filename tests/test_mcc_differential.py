"""Differential oracle for the MCC's accept/reject logic.

The cache + incremental-engine admission stack must be *verdict-invisible*:
for any chain of change requests, an MCC running the default battery (shared
:class:`AnalysisCache`, incremental engine, warm history) must produce
exactly the verdicts of a reference MCC whose timing viewpoint re-derives
every busy window from scratch with a cold
:class:`~repro.analysis.cpa.ResponseTimeAnalysis`.

The harness drives both controllers through randomized chains of
add/update/remove requests over UUniFast-derived component sets — well over
200 randomized cases — and fails on the first diverging verdict, viewpoint
result or failed-viewpoint list.
"""

from __future__ import annotations

from typing import Dict, List

import pytest

from repro.analysis.cache import AnalysisCache
from repro.analysis.cpa import ResponseTimeAnalysis
from repro.contracts.model import (Contract, RealTimeRequirement,
                                   SafetyRequirement, SecurityRequirement)
from repro.mcc.acceptance import (AcceptanceResult, ResourceAcceptanceTest,
                                  SafetyAcceptanceTest, SecurityAcceptanceTest,
                                  tasksets_from_mapping)
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.mcc.controller import MultiChangeController
from repro.platform.resources import NetworkResource, Platform, ProcessingResource
from repro.sim.random import SeededRNG


class ColdTimingAcceptanceTest:
    """Reference timing viewpoint: from-scratch busy windows, no state."""

    viewpoint = "timing"

    def run(self, contracts, mapping, priorities, platform) -> AcceptanceResult:
        findings: List[str] = []
        metrics: Dict[str, float] = {}
        tasksets = tasksets_from_mapping(contracts, mapping, priorities)
        for processor_name, taskset in sorted(tasksets.items()):
            analysis = ResponseTimeAnalysis(taskset)
            metrics[f"{processor_name}.utilization"] = analysis.utilization()
            for task_name, result in analysis.analyse().items():
                if result.wcrt is not None:
                    metrics[f"{task_name}.wcrt"] = result.wcrt
                if not result.schedulable:
                    findings.append(f"{task_name} on {processor_name}")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not findings,
                                findings=findings, metrics=metrics)


def build_platform(num_processors: int) -> Platform:
    platform = Platform(name="diff-platform")
    for index in range(num_processors):
        platform.add_processor(ProcessingResource(f"cpu{index}", capacity=0.9))
    platform.add_network(NetworkResource("can0", bandwidth_bps=500_000.0))
    return platform


def make_contract(name: str, period: float, wcet: float) -> Contract:
    contract = Contract(component=name)
    contract.add_requirement(RealTimeRequirement(
        period=period, wcet=min(wcet, 0.9 * period)))
    contract.add_requirement(SafetyRequirement(asil="B"))
    contract.add_requirement(SecurityRequirement(level="MEDIUM"))
    contract.add_provided_service(f"service_{name}")
    return contract


def random_chain(rng: SeededRNG, pool_size: int,
                 length: int) -> List[ChangeRequest]:
    """A random add/update/remove chain over a component pool.

    Initial parameters come from a UUniFast draw (the standard schedulability
    workload); updates rescale WCETs up and down so chains cross the
    schedulable/unschedulable boundary in both directions.
    """
    utilizations = rng.uunifast(pool_size, rng.uniform(0.8, 1.8))
    periods = rng.log_uniform_periods(pool_size, 0.01, 0.25)
    params = {f"c{index:02d}": [periods[index],
                                max(1e-6, utilizations[index] * periods[index])]
              for index in range(pool_size)}
    deployed: set = set()
    chain: List[ChangeRequest] = []
    for _ in range(length):
        name = rng.choice(sorted(params))
        period, wcet = params[name]
        if name not in deployed:
            chain.append(ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                       component=name,
                                       contract=make_contract(name, period, wcet)))
            deployed.add(name)
        elif rng.uniform() < 0.3:
            chain.append(ChangeRequest(kind=ChangeKind.REMOVE_COMPONENT,
                                       component=name))
            deployed.discard(name)
        else:
            wcet = max(1e-6, wcet * rng.uniform(0.4, 1.8))
            params[name][1] = wcet
            chain.append(ChangeRequest(kind=ChangeKind.UPDATE_COMPONENT,
                                       component=name,
                                       contract=make_contract(name, period, wcet)))
    return chain


def clone_request(request: ChangeRequest) -> ChangeRequest:
    """A fresh request (own id) targeting the same contract object."""
    return ChangeRequest(kind=request.kind, component=request.component,
                         contract=request.contract)


def assert_chain_equivalent(seed: int, pool_size: int, length: int,
                            num_processors: int) -> int:
    """Drive both MCCs through one chain; return the number of compared
    verdicts."""
    rng = SeededRNG(seed)
    chain = random_chain(rng, pool_size, length)
    fast = MultiChangeController(build_platform(num_processors),
                                 analysis_cache=AnalysisCache())
    reference = MultiChangeController(
        build_platform(num_processors),
        acceptance_tests=[ColdTimingAcceptanceTest(), SafetyAcceptanceTest(),
                          SecurityAcceptanceTest(), ResourceAcceptanceTest()])
    for step, request in enumerate(chain):
        fast_report = fast.request_change(clone_request(request))
        ref_report = reference.request_change(clone_request(request))
        context = f"seed={seed} step={step} {request.kind.value} {request.component}"
        assert fast_report.accepted == ref_report.accepted, context
        assert fast_report.acceptance_results == ref_report.acceptance_results, context
        assert fast_report.failed_viewpoints() == ref_report.failed_viewpoints(), context
    assert fast.version == reference.version
    assert sorted(fast.model.components()) == sorted(reference.model.components())
    return len(chain)


class TestMccDifferential:
    """Cache + incremental admission == cold reference admission."""

    @pytest.mark.parametrize("num_processors", [1, 2, 3])
    def test_randomized_chains(self, num_processors):
        compared = 0
        for seed in range(5):
            compared += assert_chain_equivalent(
                seed=seed * 10 + num_processors, pool_size=8, length=15,
                num_processors=num_processors)
        assert compared == 5 * 15

    def test_long_high_churn_chains(self):
        """Longer chains with a bigger pool: more interleaved adds/removes,
        deeper engine history."""
        compared = 0
        for seed in range(4):
            compared += assert_chain_equivalent(
                seed=1_000 + seed, pool_size=12, length=20, num_processors=2)
        assert compared == 4 * 20

    def test_total_case_count_clears_200(self):
        """The harness as a whole compares >= 200 randomized verdicts (this
        mirrors the two tests above; kept explicit so shrinking either one
        trips the floor)."""
        total = 3 * 5 * 15 + 4 * 20
        assert total >= 200

    def test_shared_cache_across_chains_stays_equivalent(self):
        """One cache reused across several campaigns (the fleet pattern) must
        not leak verdicts between chains."""
        cache = AnalysisCache()
        for seed in (5, 6):
            rng = SeededRNG(seed)
            chain = random_chain(rng, pool_size=6, length=12)
            fast = MultiChangeController(build_platform(2), analysis_cache=cache)
            reference = MultiChangeController(
                build_platform(2),
                acceptance_tests=[ColdTimingAcceptanceTest(),
                                  SafetyAcceptanceTest(),
                                  SecurityAcceptanceTest(),
                                  ResourceAcceptanceTest()])
            for request in chain:
                fast_report = fast.request_change(clone_request(request))
                ref_report = reference.request_change(clone_request(request))
                assert fast_report.accepted == ref_report.accepted
                assert fast_report.failed_viewpoints() == ref_report.failed_viewpoints()

    def test_duplicate_add_and_missing_remove_agree(self):
        """Pre-acceptance rejections (model-level errors) also agree."""
        fast = MultiChangeController(build_platform(2),
                                     analysis_cache=AnalysisCache())
        reference = MultiChangeController(
            build_platform(2),
            acceptance_tests=[ColdTimingAcceptanceTest(), SafetyAcceptanceTest(),
                              SecurityAcceptanceTest(), ResourceAcceptanceTest()])
        contract = make_contract("dup", 0.05, 0.005)
        for mcc in (fast, reference):
            assert mcc.add_component(contract).accepted
            assert not mcc.add_component(contract).accepted  # duplicate add
            assert not mcc.remove_component("ghost").accepted  # unknown removal
        assert fast.version == reference.version
