"""E2 (Fig. 2 / Section III): virtualized CAN controller round-trip latency.

Regenerates the paper's headline measurement: the virtualized controller
achieves near-native transmit/receive performance with ~7-11 us added
round-trip latency.  The series sweeps the number of VMs sharing the
controller and the payload size, and includes the TX-scheduling ablation
(global priority vs round robin).
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table, write_bench_record
from repro.can.bus import CanBus
from repro.can.controller import AcceptanceFilter, CanController
from repro.can.frame import CanFrame
from repro.can.virtualization import (
    TxSchedulingPolicy,
    VirtualizationLatencyModel,
    VirtualizedCanController,
)
from repro.sim.kernel import Simulator


def _native_round_trip(payload: bytes) -> float:
    sim = Simulator()
    bus = CanBus(sim, bitrate_bps=500_000.0)
    remote = CanController(sim, "remote")
    native = CanController(sim, "native")
    bus.attach(remote)
    bus.attach(native)
    remote.rx_callback = lambda msg: remote.send(CanFrame(can_id=0x200, payload=payload))
    native.send(CanFrame(can_id=0x100, payload=payload))
    sim.run(until=0.01)
    return native.received[0].delivery_time


def _virtualized_round_trip(num_vms: int, payload: bytes,
                            policy: TxSchedulingPolicy = TxSchedulingPolicy.PRIORITY) -> float:
    sim = Simulator()
    bus = CanBus(sim, bitrate_bps=500_000.0)
    remote = CanController(sim, "remote")
    controller = VirtualizedCanController(sim, "virt", tx_policy=policy)
    bus.attach(remote)
    bus.attach(controller)
    for index in range(num_vms):
        controller.pf.create_vf("hypervisor", f"vf{index}", f"vm{index}",
                                [AcceptanceFilter.exact(0x200 + index)], 16, 32)
    remote.rx_callback = lambda msg: remote.send(CanFrame(can_id=0x200, payload=payload))
    controller.send_from_vf("vf0", CanFrame(can_id=0x100, payload=payload))
    sim.run(until=0.01)
    return controller.vf("vf0").received[0].delivery_time


@pytest.mark.benchmark(group="e2-can-latency")
def test_e2_round_trip_vs_vm_count(benchmark):
    """Added round-trip latency versus the number of VMs (8-byte payload)."""
    payload = b"\xab" * 8
    vm_counts = [1, 2, 4, 8]

    def sweep():
        native = _native_round_trip(payload)
        return native, [(_virtualized_round_trip(n, payload)) for n in vm_counts]

    native, virtualized = benchmark(sweep)
    rows = []
    for count, rtt in zip(vm_counts, virtualized):
        rows.append({"vms": count,
                     "native_us": native * 1e6,
                     "virtualized_us": rtt * 1e6,
                     "added_us": (rtt - native) * 1e6,
                     "overhead_pct": 100.0 * (rtt - native) / native})
    print_table("E2: round-trip latency, native vs virtualized (paper: ~7-11 us added)", rows)
    sweep_times = []
    for _ in range(3):
        started = time.perf_counter()
        sweep()
        sweep_times.append(time.perf_counter() - started)
    write_bench_record("e2_round_trip_latency", {
        "rows": rows, "sweep_wall_s": min(sweep_times)})
    added = [(rtt - native) * 1e6 for rtt in virtualized]
    # Shape: overhead grows mildly with the VM count and stays in the band
    # around the published 7-11 us while remaining a small fraction of the
    # total round trip (near-native performance).
    assert added == sorted(added)
    assert all(4.0 <= a <= 13.0 for a in added)
    assert all(a < 0.1 * native * 1e6 for a in added)


@pytest.mark.benchmark(group="e2-can-latency")
def test_e2_payload_sweep(benchmark):
    """Added latency versus payload size for 4 VMs."""
    payloads = [0, 2, 4, 8]

    def sweep():
        results = []
        for dlc in payloads:
            payload = b"\x55" * dlc
            results.append((_native_round_trip(payload),
                            _virtualized_round_trip(4, payload)))
        return results

    results = benchmark(sweep)
    rows = [{"payload_bytes": dlc, "native_us": native * 1e6,
             "virtualized_us": virt * 1e6, "added_us": (virt - native) * 1e6}
            for dlc, (native, virt) in zip(payloads, results)]
    print_table("E2: added latency vs payload size (4 VMs)", rows)
    added = [(virt - native) for native, virt in results]
    assert added == sorted(added)


@pytest.mark.benchmark(group="e2-can-latency")
def test_e2_tx_policy_ablation(benchmark):
    """Ablation: priority-preserving TX mux vs round-robin across VFs.

    With the priority policy, a high-priority frame queued behind another
    VF's low-priority frame still reaches the bus first; round-robin breaks
    this (the real-time property the paper's design preserves).
    """

    def run(policy):
        sim = Simulator()
        bus = CanBus(sim, bitrate_bps=500_000.0)
        remote = CanController(sim, "remote")
        controller = VirtualizedCanController(sim, "virt", tx_policy=policy)
        bus.attach(remote)
        bus.attach(controller)
        for index in range(2):
            controller.pf.create_vf("hypervisor", f"vf{index}", f"vm{index}", None, 16, 32)
        # Keep the bus busy, then enqueue: vf0 sends 8 low-priority frames,
        # vf1 sends one high-priority frame.
        remote.send(CanFrame(can_id=0x001, payload=b"\x00" * 8))
        for i in range(8):
            controller.send_from_vf("vf0", CanFrame(can_id=0x500 + i, payload=b"\x00" * 8))
        controller.send_from_vf("vf1", CanFrame(can_id=0x050, payload=b"\x00" * 8))
        sim.run(until=0.05)
        order = [m.frame.can_id for m in remote.received]
        return order.index(0x050)

    def both():
        return {policy.value: run(policy) for policy in TxSchedulingPolicy}

    positions = benchmark(both)
    rows = [{"tx_policy": name, "position_of_high_priority_frame": pos}
            for name, pos in positions.items()]
    print_table("E2 ablation: position of the high-priority frame in the TX order", rows)
    assert positions["priority"] < positions["round_robin"]


@pytest.mark.benchmark(group="e2-can-latency")
def test_e2_latency_model_matches_paper_band(benchmark):
    """The calibrated analytical latency model itself (no bus simulation)."""
    model = VirtualizationLatencyModel()

    def evaluate():
        return {vfs: model.round_trip_overhead(vfs, 8) for vfs in range(1, 9)}

    overheads = benchmark(evaluate)
    rows = [{"vms": vfs, "added_round_trip_us": value * 1e6}
            for vfs, value in overheads.items()]
    print_table("E2: calibrated virtualization overhead model", rows)
    assert 6.5e-6 <= overheads[2] <= 8.0e-6
    assert 10.0e-6 <= overheads[8] <= 11.5e-6
