"""Shared differential-oracle harness for the analysis test suites.

The repository's exactness tests all follow the same pattern: drive a fast
engine (incremental, cached, batched, …) and a cold reference through the
same randomized workload and fail on the first diverging bit.  This module
holds the pieces those suites share:

* UUniFast task-set generators (``make_taskset``, ``rebuild``) and the
  field-by-field verdict comparator ``assert_equivalent`` used by the
  incremental-CPA and batch-kernel suites;
* the from-scratch oracles ``cold_results`` (plain busy-window analysis)
  and :class:`ColdTimingAcceptanceTest` (a stateless MCC timing viewpoint)
  used by the MCC differential suite;
* randomized change-request chains over UUniFast component pools
  (``random_chain``, ``make_contract``, ``clone_request``,
  ``build_platform``);
* the event-driven CAN bus ground truth ``simulate_latencies`` and the
  ``frame_workloads`` hypothesis strategy used by the CAN RTA suite.

Everything here is deterministic given the caller's seeds — extracting it
changed no seed and no behaviour, only the import site.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from hypothesis import strategies as st

from repro.analysis.cpa import EventModel, ResponseTimeAnalysis, ResponseTimeResult
from repro.analysis.compositional import FrameSpec
from repro.can.bus import CanBus
from repro.can.controller import CanController
from repro.can.frame import CanFrame
from repro.contracts.model import (Contract, RealTimeRequirement,
                                   SafetyRequirement, SecurityRequirement)
from repro.mcc.acceptance import AcceptanceResult, tasksets_from_mapping
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.platform.resources import NetworkResource, Platform, ProcessingResource
from repro.platform.tasks import Task, TaskSet
from repro.sim.kernel import Simulator
from repro.sim.random import SeededRNG

# ---------------------------------------------------------------------------
# UUniFast task sets + busy-window verdict comparison
# ---------------------------------------------------------------------------


def make_taskset(seed: int, n: int, utilization: float) -> TaskSet:
    """A UUniFast task set with log-uniform periods and deadline-monotonic
    priorities — the standard schedulability workload."""
    rng = SeededRNG(seed)
    utilizations = rng.uunifast(n, utilization)
    periods = rng.log_uniform_periods(n, 0.005, 0.5)
    taskset = TaskSet()
    for index, (u, period) in enumerate(zip(utilizations, periods)):
        taskset.add(Task(f"t{index}", period=period, wcet=max(1e-6, u * period)))
    taskset.assign_deadline_monotonic_priorities()
    return taskset


def rebuild(tasks) -> TaskSet:
    """A fresh TaskSet with fresh Task objects (same insertion order)."""
    return TaskSet([Task(t.name, period=t.period, wcet=t.wcet, deadline=t.deadline,
                         priority=t.priority, jitter=t.jitter) for t in tasks])


def cold_results(taskset: TaskSet, speed_factor: float = 1.0,
                 event_models: Optional[Dict[str, EventModel]] = None,
                 ) -> Dict[str, ResponseTimeResult]:
    """The cold reference: one from-scratch busy-window analysis."""
    return ResponseTimeAnalysis(taskset, speed_factor=speed_factor,
                                event_models=event_models).analyse()


def assert_equivalent(candidate, reference, context: str) -> None:
    """Fail on the first ``wcrt``/``schedulable``/``converged`` deviation."""
    assert set(candidate) == set(reference), context
    for name in reference:
        a, b = candidate[name], reference[name]
        assert a.wcrt == b.wcrt, f"{context}: {name} wcrt {a.wcrt} != {b.wcrt}"
        assert a.schedulable == b.schedulable, f"{context}: {name} schedulable"
        assert a.converged == b.converged, f"{context}: {name} converged"


# ---------------------------------------------------------------------------
# MCC differential oracle: cold timing viewpoint + randomized change chains
# ---------------------------------------------------------------------------


class ColdTimingAcceptanceTest:
    """Reference timing viewpoint: from-scratch busy windows, no state."""

    viewpoint = "timing"

    def run(self, contracts, mapping, priorities, platform) -> AcceptanceResult:
        findings: List[str] = []
        metrics: Dict[str, float] = {}
        tasksets = tasksets_from_mapping(contracts, mapping, priorities)
        for processor_name, taskset in sorted(tasksets.items()):
            analysis = ResponseTimeAnalysis(taskset)
            metrics[f"{processor_name}.utilization"] = analysis.utilization()
            for task_name, result in analysis.analyse().items():
                if result.wcrt is not None:
                    metrics[f"{task_name}.wcrt"] = result.wcrt
                if not result.schedulable:
                    findings.append(f"{task_name} on {processor_name}")
        return AcceptanceResult(viewpoint=self.viewpoint, passed=not findings,
                                findings=findings, metrics=metrics)


def build_platform(num_processors: int) -> Platform:
    platform = Platform(name="diff-platform")
    for index in range(num_processors):
        platform.add_processor(ProcessingResource(f"cpu{index}", capacity=0.9))
    platform.add_network(NetworkResource("can0", bandwidth_bps=500_000.0))
    return platform


def make_contract(name: str, period: float, wcet: float) -> Contract:
    contract = Contract(component=name)
    contract.add_requirement(RealTimeRequirement(
        period=period, wcet=min(wcet, 0.9 * period)))
    contract.add_requirement(SafetyRequirement(asil="B"))
    contract.add_requirement(SecurityRequirement(level="MEDIUM"))
    contract.add_provided_service(f"service_{name}")
    return contract


def random_chain(rng: SeededRNG, pool_size: int,
                 length: int) -> List[ChangeRequest]:
    """A random add/update/remove chain over a component pool.

    Initial parameters come from a UUniFast draw (the standard schedulability
    workload); updates rescale WCETs up and down so chains cross the
    schedulable/unschedulable boundary in both directions.
    """
    utilizations = rng.uunifast(pool_size, rng.uniform(0.8, 1.8))
    periods = rng.log_uniform_periods(pool_size, 0.01, 0.25)
    params = {f"c{index:02d}": [periods[index],
                                max(1e-6, utilizations[index] * periods[index])]
              for index in range(pool_size)}
    deployed: set = set()
    chain: List[ChangeRequest] = []
    for _ in range(length):
        name = rng.choice(sorted(params))
        period, wcet = params[name]
        if name not in deployed:
            chain.append(ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                                       component=name,
                                       contract=make_contract(name, period, wcet)))
            deployed.add(name)
        elif rng.uniform() < 0.3:
            chain.append(ChangeRequest(kind=ChangeKind.REMOVE_COMPONENT,
                                       component=name))
            deployed.discard(name)
        else:
            wcet = max(1e-6, wcet * rng.uniform(0.4, 1.8))
            params[name][1] = wcet
            chain.append(ChangeRequest(kind=ChangeKind.UPDATE_COMPONENT,
                                       component=name,
                                       contract=make_contract(name, period, wcet)))
    return chain


def clone_request(request: ChangeRequest) -> ChangeRequest:
    """A fresh request (own id) targeting the same contract object."""
    return ChangeRequest(kind=request.kind, component=request.component,
                         contract=request.contract)


# ---------------------------------------------------------------------------
# CAN RTA ground truth: event-driven bus simulation + frame-set strategy
# ---------------------------------------------------------------------------

BITRATE = 500_000.0
PERIODS = (0.002, 0.005, 0.01, 0.02)


@st.composite
def frame_workloads(draw) -> List[Tuple[FrameSpec, float]]:
    """Random frame streams with unique identifiers plus release offsets."""
    count = draw(st.integers(min_value=2, max_value=5))
    can_ids = draw(st.lists(st.integers(min_value=0, max_value=0x7FF),
                            min_size=count, max_size=count, unique=True))
    streams: List[Tuple[FrameSpec, float]] = []
    for index, can_id in enumerate(can_ids):
        period = draw(st.sampled_from(PERIODS))
        dlc = draw(st.integers(min_value=0, max_value=8))
        offset = draw(st.floats(min_value=0.0, max_value=period,
                                allow_nan=False, allow_infinity=False))
        spec = FrameSpec(f"s{index:02d}", can_id=can_id, period=period, dlc=dlc)
        streams.append((spec, offset))
    return streams


def simulate_latencies(streams: Iterable[Tuple[FrameSpec, float]],
                       horizon: float) -> dict:
    """Drive periodic senders over one bus; per-stream observed latencies."""
    sim = Simulator()
    bus = CanBus(sim, bitrate_bps=BITRATE)
    controllers = {}
    for spec, offset in streams:
        controller = CanController(sim, name=spec.name, tx_access_latency=0.0,
                                   rx_access_latency=0.0, tx_queue_depth=1024)
        bus.attach(controller)
        controllers[spec.name] = controller
        frame = CanFrame(can_id=spec.can_id, payload=b"\0" * spec.dlc,
                         source=spec.name)

        def send(sim_, controller=controller, frame=frame):
            controller.send(frame)

        release = offset
        while release < horizon:
            sim.schedule(release, send, name=f"{spec.name}.release")
            release += spec.period
    sim.run(until=horizon + 1.0)
    return {name: controller.tx_latencies()
            for name, controller in controllers.items()}
