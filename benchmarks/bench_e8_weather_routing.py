"""E8 (Section V): weather-aware route planning under uncertainty.

Regenerates the alpine-pass-vs-detour decision: the self-aware planner,
knowing its own degraded capability in snow/fog, abandons the shorter pass
beyond a crossover forecast severity, while the weather-agnostic baseline
keeps choosing it.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.scenarios.weather_routing import (
    crossover_severity,
    run_weather_routing_scenario,
    sweep_severity,
)


@pytest.mark.benchmark(group="e8-weather-routing")
def test_e8_severity_sweep(benchmark):
    severities = [0.0, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]

    def sweep():
        return sweep_severity(severities)

    results = benchmark(sweep)
    rows = [{"severity": r.severity,
             "aware_route_km": r.aware_route.length_km,
             "aware_detour": r.aware_takes_detour,
             "baseline_route_km": r.baseline_route.length_km,
             "baseline_detour": r.baseline_takes_detour,
             "aware_exposure": r.aware_exposure,
             "baseline_exposure": r.baseline_exposure}
            for r in results]
    print_table("E8: route choice vs forecast severity (self-aware vs baseline)", rows)
    # Shape: a crossover exists; beyond it the aware planner detours while the
    # baseline never does, and the aware planner's adverse-weather exposure is
    # never higher than the baseline's.
    assert not results[0].aware_takes_detour
    assert results[-1].aware_takes_detour
    assert not any(r.baseline_takes_detour for r in results)
    assert all(r.aware_exposure <= r.baseline_exposure + 1e-9 for r in results)


@pytest.mark.benchmark(group="e8-weather-routing")
def test_e8_crossover_depends_on_risk_aversion(benchmark):
    """Ablation: higher risk aversion moves the crossover to milder forecasts."""
    aversions = [0.25, 1.0, 3.0]

    def sweep():
        crossovers = []
        for aversion in aversions:
            severity = None
            for step in range(0, 21):
                candidate = step / 20
                if run_weather_routing_scenario(candidate,
                                                risk_aversion=aversion).aware_takes_detour:
                    severity = candidate
                    break
            crossovers.append(severity)
        return crossovers

    crossovers = benchmark(sweep)
    rows = [{"risk_aversion": a, "crossover_severity": c}
            for a, c in zip(aversions, crossovers)]
    print_table("E8 ablation: detour crossover vs risk aversion", rows)
    observed = [c for c in crossovers if c is not None]
    assert observed == sorted(observed, reverse=True)


@pytest.mark.benchmark(group="e8-weather-routing")
def test_e8_crossover_search(benchmark):
    crossover = benchmark(crossover_severity, 0.05)
    print(f"\nE8: the self-aware planner abandons the alpine pass from severity {crossover}")
    assert crossover is not None and 0.05 <= crossover <= 0.8
