"""Tests for the append-only analysis-cache segment store.

Covers the concurrent-writer protocol end-to-end: lock-free multi-writer
appends (including a real ≥4-process stress), incremental reads, the
torn-tail invisibility guarantee, corruption detection vs the explicit
``repair=True`` escape hatch, compaction, and the
:meth:`AnalysisCache.load_snapshot` integration (missing vs corrupt vs
store-directory semantics).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import struct

import pytest

from repro.analysis.cache import AnalysisCache, SnapshotError
from repro.analysis.cache_store import (SegmentStore, StoreCorruptionError,
                                        is_segment_store)
from repro.platform.tasks import Task, TaskSet


def _entry(tag, value=1.0):
    """A picklable (key, results) pair; keys are tuples like taskset_key."""
    return ((tag, round(value, 6)), {"task": value})


def _taskset(wcet_high=0.002):
    return TaskSet([
        Task(name="hi", period=0.01, wcet=wcet_high, priority=1),
        Task(name="lo", period=0.05, wcet=0.004, priority=2),
    ])


class TestSegmentStoreBasics:
    def test_creation_is_lazy(self, tmp_path):
        path = tmp_path / "store"
        store = SegmentStore(str(path))
        assert not path.exists()
        assert store.read_entries() == []
        assert store.append([]) == 0
        assert not path.exists()  # empty batch: no frame, no directory
        assert store.append([_entry("a")]) == 1
        assert is_segment_store(str(path))

    def test_append_read_roundtrip(self, tmp_path):
        store = SegmentStore(str(tmp_path / "store"))
        entries = [_entry("a"), _entry("b", 2.0)]
        assert store.append(entries) == 2
        reader = SegmentStore(str(tmp_path / "store"))
        assert sorted(reader.read_entries()) == sorted(entries)

    def test_multiple_writers_share_one_store(self, tmp_path):
        path = str(tmp_path / "store")
        writers = [SegmentStore(path) for _ in range(3)]
        for index, writer in enumerate(writers):
            writer.append([_entry(f"w{index}")])
        assert len(SegmentStore(path).read_entries()) == 3
        # Every writer owns its segment file: no shared-file interleaving.
        assert len(SegmentStore(path).segments()) == 3

    def test_read_new_is_incremental_per_handle(self, tmp_path):
        path = str(tmp_path / "store")
        writer, reader = SegmentStore(path), SegmentStore(path)
        writer.append([_entry("a")])
        assert reader.read_new() == [_entry("a")]
        assert reader.read_new() == []
        writer.append([_entry("b")])
        other = SegmentStore(path)
        assert reader.read_new() == [_entry("b")]
        # A fresh handle still sees everything.
        assert len(other.read_new()) == 2

    def test_entries_survive_writer_close(self, tmp_path):
        path = str(tmp_path / "store")
        with SegmentStore(path) as store:
            store.append([_entry("a")])
        assert SegmentStore(path).read_entries() == [_entry("a")]

    def test_writer_id_rejects_path_separators(self, tmp_path):
        with pytest.raises(ValueError):
            SegmentStore(str(tmp_path), writer_id="../escape")

    def test_is_segment_store(self, tmp_path):
        assert not is_segment_store(str(tmp_path / "nope"))
        assert not is_segment_store(str(tmp_path))  # dir without manifest
        store = SegmentStore(str(tmp_path / "store"))
        store.append([_entry("a")])
        assert is_segment_store(str(tmp_path / "store"))


class TestDurabilityProtocol:
    def test_unindexed_tail_is_invisible(self, tmp_path):
        """Bytes past the indexed durable count — a torn in-flight append —
        are ignored by every reader."""
        path = str(tmp_path / "store")
        store = SegmentStore(path)
        store.append([_entry("acknowledged")])
        segment = store.segments()[0]
        with open(os.path.join(path, segment), "ab") as handle:
            handle.write(b"torn write of a crashed appen")  # no index update
        assert SegmentStore(path).read_entries() == [_entry("acknowledged")]

    def test_next_append_reindexes_the_whole_segment(self, tmp_path):
        """A crash after fsync but before the index rename leaves a durable
        tail that the writer's next successful append makes visible."""
        path = str(tmp_path / "store")
        store = SegmentStore(path)
        store.append([_entry("first")])
        store.append([_entry("second")])
        segment = store.segments()[0]
        index_path = os.path.join(path, f"idx-{store.writer_id}.json")
        full = json.loads(open(index_path, encoding="utf-8").read())
        # Rewind the index to just the first frame — the crash scenario.
        first_frame_end = os.path.getsize(os.path.join(path, segment)) // 2
        with open(os.path.join(path, segment), "rb") as handle:
            header = handle.read(12)
            _, length, _ = struct.unpack("<4sII", header)
            first_frame_end = 12 + length
        with open(index_path, "w", encoding="utf-8") as handle:
            json.dump({"segment": segment, "durable_bytes": first_frame_end},
                      handle)
        assert SegmentStore(path).read_entries() == [_entry("first")]
        store.append([_entry("third")])  # re-indexes the whole segment
        assert sorted(SegmentStore(path).read_entries()) == sorted(
            [_entry("first"), _entry("second"), _entry("third")])

    def test_malformed_index_hides_its_segment(self, tmp_path):
        path = str(tmp_path / "store")
        store = SegmentStore(path)
        store.append([_entry("a")])
        other = SegmentStore(path)
        other.append([_entry("b")])
        index_path = os.path.join(path, f"idx-{other.writer_id}.json")
        with open(index_path, "w", encoding="utf-8") as handle:
            handle.write("{not json")
        assert SegmentStore(path).read_entries() == [_entry("a")]


class TestCorruptionAndRepair:
    @staticmethod
    def _corrupt_first_payload_byte(path, segment):
        segment_path = os.path.join(path, segment)
        with open(segment_path, "r+b") as handle:
            handle.seek(12)  # first payload byte, after the frame header
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))

    def test_corruption_inside_durable_prefix_raises(self, tmp_path):
        path = str(tmp_path / "store")
        store = SegmentStore(path)
        store.append([_entry("a")])
        self._corrupt_first_payload_byte(path, store.segments()[0])
        reader = SegmentStore(path)
        with pytest.raises(StoreCorruptionError, match="CRC mismatch"):
            reader.read_entries()
        with pytest.raises(StoreCorruptionError):
            reader.read_new()

    def test_repair_skips_damaged_segment_and_logs(self, tmp_path, caplog):
        path = str(tmp_path / "store")
        damaged, intact = SegmentStore(path), SegmentStore(path)
        damaged.append([_entry("lost")])
        intact.append([_entry("kept")])
        self._corrupt_first_payload_byte(path, f"seg-{damaged.writer_id}.log")
        reader = SegmentStore(path)
        with caplog.at_level("WARNING", logger="repro.analysis.cache_store"):
            entries = reader.read_entries(repair=True)
        assert entries == [_entry("kept")]
        assert reader.last_repair_skipped == 1
        assert any("repair skipped" in record.message
                   for record in caplog.records)

    def test_repair_keeps_valid_frames_before_the_damage(self, tmp_path):
        path = str(tmp_path / "store")
        store = SegmentStore(path)
        store.append([_entry("good")])
        store.append([_entry("bad")])
        segment = store.segments()[0]
        segment_path = os.path.join(path, segment)
        with open(segment_path, "rb") as handle:
            header = handle.read(12)
            _, length, _ = struct.unpack("<4sII", header)
        with open(segment_path, "r+b") as handle:
            offset = 12 + length + 12  # second frame's first payload byte
            handle.seek(offset)
            byte = handle.read(1)
            handle.seek(offset)
            handle.write(bytes([byte[0] ^ 0xFF]))
        reader = SegmentStore(path)
        entries = reader.read_entries(repair=True)
        assert _entry("good") in entries or entries == [_entry("good")]
        assert reader.last_repair_skipped == 1

    def test_foreign_bytes_are_bad_magic(self, tmp_path):
        path = str(tmp_path / "store")
        store = SegmentStore(path)
        store.append([_entry("a")])
        segment = store.segments()[0]
        with open(os.path.join(path, segment), "r+b") as handle:
            handle.write(b"JUNK")
        with pytest.raises(StoreCorruptionError, match="magic"):
            SegmentStore(path).read_entries()


class TestCompaction:
    def test_compact_merges_and_deletes_sources(self, tmp_path):
        path = str(tmp_path / "store")
        writers = [SegmentStore(path) for _ in range(3)]
        for index, writer in enumerate(writers):
            writer.append([_entry(f"w{index}"), _entry("shared")])
            writer.close()
        maintainer = SegmentStore(path)
        kept = maintainer.compact()
        assert kept == 4  # three distinct + one shared key
        assert len(maintainer.segments()) == 1
        assert sorted(SegmentStore(path).read_entries()) == sorted(
            [_entry("w0"), _entry("w1"), _entry("w2"), _entry("shared")])

    def test_compact_empty_store(self, tmp_path):
        assert SegmentStore(str(tmp_path / "store")).compact() == 0

    def test_writer_survives_its_own_compaction(self, tmp_path):
        path = str(tmp_path / "store")
        store = SegmentStore(path)
        store.append([_entry("before")])
        store.compact()
        store.append([_entry("after")])
        assert sorted(SegmentStore(path).read_entries()) == sorted(
            [_entry("before"), _entry("after")])

    def test_read_new_after_compaction_is_idempotent_not_lossy(self, tmp_path):
        path = str(tmp_path / "store")
        writer, reader = SegmentStore(path), SegmentStore(path)
        writer.append([_entry("a")])
        assert reader.read_new() == [_entry("a")]
        SegmentStore(path).compact()
        writer.append([_entry("b")])
        # The compacted segment re-exposes "a": harmless duplicate (merges
        # are idempotent) — what matters is that "b" is not lost.
        fresh = reader.read_new()
        assert _entry("b") in fresh


def _stress_writer(args):
    """Worker of the concurrent-append stress: one process, many batches."""
    path, writer_index, batches, batch_size = args
    store = SegmentStore(path)
    for batch in range(batches):
        store.append([_entry(f"w{writer_index}-b{batch}-i{item}")
                      for item in range(batch_size)])
        # Interleave reads with the other writers' appends: must never
        # raise and never see a torn frame.
        store.read_new()
    store.close()
    return writer_index


class TestConcurrentWriters:
    def test_four_process_append_stress_preserves_every_entry(self, tmp_path):
        path = str(tmp_path / "store")
        processes, batches, batch_size = 4, 6, 5
        with multiprocessing.Pool(processes=processes) as pool:
            finished = pool.map(_stress_writer,
                                [(path, index, batches, batch_size)
                                 for index in range(processes)])
        assert sorted(finished) == list(range(processes))
        entries = SegmentStore(path).read_entries()
        expected = {f"w{writer}-b{batch}-i{item}"
                    for writer in range(processes)
                    for batch in range(batches)
                    for item in range(batch_size)}
        assert {key[0] for key, _ in entries} == expected
        assert len(entries) == len(expected)  # no duplicates, no tearing

    def test_stress_survives_compaction_afterwards(self, tmp_path):
        path = str(tmp_path / "store")
        with multiprocessing.Pool(processes=4) as pool:
            pool.map(_stress_writer, [(path, index, 3, 4)
                                      for index in range(4)])
        maintainer = SegmentStore(path)
        kept = maintainer.compact()
        assert kept == 4 * 3 * 4
        assert len(maintainer.segments()) == 1
        assert len(SegmentStore(path).read_entries()) == kept


class TestCacheSnapshotIntegration:
    """AnalysisCache.load_snapshot over files, stores, and their failures."""

    def test_load_snapshot_from_store_directory(self, tmp_path):
        source = AnalysisCache()
        expected = source.analyse(_taskset())
        store = SegmentStore(str(tmp_path / "store"))
        store.append(source.export_entries())
        warm = AnalysisCache()
        assert warm.load_snapshot(str(tmp_path / "store")) == 1
        assert warm.analyse(_taskset()) == expected
        assert (warm.hits, warm.misses) == (1, 0)

    def test_plain_directory_is_not_a_snapshot(self, tmp_path):
        with pytest.raises(SnapshotError, match="not an AnalysisCache"):
            AnalysisCache().load_snapshot(str(tmp_path))

    def test_missing_ok_still_distinguishes_corrupt(self, tmp_path):
        cache = AnalysisCache()
        assert cache.load_snapshot(str(tmp_path / "absent"),
                                   missing_ok=True) == 0
        corrupt = tmp_path / "corrupt.pkl"
        corrupt.write_bytes(b"\x80this is not a pickle")
        with pytest.raises(SnapshotError, match="repair=True"):
            cache.load_snapshot(str(corrupt), missing_ok=True)

    def test_repair_discards_corrupt_pickle_with_warning(self, tmp_path,
                                                         caplog):
        corrupt = tmp_path / "corrupt.pkl"
        corrupt.write_bytes(b"\x80this is not a pickle")
        cache = AnalysisCache()
        with caplog.at_level("WARNING", logger="repro.analysis.cache"):
            assert cache.load_snapshot(str(corrupt), repair=True) == 0
        assert any("repair skipped" in record.message
                   for record in caplog.records)

    def test_repair_discards_foreign_format_with_warning(self, tmp_path,
                                                         caplog):
        foreign = tmp_path / "foreign.pkl"
        foreign.write_bytes(pickle.dumps({"something": "else"}))
        cache = AnalysisCache()
        with pytest.raises(SnapshotError):
            cache.load_snapshot(str(foreign))
        with caplog.at_level("WARNING", logger="repro.analysis.cache"):
            assert cache.load_snapshot(str(foreign), repair=True) == 0
        assert any("foreign format" in record.message
                   for record in caplog.records)

    def test_repair_reads_around_damaged_store_segment(self, tmp_path,
                                                       caplog):
        path = str(tmp_path / "store")
        source = AnalysisCache()
        source.analyse(_taskset())
        good, bad = SegmentStore(path), SegmentStore(path)
        good.append(source.export_entries())
        bad.append([_entry("doomed")])
        bad_segment = f"seg-{bad.writer_id}.log"
        with open(os.path.join(path, bad_segment), "r+b") as handle:
            handle.seek(12)
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        warm = AnalysisCache()
        with pytest.raises(StoreCorruptionError):
            warm.load_snapshot(path)
        assert warm.load_snapshot(path, repair=True) == 1
        assert warm.analyse(_taskset()) == source.analyse(_taskset())
