"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.contracts.language import ContractParser
from repro.platform.resources import NetworkResource, Platform, ProcessingResource
from repro.platform.tasks import Task, TaskSet
from repro.sim.kernel import Simulator
from repro.sim.random import SeededRNG


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> SeededRNG:
    return SeededRNG(1234)


@pytest.fixture
def parser() -> ContractParser:
    return ContractParser()


@pytest.fixture
def simple_taskset() -> TaskSet:
    """Three-task set that is schedulable at nominal speed."""
    return TaskSet([
        Task("t_high", period=0.01, wcet=0.002, priority=0),
        Task("t_mid", period=0.02, wcet=0.005, priority=1),
        Task("t_low", period=0.05, wcet=0.010, priority=2),
    ])


@pytest.fixture
def dual_core_platform() -> Platform:
    platform = Platform(name="test-platform")
    platform.add_processor(ProcessingResource("cpu0", capacity=0.9))
    platform.add_processor(ProcessingResource("cpu1", capacity=0.9))
    platform.add_network(NetworkResource("can0", bandwidth_bps=500_000.0))
    return platform


@pytest.fixture
def acc_contracts(parser):
    """A small consistent contract set (tracker -> controller -> actuator)."""
    documents = [
        {"component": "tracker", "timing": {"period": 0.05, "wcet": 0.01},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "provides": ["object_list"]},
        {"component": "actuator", "timing": {"period": 0.01, "wcet": 0.001},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "provides": ["actuation"]},
        {"component": "controller", "timing": {"period": 0.01, "wcet": 0.002},
         "safety": {"asil": "B"}, "security": {"level": "MEDIUM"},
         "requires": [{"service": "object_list"}, {"service": "actuation"}],
         "provides": ["setpoints"]},
    ]
    return parser.parse_many(documents)
