"""Run-time monitoring (Section II.B and V).

The execution domain is augmented with application and platform monitors
that (a) enforce model assumptions (budgets, access policies) and (b)
extract run-time metrics fed back into the model domain.  Deviations from
nominal behaviour surface as :class:`~repro.monitoring.anomaly.Anomaly`
objects, the common currency consumed by the cross-layer self-awareness
coordinator in :mod:`repro.core`.
"""

from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType
from repro.monitoring.metrics import MetricSeries, MetricRegistry, MetricSummary
from repro.monitoring.monitors import (
    Monitor,
    HeartbeatMonitor,
    ValueRangeMonitor,
    ExecutionTimeMonitor,
    DeadlineMonitor,
    TemperatureMonitor,
    SensorQualityMonitor,
    MonitorSuite,
)
from repro.monitoring.deviation import DeviationDetector, ExpectedBehaviour
from repro.monitoring.enforcement import BudgetEnforcer, AccessPolicyEnforcer, EnforcementAction

__all__ = [
    "Anomaly",
    "AnomalySeverity",
    "AnomalyType",
    "MetricSeries",
    "MetricRegistry",
    "MetricSummary",
    "Monitor",
    "HeartbeatMonitor",
    "ValueRangeMonitor",
    "ExecutionTimeMonitor",
    "DeadlineMonitor",
    "TemperatureMonitor",
    "SensorQualityMonitor",
    "MonitorSuite",
    "DeviationDetector",
    "ExpectedBehaviour",
    "BudgetEnforcer",
    "AccessPolicyEnforcer",
    "EnforcementAction",
]
