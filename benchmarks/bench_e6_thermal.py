"""E6 (Section V): thermal stress as a common-cause, cross-layer disturbance.

Regenerates the paper's argument that neither a platform-only reaction (DVFS)
nor a function-only reaction (relaxed control) suffices on its own: only the
cross-layer combination protects the hardware *and* keeps deadlines.

All runs drive through the scenario registry (``repro.experiments``).
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table, write_bench_record
from repro.experiments import run_scenario


STRATEGIES = ["no_reaction", "platform_only", "function_only", "cross_layer"]


@pytest.mark.benchmark(group="e6-thermal")
def test_e6_strategy_comparison(benchmark):
    """The E6 table: one thermal run per reaction strategy."""

    def run_all():
        return {strategy: run_scenario("thermal", strategy=strategy,
                                       peak_ambient_c=80.0, duration_s=600.0)
                for strategy in STRATEGIES}

    records = benchmark(run_all)
    rows = []
    for name, record in records.items():
        rows.append({
            "strategy": name,
            "peak_temp_c": record["peak_temperature_c"],
            "time_over_critical_s": record["time_over_critical_s"],
            "deadline_miss_intervals": record["deadline_miss_intervals"],
            "control_quality": record["control_quality"],
            "final_speed_factor": record["final_speed_factor"],
            "hardware_protected": record["hardware_protected"],
            "deadlines_kept": record["deadlines_kept"],
        })
    print_table("E6: thermal stress, reaction-strategy comparison", rows)
    sweep_times = []
    for _ in range(3):
        started = time.perf_counter()
        run_all()
        sweep_times.append(time.perf_counter() - started)
    write_bench_record("e6_thermal_strategies", {
        "rows": rows, "sweep_wall_s": min(sweep_times)})

    cross = records["cross_layer"]
    assert cross["hardware_protected"] and cross["deadlines_kept"]
    assert not records["no_reaction"]["hardware_protected"]
    assert not records["platform_only"]["deadlines_kept"]
    assert not records["function_only"]["hardware_protected"]
    assert cross["control_quality"] > records["platform_only"]["control_quality"]


@pytest.mark.benchmark(group="e6-thermal")
def test_e6_ambient_temperature_sweep(benchmark):
    """Peak junction temperature of the cross-layer strategy vs ambient peak."""
    ambients = [55.0, 65.0, 75.0, 85.0]

    def sweep():
        return [run_scenario("thermal", strategy="cross_layer", peak_ambient_c=a,
                             duration_s=400.0) for a in ambients]

    records = benchmark(sweep)
    rows = [{"peak_ambient_c": a, "peak_temp_c": r["peak_temperature_c"],
             "deadline_miss_intervals": r["deadline_miss_intervals"],
             "final_speed_factor": r["final_speed_factor"]}
            for a, r in zip(ambients, records)]
    print_table("E6: cross-layer strategy vs ambient temperature", rows)
    peaks = [r["peak_temperature_c"] for r in records]
    assert peaks == sorted(peaks)
    assert all(r["deadlines_kept"] for r in records)
