"""Incremental busy-window WCRT analysis for high-throughput acceptance sweeps.

The MCC's dominant analysis workload is *not* a stream of unrelated task
sets: every in-field change request re-analyses per-processor task sets that
differ from the previously analysed ones in a single task (one component was
added, removed, or had its WCET refined), and acceptance sweeps walk grids
of single-parameter mutations.  The plain
:class:`~repro.analysis.cpa.ResponseTimeAnalysis` re-derives every busy
window from scratch on each of these near-identical inputs; the
:class:`AnalysisCache` added in PR 1 only helps when a task set is *exactly*
identical to a previously analysed one.

:class:`IncrementalResponseTimeAnalysis` closes that gap with three exact
(bit-identical) optimisations:

1. **Priority-delta pruning.**  The busy window of a task depends only on
   the task itself and its strictly higher-priority interferers.  When a
   task set differs from a previously analysed one, every unchanged task
   whose priority is at or above all changed/added/removed tasks is provably
   unaffected, and its previous :class:`ResponseTimeResult` is reused as-is.

2. **Warm-started fixpoints.**  Re-analysed tasks seed each job's fixpoint
   iteration with the previous completion time instead of the WCET — but
   only when the previous fixpoint is a guaranteed *lower bound* on the new
   one (own WCET did not shrink and no interferer got lighter).  The
   monotone iteration then converges to the identical least fixpoint in a
   fraction of the steps; when the bound cannot be established the engine
   falls back to a cold start, so results never deviate.

3. **Shared interference memoization.**  The interference term
   ``sum(eta_plus(w) * wcet)`` is a pure function of the higher-priority
   signature and the candidate window.  One :class:`InterferenceMemo` is
   shared across all analyses of the engine (and across a whole
   :meth:`analyze_many` batch), so tasks that share a priority-level prefix
   — within one task set and across the task sets of a sweep grid — skip
   re-deriving identical sums.

The engine is stateful: each :meth:`analyse` call diffs the task set against
a bounded history of recent snapshots (most-overlapping base wins), so one
engine instance transparently accelerates interleaved sweeps over several
processors.  All reuse decisions are conservative; the produced ``wcrt``/
``schedulable`` verdicts are bit-identical to a full analysis, which the
property tests in ``tests/test_incremental_cpa.py`` enforce over randomized
UUniFast workloads and mutation chains.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.batch import BatchResponseTimeAnalysis, congruence_signature
from repro.analysis.cpa import EventModel, ResponseTimeAnalysis, ResponseTimeResult
from repro.platform.tasks import Task, TaskSet

#: (period, wcet, deadline, priority, jitter, model_period, model_jitter) —
#: everything the busy-window analysis of/around one task depends on.
_TaskParams = Tuple[float, float, Optional[float], int, float, float, float]

_PRIORITY = 3
_WCET = 1
_MODEL_PERIOD = 5
_MODEL_JITTER = 6


class InterferenceMemo(dict):
    """Memo of exact interference sums, keyed ``(signature_id, window)``.

    The higher-priority signature (a tuple of ``(period, jitter, wcet)``
    triples) is interned to a small integer so the hot-loop lookups hash an
    ``(int, float)`` pair instead of a nested float tuple.
    """

    def __init__(self) -> None:
        super().__init__()
        self._signatures: Dict[tuple, int] = {}

    def intern(self, signature: tuple) -> int:
        """Map a higher-priority signature to a stable small integer."""
        key = self._signatures.get(signature)
        if key is None:
            key = len(self._signatures)
            self._signatures[signature] = key
        return key

    def clear(self) -> None:  # noqa: D102 - dict override
        super().clear()
        self._signatures.clear()


class _Snapshot:
    """Per-task parameters and results of one previously analysed task set."""

    __slots__ = ("params", "results")

    def __init__(self, params: Dict[str, _TaskParams],
                 results: Dict[str, ResponseTimeResult]) -> None:
        self.params = params
        self.results = results


class IncrementalResponseTimeAnalysis:
    """Stateful, delta-aware drop-in for whole-task-set WCRT analysis.

    Parameters
    ----------
    max_iterations:
        Safety bound forwarded to the underlying fixpoint iteration.
    history_limit:
        Number of recent task-set snapshots kept for delta matching.
    memo_limit:
        Entry bound of the shared interference memo (cleared when exceeded).
    batch_kernel:
        When ``True``, :meth:`analyze_many` routes cold congruence groups
        through the lockstep
        :class:`~repro.analysis.batch.BatchResponseTimeAnalysis` kernel and
        keeps the delta machinery for warm singletons.  Off by default: the
        single-set :meth:`analyse` path and its counters are unaffected.
    """

    def __init__(self, max_iterations: int = 10_000, history_limit: int = 32,
                 memo_limit: int = 1 << 16, batch_kernel: bool = False) -> None:
        if history_limit <= 0:
            raise ValueError("history_limit must be positive")
        self.max_iterations = max_iterations
        self.history_limit = history_limit
        self.memo_limit = memo_limit
        self.batch_kernel = bool(batch_kernel)
        self._batch = BatchResponseTimeAnalysis(max_iterations=max_iterations)
        #: Congruence groups below this lane count go to the scalar path —
        #: lockstep setup costs more than it saves on near-singletons.
        self.min_batch_lanes = 2
        self._history: "OrderedDict[Tuple[float, frozenset], _Snapshot]" = OrderedDict()
        self._memo = InterferenceMemo()
        #: Observability counters for tests and benchmark tables.
        self.tasks_reused = 0
        self.tasks_warm_started = 0
        self.tasks_cold = 0
        self.divergences_reused = 0
        self.full_analyses = 0
        self.delta_analyses = 0
        self.batch_groups = 0
        self.tasks_batched = 0

    # -- bookkeeping -------------------------------------------------------

    @property
    def tasks_analysed(self) -> int:
        """Tasks whose busy window was actually (re-)iterated."""
        return self.tasks_warm_started + self.tasks_cold + self.tasks_batched

    @property
    def reuse_rate(self) -> float:
        """Fraction of task results answered without any fixpoint iteration."""
        reused = self.tasks_reused + self.divergences_reused
        total = reused + self.tasks_analysed
        return reused / total if total else 0.0

    def clear(self) -> None:
        """Drop all snapshots/memo entries and reset the counters."""
        self._history.clear()
        self._memo.clear()
        self.tasks_reused = 0
        self.tasks_warm_started = 0
        self.tasks_cold = 0
        self.divergences_reused = 0
        self.full_analyses = 0
        self.delta_analyses = 0
        self.batch_groups = 0
        self.tasks_batched = 0

    # -- delta machinery ---------------------------------------------------

    @staticmethod
    def _params_of(taskset: TaskSet,
                   event_models: Optional[Dict[str, EventModel]]) -> Dict[str, _TaskParams]:
        params: Dict[str, _TaskParams] = {}
        overrides = event_models or {}
        for task in taskset:
            model = overrides.get(task.name)
            model_period = model.period if model is not None else task.period
            model_jitter = model.jitter if model is not None else task.jitter
            params[task.name] = (task.period, task.wcet, task.deadline,
                                 task.priority, task.jitter,
                                 model_period, model_jitter)
        return params

    def _find_base(self, speed_factor: float,
                   params: Dict[str, _TaskParams]) -> Optional[_Snapshot]:
        """Most recent snapshot (same speed factor) with maximal name overlap."""
        # Fast path: a snapshot over exactly these task names (the common
        # sweep-grid case) is the best possible base.
        exact = self._history.get((speed_factor, frozenset(params)))
        if exact is not None:
            return exact
        names = params.keys()
        best: Optional[_Snapshot] = None
        best_overlap = 0
        for (snap_speed, _), snapshot in reversed(self._history.items()):
            if snap_speed != speed_factor:
                continue
            overlap = sum(1 for name in snapshot.params if name in names)
            if overlap > best_overlap:
                best = snapshot
                best_overlap = overlap
        return best

    def _remember(self, speed_factor: float, params: Dict[str, _TaskParams],
                  results: Dict[str, ResponseTimeResult]) -> None:
        key = (speed_factor, frozenset(params))
        self._history.pop(key, None)
        self._history[key] = _Snapshot(dict(params), dict(results))
        while len(self._history) > self.history_limit:
            self._history.popitem(last=False)
        if len(self._memo) > self.memo_limit:
            self._memo.clear()

    @staticmethod
    def _demand_not_decreased(name: str, params: Dict[str, _TaskParams],
                              base_params: Dict[str, _TaskParams]) -> bool:
        """Whether the busy-window demand of ``name`` is pointwise >= the base.

        Sufficient condition: the task's own WCET did not shrink, and every
        previous interferer is still an interferer with a period no longer,
        a jitter no smaller and a WCET no smaller — then the completion
        function only grew pointwise.  Consequences the engine exploits:
        every previous least fixpoint is a valid warm-start seed from below,
        and a previously diverged busy window (same own period/deadline, so
        the same divergence bound) provably diverges again.
        """
        old = base_params.get(name)
        if old is None:
            return False
        new = params[name]
        if new[_WCET] < old[_WCET]:
            return False
        own_priority_old = old[_PRIORITY]
        own_priority_new = new[_PRIORITY]
        for other, other_old in base_params.items():
            if other == name or other_old[_PRIORITY] >= own_priority_old:
                continue
            other_new = params.get(other)
            if other_new is None or other_new[_PRIORITY] >= own_priority_new:
                return False  # a previous interferer disappeared
            if (other_new[_MODEL_PERIOD] > other_old[_MODEL_PERIOD]
                    or other_new[_MODEL_JITTER] < other_old[_MODEL_JITTER]
                    or other_new[_WCET] < other_old[_WCET]):
                return False  # a previous interferer got lighter
        return True

    # -- analysis entry points ---------------------------------------------

    def analyse(self, taskset: TaskSet, speed_factor: float = 1.0,
                event_models: Optional[Dict[str, EventModel]] = None
                ) -> Dict[str, ResponseTimeResult]:
        """Analyse ``taskset``, reusing/warm-starting against recent history.

        Returns the same mapping task name -> :class:`ResponseTimeResult`
        that :meth:`ResponseTimeAnalysis.analyse` produces, with bit-identical
        ``wcrt``/``schedulable``/``converged`` fields.
        """
        params = self._params_of(taskset, event_models)
        base = self._find_base(speed_factor, params)
        results: Dict[str, ResponseTimeResult] = {}
        if base is None:
            self.full_analyses += 1
            analysis = ResponseTimeAnalysis(taskset, speed_factor=speed_factor,
                                            event_models=event_models,
                                            max_iterations=self.max_iterations,
                                            interference_memo=self._memo)
            for task in taskset:
                results[task.name] = analysis.response_time(task)
                self.tasks_cold += 1
            self._remember(speed_factor, params, results)
            return results

        self.delta_analyses += 1
        base_params = base.params
        base_results = base.results

        # Every priority level that gained, lost or modified a task.  An
        # unchanged task is unaffected iff no changed element has a strictly
        # higher priority (lower number) than it.
        changed_priorities: List[int] = []
        for name, new in params.items():
            old = base_params.get(name)
            if old is None:
                changed_priorities.append(new[_PRIORITY])
            elif old != new:
                changed_priorities.append(new[_PRIORITY])
                changed_priorities.append(old[_PRIORITY])
        for name, old in base_params.items():
            if name not in params:
                changed_priorities.append(old[_PRIORITY])
        threshold = min(changed_priorities) if changed_priorities else None

        analysis: Optional[ResponseTimeAnalysis] = None
        for task in taskset:
            name = task.name
            unchanged = base_params.get(name) == params[name]
            if unchanged and (threshold is None or task.priority <= threshold):
                results[name] = base_results[name]
                self.tasks_reused += 1
                continue
            base_result = base_results.get(name)
            warm: Optional[Tuple[float, ...]] = None
            if base_result is not None and self._demand_not_decreased(
                    name, params, base_params):
                old, new = base_params[name], params[name]
                own_frame_unchanged = (new[0] == old[0] and new[2] == old[2]
                                       and new[4] == old[4] and new[5] == old[5]
                                       and new[6] == old[6])
                if not base_result.converged and own_frame_unchanged:
                    # The base busy window already exceeded the divergence
                    # bound; the bound and the window-closing condition (own
                    # period/deadline/jitter) are unchanged and demand only
                    # grew, so every new completion dominates the old one and
                    # the window diverges again.  Carry the verdict over.
                    results[name] = base_result
                    self.divergences_reused += 1
                    continue
                if base_result.converged and base_result.completions:
                    warm = base_result.completions
            if analysis is None:
                analysis = ResponseTimeAnalysis(taskset, speed_factor=speed_factor,
                                                event_models=event_models,
                                                max_iterations=self.max_iterations,
                                                interference_memo=self._memo)
            results[name] = analysis.response_time(task, warm_start=warm)
            if warm is not None:
                self.tasks_warm_started += 1
            else:
                self.tasks_cold += 1
        self._remember(speed_factor, params, results)
        return results

    def analyze_many(self, tasksets: Iterable[TaskSet], speed_factor: float = 1.0,
                     event_models: Optional[Dict[str, EventModel]] = None
                     ) -> List[Dict[str, ResponseTimeResult]]:
        """Batched analysis of a sweep grid.

        The task sets share the engine's snapshot history and interference
        memo, so grids of single-task mutations (the E9/in-field acceptance
        sweeps) are answered mostly from reused results and warm-started
        fixpoints.  With ``batch_kernel`` enabled, sets that have no usable
        snapshot base are additionally grouped by
        :func:`~repro.analysis.batch.congruence_signature` and solved in
        lockstep by the vectorized kernel; warm sets keep the delta path.
        Either way the verdicts are bit-identical and results are returned
        in input order.
        """
        ordered = list(tasksets)
        if not self.batch_kernel or len(ordered) < self.min_batch_lanes:
            return [self.analyse(taskset, speed_factor=speed_factor,
                                 event_models=event_models) for taskset in ordered]
        results: List[Optional[Dict[str, ResponseTimeResult]]] = [None] * len(ordered)
        groups: Dict[Tuple[int, ...], List[int]] = {}
        if self._history:
            for position, taskset in enumerate(ordered):
                params = self._params_of(taskset, event_models)
                if not params or self._find_base(speed_factor, params) is not None:
                    # Warm (or empty) sets: the delta machinery answers these
                    # from reuse/warm starts, bit-identically.
                    results[position] = self.analyse(taskset, speed_factor,
                                                     event_models)
                else:
                    groups.setdefault(congruence_signature(taskset),
                                      []).append(position)
        else:
            for position, taskset in enumerate(ordered):
                groups.setdefault(congruence_signature(taskset),
                                  []).append(position)
        for signature, positions in groups.items():
            if len(positions) < self.min_batch_lanes:
                for position in positions:
                    results[position] = self.analyse(ordered[position],
                                                     speed_factor, event_models)
                continue
            solved = self._batch.analyse_group(
                [ordered[position] for position in positions],
                speed_factor=speed_factor, event_models=event_models,
                signature=signature)
            self.batch_groups += 1
            for position, lane_results in zip(positions, solved):
                results[position] = lane_results
                self.tasks_batched += len(lane_results)
            # Snapshot only as many trailing lanes as the history can hold:
            # earlier entries would be evicted immediately anyway.
            for position, lane_results in zip(positions[-self.history_limit:],
                                              solved[-self.history_limit:]):
                self._remember(speed_factor,
                               self._params_of(ordered[position], event_models),
                               lane_results)
        return results  # type: ignore[return-value]

    #: British-spelling alias, matching the rest of the code base.
    analyse_many = analyze_many

    def schedulable(self, taskset: TaskSet, speed_factor: float = 1.0,
                    event_models: Optional[Dict[str, EventModel]] = None) -> bool:
        """Whole-task-set schedulability verdict (incremental)."""
        return all(result.schedulable
                   for result in self.analyse(taskset, speed_factor,
                                              event_models).values())

    def response_time(self, taskset: TaskSet, task: Task,
                      speed_factor: float = 1.0) -> ResponseTimeResult:
        """Single-task query; the whole set is analysed so the snapshot stays
        complete for later deltas."""
        return self.analyse(taskset, speed_factor=speed_factor)[task.name]
