"""E11: compositional system analysis on distributed update sweeps.

The MCC's distributed admission workload re-runs the system-level fixpoint
on models that differ from the previous candidate in a single task — the
same near-identical-input pattern the incremental CPA engine (E9) and the
fleet batching (E10) exploit on single processors.  This benchmark measures
it end-to-end: a sensor -> CAN -> control -> CAN -> actuator system over two
ECUs is re-analysed across an update sweep, once cold (every step re-derives
every busy window from scratch) and once through one shared
:class:`~repro.analysis.cache.AnalysisCache`-backed
:class:`~repro.analysis.compositional.SystemAnalysis`.

The cached/incremental path must produce identical verdicts and clear a
2x speedup; both land in ``BENCH_e11_distributed_e2e.json``.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from conftest import best_of, print_table, quick_mode, write_bench_record
from repro.analysis.cache import AnalysisCache
from repro.analysis.compositional import (CauseEffectChain, FrameSpec,
                                          SystemAnalysis, SystemModel)
from repro.platform.tasks import Task, TaskSet
from repro.sim.random import SeededRNG

CHAIN = CauseEffectChain("e2e", hops=(
    ("ecu1", "sensor"), ("can0", "sensor_data"), ("ecu2", "control"),
    ("can0", "actuator_cmd"), ("ecu1", "actuator")), deadline=0.2)


def _background_tasks(prefix: str, seed: int, n: int,
                      utilization: float) -> List[Task]:
    rng = SeededRNG(seed)
    utilizations = rng.uunifast(n, utilization)
    periods = rng.log_uniform_periods(n, 0.005, 0.1)
    return [Task(f"{prefix}{index}", period=period,
                 wcet=max(1e-6, u * period), priority=10 + index)
            for index, (u, period) in enumerate(zip(utilizations, periods))]


def _build_model(ecu1_tasks: List[Task], ecu2_tasks: List[Task],
                 frames: List[FrameSpec]) -> SystemModel:
    model = SystemModel()
    model.add_processor("ecu1", TaskSet(ecu1_tasks))
    model.add_processor("ecu2", TaskSet(ecu2_tasks))
    model.add_bus("can0", frames, bitrate_bps=500_000.0)
    model.connect("ecu1", "sensor", "can0", "sensor_data")
    model.connect("can0", "sensor_data", "ecu2", "control")
    model.connect("ecu2", "control", "can0", "actuator_cmd")
    model.connect("can0", "actuator_cmd", "ecu1", "actuator")
    return model


def _update_sweep(steps: int, n: int) -> List[SystemModel]:
    """One model per update step; step k scales one background task's WCET.

    This is the admission workload shape: every candidate differs from its
    predecessor in a single component of a single ECU.
    """
    chain1 = [Task("sensor", period=0.02, wcet=0.004, priority=0),
              Task("actuator", period=0.02, wcet=0.002, priority=1)]
    chain2 = [Task("control", period=0.02, wcet=0.005, priority=0)]
    base1 = _background_tasks("a", seed=1, n=n, utilization=0.65)
    base2 = _background_tasks("b", seed=2, n=n, utilization=0.65)
    frames = [FrameSpec("sensor_data", can_id=0x100, period=0.02, dlc=8),
              FrameSpec("actuator_cmd", can_id=0x110, period=0.02, dlc=4),
              FrameSpec("bg0", can_id=0x080, period=0.01, dlc=8),
              FrameSpec("bg1", can_id=0x200, period=0.05, dlc=8)]
    rng = SeededRNG(99)
    models = [_build_model(chain1 + base1, chain2 + base2, frames)]
    for step in range(steps - 1):
        if step % 2 == 0:
            victim = step // 2 % n
            base1 = [t.scaled(rng.uniform(1.02, 1.1)) if i == victim else t
                     for i, t in enumerate(base1)]
        else:
            victim = step // 2 % n
            base2 = [t.scaled(rng.uniform(1.02, 1.1)) if i == victim else t
                     for i, t in enumerate(base2)]
        models.append(_build_model(chain1 + base1, chain2 + base2, frames))
    return models


def _verdicts(results) -> List[Tuple]:
    verdicts = []
    for result in results:
        wcrts = tuple(sorted(
            (resource, item, per_item[item].wcrt)
            for resource, per_item in result.results.items()
            for item in per_item))
        verdicts.append((result.converged, result.diverged, result.schedulable,
                         result.chain_latency(CHAIN), wcrts))
    return verdicts


@pytest.mark.benchmark(group="e11-distributed")
def test_e11_incremental_system_analysis_speedup(benchmark):
    """Cached/incremental system re-analysis vs cold, on an update sweep.

    Asserts bit-identical verdicts (fixpoint flags, schedulability, WCRTs,
    chain latencies) and a >= 2x speedup; writes the E11 perf record.
    """
    quick = quick_mode()
    models = _update_sweep(steps=12 if quick else 24, n=12 if quick else 16)

    def cold_sweep():
        return [SystemAnalysis(incremental=False).analyse(model)
                for model in models]

    def warm_sweep():
        analysis = SystemAnalysis(cache=AnalysisCache())
        return analysis, [analysis.analyse(model) for model in models]

    cold_s, cold_results = best_of(cold_sweep)
    warm_s, (analysis, warm_results) = best_of(warm_sweep)
    benchmark(lambda: warm_sweep()[1][-1].schedulable)

    assert _verdicts(cold_results) == _verdicts(warm_results)
    assert all(result.converged for result in cold_results)

    cache = analysis.cache
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    payload = {
        "update_steps": len(models),
        "cold_s": cold_s,
        "incremental_s": warm_s,
        "speedup": speedup,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
        "cache_hit_rate": cache.hit_rate,
        "engine_reuse_rate": cache.engine.reuse_rate,
        "fixpoint_iterations_last": warm_results[-1].iterations,
        "chain_latency_last_s": warm_results[-1].chain_latency(CHAIN),
    }
    print_table("E11: incremental vs cold system analysis on an update sweep "
                "(target: >= 2x)", [payload])
    write_bench_record("e11_distributed_e2e", payload)
    assert speedup >= 2.0


@pytest.mark.benchmark(group="e11-distributed")
def test_e11_jitter_aware_vs_naive_chain_bound(benchmark):
    """The jitter-aware chain bound never exceeds the naive WCRT summation;
    report the tightening on the sweep's models."""
    models = _update_sweep(steps=6, n=6)

    def evaluate():
        analysis = SystemAnalysis(cache=AnalysisCache())
        ratios = []
        for model in models:
            result = analysis.analyse(model)
            aware = result.chain_latency(CHAIN)
            if aware is None:
                continue  # unbounded hop: neither side claims a bound
            per_hop = [result.result_of(resource, item).wcrt
                       for resource, item in CHAIN.hops]
            if any(wcrt is None for wcrt in per_hop):
                continue
            ratios.append(aware / sum(per_hop))
        return ratios

    ratios = benchmark(evaluate)
    rows = [{"metric": "jitter-aware / naive summation",
             "min": min(ratios), "mean": sum(ratios) / len(ratios),
             "max": max(ratios)}]
    print_table("E11: end-to-end bound tightening", rows)
    assert max(ratios) <= 1.0 + 1e-9
    assert min(ratios) < 1.0  # propagation pays the burst only once
