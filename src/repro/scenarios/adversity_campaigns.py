"""Scenarios: fleet campaigns under hostile and degraded conditions (E14-E16).

The staged campaign of E10 rolls an update out under nominal conditions;
these three scenarios re-run it through the adversity layer
(:mod:`repro.fleet.adversity`), one seam each:

* **E14 ``intrusion_campaign``** — a fraction of the fleet is compromised
  and injects false deviation reports between waves (over-reporting to force
  a halt, or under-reporting to hide failures).  Reports are graded by the
  IDS; with the countermeasure on, suspected senders' reports are discounted
  from the halt decision and the rollout survives the forged evidence.
* **E15 ``lossy_ota_campaign``** — the OTA network drops deliveries; waves
  carry their undelivered vehicles forward, extra straggler waves mop up,
  and vehicles whose retry budget is spent are abandoned.
* **E16 ``thermal_campaign``** — a heat wave throttles the fleet's
  processors mid-campaign; the DVFS-inflated WCETs flip admission verdicts
  in hot waves and recover with the temperature.

Each scenario is a pure function of its parameters (fresh seeded adversity
state per run) and remains byte-identical between ``workers=1`` and pooled
execution — the adversity hooks all run in the campaign parent.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.analysis.cache import AnalysisCache
from repro.contracts.model import Contract
from repro.fleet.adversity import (AdversityModel, IntrusionAdversity,
                                   LossyDeliveryAdversity, ThermalAdversity)
from repro.fleet.campaign import Campaign, CampaignResult, WavePolicy
from repro.fleet.vehicle import FleetSpec, FleetVehicle, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import build_update_contract


def _run_adverse_campaign(adversity: AdversityModel, fleet_size: int,
                          seed: int, heterogeneity: float, num_variants: int,
                          extra_components: int, update_utilization: float,
                          canary_size: int, wave_fractions: tuple,
                          max_failure_rate: float,
                          failure_injection_rate: float,
                          workers: int) -> CampaignResult:
    """One staged campaign with an adversity model plugged into the loop."""
    spec = FleetSpec(size=fleet_size, seed=seed, heterogeneity=heterogeneity,
                     num_variants=num_variants,
                     extra_components=extra_components)
    cache = AnalysisCache()
    vehicles = generate_fleet(spec, analysis_cache=cache)

    update_contracts: Dict[int, Contract] = {}

    def update_factory(vehicle: FleetVehicle) -> ChangeRequest:
        variant = vehicle.variant.index
        contract = update_contracts.get(variant)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor,
                                             utilization=update_utilization)
            update_contracts[variant] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    policy = WavePolicy(canary_size=canary_size,
                        wave_fractions=tuple(float(f) for f in wave_fractions),
                        max_failure_rate=max_failure_rate)
    campaign = Campaign(vehicles, update_factory, policy=policy,
                        analysis_cache=cache, batch_admission=True,
                        failure_injection_rate=failure_injection_rate,
                        feedback_seed=seed, workers=workers,
                        adversity=adversity)
    return campaign.run()


@dataclass
class IntrusionCampaignResult:
    """Metrics of one campaign under compromised-vehicle feedback (E14)."""

    fleet_size: int
    mode: str
    discount_suspected: bool
    compromised: int
    suspected: int
    true_suspects: int
    false_suspects: int
    admitted: int
    rejected: int
    deviating: int
    discounted: int
    rolled_back: int
    halted: bool
    halted_wave: Optional[int]
    update_coverage: float
    acceptance_rate: float
    waves: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return bool(self.waves) and not self.halted


def run_intrusion_campaign_scenario(fleet_size: int = 40, seed: int = 0,
                                    heterogeneity: float = 0.1,
                                    num_variants: int = 6,
                                    extra_components: int = 6,
                                    update_utilization: float = 0.18,
                                    compromise_rate: float = 0.25,
                                    mode: str = "over_report",
                                    reports_per_wave: int = 6,
                                    suspicion_threshold: int = 3,
                                    discount_suspected: bool = True,
                                    failure_injection_rate: float = 0.0,
                                    canary_size: int = 2,
                                    wave_fractions: tuple = (0.2, 0.5, 1.0),
                                    max_failure_rate: float = 0.2,
                                    workers: int = 1
                                    ) -> IntrusionCampaignResult:
    """Run one staged campaign with compromised vehicles in the feedback loop.

    ``compromise_rate`` of the fleet forges its monitor reports: in
    ``over_report`` mode the forged execution times exceed the tolerance
    band and are spammed ``reports_per_wave`` times per wave to trip the
    halt policy; in ``under_report`` mode they collapse towards zero to
    hide real failures — flagged only because campaign feedback is graded
    against *two-sided* tolerance bands.  The IDS rate window grades every
    deviation report; with ``discount_suspected`` the halt decision ignores
    reports from senders past the suspicion threshold.
    """
    adversity = IntrusionAdversity(compromise_rate=compromise_rate, mode=mode,
                                   reports_per_wave=reports_per_wave,
                                   suspicion_threshold=suspicion_threshold,
                                   discount_suspected=discount_suspected,
                                   seed=seed)
    outcome = _run_adverse_campaign(
        adversity, fleet_size=fleet_size, seed=seed,
        heterogeneity=heterogeneity, num_variants=num_variants,
        extra_components=extra_components,
        update_utilization=update_utilization, canary_size=canary_size,
        wave_fractions=wave_fractions, max_failure_rate=max_failure_rate,
        failure_injection_rate=failure_injection_rate, workers=workers)
    compromised = set(adversity.compromised_ids)
    suspected = set(adversity.ids.suspected_compromised())
    return IntrusionCampaignResult(
        fleet_size=outcome.fleet_size,
        mode=mode,
        discount_suspected=discount_suspected,
        compromised=len(compromised),
        suspected=len(suspected),
        true_suspects=len(suspected & compromised),
        false_suspects=len(suspected - compromised),
        admitted=outcome.admitted,
        rejected=outcome.rejected,
        deviating=outcome.deviating,
        discounted=outcome.discounted,
        rolled_back=outcome.rolled_back,
        halted=outcome.halted,
        halted_wave=outcome.halted_wave,
        update_coverage=outcome.update_coverage,
        acceptance_rate=outcome.acceptance_rate,
        waves=[record.to_dict() for record in outcome.waves])


@dataclass
class LossyOtaCampaignResult:
    """Metrics of one campaign over a lossy OTA network (E15)."""

    fleet_size: int
    drop_rate: float
    max_retries: int
    delivery_attempts: int
    drops: int
    undelivered_events: int
    retried: int
    abandoned: int
    straggler_waves: int
    admitted: int
    rejected: int
    deviating: int
    halted: bool
    halted_wave: Optional[int]
    update_coverage: float
    acceptance_rate: float
    waves: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return bool(self.waves) and not self.halted


def run_lossy_ota_campaign_scenario(fleet_size: int = 40, seed: int = 0,
                                    heterogeneity: float = 0.1,
                                    num_variants: int = 6,
                                    extra_components: int = 6,
                                    update_utilization: float = 0.18,
                                    drop_rate: float = 0.3,
                                    max_retries: int = 3,
                                    failure_injection_rate: float = 0.0,
                                    canary_size: int = 2,
                                    wave_fractions: tuple = (0.2, 0.5, 1.0),
                                    max_failure_rate: float = 0.3,
                                    workers: int = 1
                                    ) -> LossyOtaCampaignResult:
    """Run one staged campaign across a lossy OTA delivery network.

    Every delivery attempt drops independently with ``drop_rate``;
    undelivered vehicles ride along with the next wave (extra ``straggler``
    waves run after the planned rollout) until delivered or until
    ``max_retries`` retries are spent, after which they are abandoned.
    The halt policy judges each wave by its *delivered* members only.
    """
    adversity = LossyDeliveryAdversity(drop_rate=drop_rate,
                                       max_retries=max_retries, seed=seed)
    outcome = _run_adverse_campaign(
        adversity, fleet_size=fleet_size, seed=seed,
        heterogeneity=heterogeneity, num_variants=num_variants,
        extra_components=extra_components,
        update_utilization=update_utilization, canary_size=canary_size,
        wave_fractions=wave_fractions, max_failure_rate=max_failure_rate,
        failure_injection_rate=failure_injection_rate, workers=workers)
    return LossyOtaCampaignResult(
        fleet_size=outcome.fleet_size,
        drop_rate=drop_rate,
        max_retries=max_retries,
        delivery_attempts=adversity.attempts,
        drops=adversity.drops,
        undelivered_events=outcome.undelivered,
        retried=outcome.retried,
        abandoned=outcome.abandoned,
        straggler_waves=sum(1 for record in outcome.waves
                            if record.kind == "straggler"),
        admitted=outcome.admitted,
        rejected=outcome.rejected,
        deviating=outcome.deviating,
        halted=outcome.halted,
        halted_wave=outcome.halted_wave,
        update_coverage=outcome.update_coverage,
        acceptance_rate=outcome.acceptance_rate,
        waves=[record.to_dict() for record in outcome.waves])


@dataclass
class ThermalCampaignResult:
    """Metrics of one campaign under mid-campaign thermal throttling (E16)."""

    fleet_size: int
    peak_ambient_c: float
    throttled_waves: int
    min_speed_factor: float
    hot_wave_rejections: int
    cool_wave_rejections: int
    verdicts_flipped: bool
    admitted: int
    rejected: int
    deviating: int
    halted: bool
    halted_wave: Optional[int]
    update_coverage: float
    acceptance_rate: float
    #: (wave index, ambient C, junction C, speed factor) per executed wave.
    thermal_trace: List[Tuple[int, float, float, float]] = field(
        default_factory=list)
    waves: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def completed(self) -> bool:
        return bool(self.waves) and not self.halted


def run_thermal_campaign_scenario(fleet_size: int = 40, seed: int = 0,
                                  heterogeneity: float = 0.1,
                                  num_variants: int = 6,
                                  extra_components: int = 6,
                                  update_utilization: float = 0.3,
                                  base_ambient_c: float = 35.0,
                                  peak_ambient_c: float = 90.0,
                                  peak_wave: int = 2,
                                  wave_dt_s: float = 240.0,
                                  thermal_utilization: float = 0.9,
                                  failure_injection_rate: float = 0.0,
                                  canary_size: int = 2,
                                  wave_fractions: tuple = (0.2, 0.5, 1.0),
                                  max_failure_rate: float = 1.0,
                                  workers: int = 1) -> ThermalCampaignResult:
    """Run one staged campaign through a heat wave.

    The ambient temperature ramps to ``peak_ambient_c`` at wave
    ``peak_wave`` and falls back; the thermal model integrates
    ``wave_dt_s`` seconds per wave and the DVFS governor throttles when the
    junction temperature crosses its threshold.  Waves admitted while
    throttled see WCETs inflated by the reciprocal speed factor, so the
    same per-variant update flips from admitted to rejected and back as
    the fleet heats and cools (``max_failure_rate`` defaults to 1.0 so the
    campaign rides through the rejections instead of halting).
    """
    adversity = ThermalAdversity(base_ambient_c=base_ambient_c,
                                 peak_ambient_c=peak_ambient_c,
                                 peak_wave=peak_wave, wave_dt_s=wave_dt_s,
                                 utilization=thermal_utilization)
    outcome = _run_adverse_campaign(
        adversity, fleet_size=fleet_size, seed=seed,
        heterogeneity=heterogeneity, num_variants=num_variants,
        extra_components=extra_components,
        update_utilization=update_utilization, canary_size=canary_size,
        wave_fractions=wave_fractions, max_failure_rate=max_failure_rate,
        failure_injection_rate=failure_injection_rate, workers=workers)
    speed_by_wave = {wave: speed
                     for wave, _, _, speed in adversity.trace}
    hot = sum(record.rejected for record in outcome.waves
              if speed_by_wave.get(record.index, 1.0) < 1.0)
    cool = sum(record.rejected for record in outcome.waves
               if speed_by_wave.get(record.index, 1.0) >= 1.0)
    return ThermalCampaignResult(
        fleet_size=outcome.fleet_size,
        peak_ambient_c=peak_ambient_c,
        throttled_waves=sum(1 for _, _, _, speed in adversity.trace
                            if speed < 1.0),
        min_speed_factor=min((speed for _, _, _, speed in adversity.trace),
                             default=1.0),
        hot_wave_rejections=hot,
        cool_wave_rejections=cool,
        verdicts_flipped=hot > 0 and outcome.admitted > 0,
        admitted=outcome.admitted,
        rejected=outcome.rejected,
        deviating=outcome.deviating,
        halted=outcome.halted,
        halted_wave=outcome.halted_wave,
        update_coverage=outcome.update_coverage,
        acceptance_rate=outcome.acceptance_rate,
        thermal_trace=list(adversity.trace),
        waves=[record.to_dict() for record in outcome.waves])
