"""Tests for the CAN substrate: frames, bus arbitration, controllers, the
virtualized PF/VF controller and the FPGA resource model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.bus import BusError, CanBus
from repro.can.controller import AcceptanceFilter, CanController
from repro.can.frame import CanFrame, FrameType, frame_bit_length, transmission_time
from repro.can.resources import FpgaResourceModel, ResourceEstimate, break_even_vms
from repro.can.virtualization import (
    TxSchedulingPolicy,
    VirtualizationError,
    VirtualizationLatencyModel,
    VirtualizedCanController,
)
from repro.sim.kernel import Simulator


class TestCanFrame:
    def test_standard_id_bounds(self):
        CanFrame(can_id=0x7FF)
        with pytest.raises(ValueError):
            CanFrame(can_id=0x800)
        CanFrame(can_id=0x800, extended=True)
        with pytest.raises(ValueError):
            CanFrame(can_id=0x2000_0000, extended=True)

    def test_payload_limit(self):
        CanFrame(can_id=1, payload=b"x" * 8)
        with pytest.raises(ValueError):
            CanFrame(can_id=1, payload=b"x" * 9)

    def test_remote_frame_has_no_payload(self):
        with pytest.raises(ValueError):
            CanFrame(can_id=1, payload=b"x", frame_type=FrameType.REMOTE)

    def test_arbitration_key_orders_by_id(self):
        assert CanFrame(can_id=0x10).arbitration_key() < CanFrame(can_id=0x20).arbitration_key()
        assert (CanFrame(can_id=0x10).arbitration_key()
                < CanFrame(can_id=0x10, extended=True).arbitration_key())

    @given(dlc=st.integers(min_value=0, max_value=8))
    @settings(max_examples=9, deadline=None)
    def test_bit_length_monotonic_in_dlc(self, dlc):
        assert frame_bit_length(dlc + 0) <= frame_bit_length(min(8, dlc + 1))
        assert frame_bit_length(dlc, extended=True) > frame_bit_length(dlc, extended=False)

    def test_known_bit_length_range(self):
        # A classical 8-byte standard frame is ~111 bits + stuffing + IFS.
        assert 110 <= frame_bit_length(8) <= 140

    def test_transmission_time(self):
        assert transmission_time(8, 500_000.0) == pytest.approx(frame_bit_length(8) / 500_000.0)
        with pytest.raises(ValueError):
            transmission_time(8, 0.0)


class TestAcceptanceFilter:
    def test_accept_all_and_exact(self):
        assert AcceptanceFilter.accept_all().accepts(0x123)
        exact = AcceptanceFilter.exact(0x123)
        assert exact.accepts(0x123)
        assert not exact.accepts(0x124)

    def test_masked_filter(self):
        group = AcceptanceFilter(match=0x100, mask=0x700)
        assert group.accepts(0x1FF)
        assert not group.accepts(0x200)


def _two_node_bus(sim):
    bus = CanBus(sim, bitrate_bps=500_000.0)
    a = CanController(sim, "node_a")
    b = CanController(sim, "node_b")
    bus.attach(a)
    bus.attach(b)
    return bus, a, b


class TestCanBus:
    def test_frame_delivered_to_other_node(self, sim):
        bus, a, b = _two_node_bus(sim)
        a.send(CanFrame(can_id=0x100, payload=b"\x01\x02"))
        sim.run(until=0.01)
        assert len(b.received) == 1
        assert b.received[0].frame.can_id == 0x100
        assert bus.stats.frames_transmitted == 1

    def test_priority_arbitration(self, sim):
        bus, a, b = _two_node_bus(sim)
        monitor = CanController(sim, "monitor")
        bus.attach(monitor)
        # Occupy the bus with a first frame; the low- and high-priority frames
        # then contend in the next arbitration round and the lower identifier
        # must win regardless of enqueue order.
        a.send(CanFrame(can_id=0x300, payload=b"\x00" * 8))
        a.send(CanFrame(can_id=0x500))
        b.send(CanFrame(can_id=0x100))
        sim.run(until=0.01)
        received_ids = [m.frame.can_id for m in monitor.received]
        assert received_ids == [0x300, 0x100, 0x500]

    def test_bus_busy_defers_new_frames(self, sim):
        bus, a, b = _two_node_bus(sim)
        a.send(CanFrame(can_id=0x200, payload=b"\xff" * 8))
        sim.run(max_events=1)  # the frame became visible and transmission started
        assert bus.busy
        sim.run(until=0.01)
        assert not bus.busy

    def test_utilization_accounting(self, sim):
        bus, a, b = _two_node_bus(sim)
        for index in range(10):
            a.send(CanFrame(can_id=0x100 + index, payload=b"\x00" * 8))
        sim.run(until=0.01)
        assert bus.stats.frames_transmitted == 10
        assert 0.0 < bus.stats.utilization(0.01) <= 1.0

    def test_acceptance_filter_drops_frames(self, sim):
        bus = CanBus(sim)
        sender = CanController(sim, "sender")
        receiver = CanController(sim, "receiver", filters=[AcceptanceFilter.exact(0x123)])
        bus.attach(sender)
        bus.attach(receiver)
        sender.send(CanFrame(can_id=0x200))
        sender.send(CanFrame(can_id=0x123))
        sim.run(until=0.01)
        assert [m.frame.can_id for m in receiver.received] == [0x123]

    def test_double_attach_rejected(self, sim):
        bus, a, _ = _two_node_bus(sim)
        with pytest.raises(BusError):
            bus.attach(a)

    def test_tx_overflow_counted(self, sim):
        bus = CanBus(sim)
        node = CanController(sim, "node", tx_queue_depth=2)
        bus.attach(node)
        results = [node.send(CanFrame(can_id=i)) for i in range(5)]
        assert results.count(None) >= 1
        assert node.tx_overflows >= 1

    def test_invalid_bitrate(self, sim):
        with pytest.raises(BusError):
            CanBus(sim, bitrate_bps=0.0)


def _virtualized_setup(sim, num_vfs=2, policy=TxSchedulingPolicy.PRIORITY):
    bus = CanBus(sim, bitrate_bps=500_000.0)
    remote = CanController(sim, "remote")
    controller = VirtualizedCanController(sim, "virt", tx_policy=policy)
    bus.attach(remote)
    bus.attach(controller)
    vfs = []
    for index in range(num_vfs):
        vfs.append(controller.pf.create_vf("hypervisor", f"vf{index}", f"vm{index}",
                                           [AcceptanceFilter.exact(0x200 + index)], 16, 32))
    return bus, remote, controller, vfs


class TestVirtualizedCanController:
    def test_pf_rejects_unprivileged_caller(self, sim):
        controller = VirtualizedCanController(sim, "virt")
        with pytest.raises(VirtualizationError):
            controller.pf.create_vf("guest_vm", "vf0", "guest_vm")
        with pytest.raises(VirtualizationError):
            controller.pf.set_bitrate("guest_vm", 125_000.0)

    def test_vf_data_path_round_trip(self, sim):
        bus, remote, controller, vfs = _virtualized_setup(sim)
        remote.rx_callback = lambda msg: remote.send(CanFrame(can_id=0x200, payload=b"\x02"))
        controller.send_from_vf("vf0", CanFrame(can_id=0x100, payload=b"\x01"))
        sim.run(until=0.01)
        assert len(vfs[0].received) == 1
        assert vfs[1].received == []  # filtering isolates the other VF

    def test_added_latency_within_paper_range(self, sim):
        """The calibrated virtualization overhead for 2-8 VFs and 8-byte
        payloads lies in the published 7-11 us band."""
        model = VirtualizationLatencyModel()
        for vfs in range(2, 9):
            overhead = model.round_trip_overhead(vfs, 8)
            assert 6.5e-6 <= overhead <= 11.5e-6

    def test_round_trip_slower_than_native_by_overhead(self, sim):
        bus, remote, controller, vfs = _virtualized_setup(sim, num_vfs=1)
        remote.rx_callback = lambda msg: remote.send(CanFrame(can_id=0x200, payload=b"\x02" * 8))
        controller.send_from_vf("vf0", CanFrame(can_id=0x100, payload=b"\x01" * 8))
        sim.run(until=0.01)
        virtual_rtt = vfs[0].received[0].delivery_time

        sim2 = Simulator()
        bus2 = CanBus(sim2, bitrate_bps=500_000.0)
        remote2 = CanController(sim2, "remote")
        native = CanController(sim2, "native")
        bus2.attach(remote2)
        bus2.attach(native)
        remote2.rx_callback = lambda msg: remote2.send(CanFrame(can_id=0x200, payload=b"\x02" * 8))
        native.send(CanFrame(can_id=0x100, payload=b"\x01" * 8))
        sim2.run(until=0.01)
        native_rtt = native.received[0].delivery_time

        added = virtual_rtt - native_rtt
        assert 2e-6 <= added <= 15e-6
        # near-native: the overhead is small relative to the full round trip
        assert added < 0.1 * native_rtt

    def test_priority_preserved_across_vfs(self, sim):
        bus, remote, controller, vfs = _virtualized_setup(sim, num_vfs=2)
        # Occupy the bus first so both VF frames are queued when arbitration runs.
        remote.send(CanFrame(can_id=0x001, payload=b"\x00" * 8))
        controller.send_from_vf("vf0", CanFrame(can_id=0x400))
        controller.send_from_vf("vf1", CanFrame(can_id=0x050))
        sim.run(until=0.01)
        received = [m.frame.can_id for m in remote.received]
        assert received == [0x050, 0x400]

    def test_round_robin_policy_ignores_priority(self, sim):
        bus, remote, controller, vfs = _virtualized_setup(
            sim, num_vfs=2, policy=TxSchedulingPolicy.ROUND_ROBIN)
        remote.send(CanFrame(can_id=0x001, payload=b"\x00" * 8))
        controller.send_from_vf("vf0", CanFrame(can_id=0x400))
        controller.send_from_vf("vf1", CanFrame(can_id=0x050))
        sim.run(until=0.01)
        received = [m.frame.can_id for m in remote.received]
        assert received == [0x400, 0x050]

    def test_disabled_vf_rejects_send(self, sim):
        _, _, controller, vfs = _virtualized_setup(sim)
        controller.pf.enable_vf("hypervisor", "vf0", enabled=False)
        with pytest.raises(VirtualizationError):
            controller.send_from_vf("vf0", CanFrame(can_id=0x100))

    def test_destroy_vf(self, sim):
        _, _, controller, _ = _virtualized_setup(sim)
        controller.pf.destroy_vf("hypervisor", "vf0")
        with pytest.raises(VirtualizationError):
            controller.vf("vf0")

    def test_duplicate_vf_rejected(self, sim):
        _, _, controller, _ = _virtualized_setup(sim)
        with pytest.raises(VirtualizationError):
            controller.pf.create_vf("hypervisor", "vf0", "vmX")

    def test_unmatched_frame_falls_back_to_pf_owner(self, sim):
        bus, remote, controller, vfs = _virtualized_setup(sim)
        remote.send(CanFrame(can_id=0x7F0))  # matches no VF filter
        sim.run(until=0.01)
        assert all(vf.received == [] for vf in vfs)
        assert len(controller.received) == 1


class TestFpgaResourceModel:
    def test_break_even_at_small_vm_count(self):
        model = FpgaResourceModel()
        break_even = break_even_vms(model)
        assert 2 <= break_even <= 5

    def test_virtualized_scales_slower_than_standalone(self):
        model = FpgaResourceModel()
        rows = model.sweep(8)
        virt_growth = rows[-1]["virtualized_total"] - rows[0]["virtualized_total"]
        stand_growth = rows[-1]["standalone_total"] - rows[0]["standalone_total"]
        assert virt_growth < stand_growth
        assert rows[-1]["ratio"] < 1.0

    def test_single_vm_overhead_above_one(self):
        assert FpgaResourceModel().overhead_ratio(1) > 1.0

    def test_resource_estimate_arithmetic(self):
        a = ResourceEstimate(100, 50)
        assert (a + a).total == 300
        assert a.scaled(3).luts == 300
        with pytest.raises(ValueError):
            a.scaled(-1)

    def test_invalid_arguments(self):
        model = FpgaResourceModel()
        with pytest.raises(ValueError):
            model.standalone(-1)
        with pytest.raises(ValueError):
            model.overhead_ratio(0)
