"""The vehicle's self-representation.

"The overall monitoring concept must ensure that metrics from different
layers can be aggregated to a consistent self-representation of the system"
(Section V).  The :class:`SelfModel` collects the latest state of every
layer — platform operating conditions, component lifecycle states,
communication health, ability scores, and the current driving objective —
and exposes immutable :class:`SelfModelSnapshot` objects that the
cross-layer coordinator and the layer handlers reason over.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.layers import Layer
from repro.monitoring.metrics import MetricRegistry
from repro.skills.ability import AbilityGraph


@dataclass(frozen=True)
class SelfModelSnapshot:
    """Immutable snapshot of the aggregated system state at one time."""

    time: float
    platform: Dict[str, Dict[str, float]]
    components: Dict[str, str]
    communication: Dict[str, float]
    abilities: Dict[str, float]
    objective: str
    metrics: Dict[str, Dict[str, float]]
    annotations: Dict[str, Any] = field(default_factory=dict)

    def ability_score(self, name: str) -> Optional[float]:
        return self.abilities.get(name)

    def component_state(self, name: str) -> Optional[str]:
        return self.components.get(name)

    def processor_temperature(self, name: str) -> Optional[float]:
        return self.platform.get(name, {}).get("temperature_c")

    def layer_health(self, layer: Layer) -> float:
        """Coarse per-layer health indicator in [0, 1] used for reporting.

        Platform health is the share of processors below the warning
        temperature and at nominal speed; communication health the share of
        senders without violations; safety health the share of running
        components; ability health the root ability score; objective health
        1.0 unless a safe stop is active.
        """
        if layer == Layer.PLATFORM:
            if not self.platform:
                return 1.0
            healthy = sum(1 for state in self.platform.values()
                          if state.get("speed_factor", 1.0) >= 0.99
                          and state.get("temperature_c", 0.0) < 85.0)
            return healthy / len(self.platform)
        if layer == Layer.COMMUNICATION:
            return self.communication.get("health", 1.0)
        if layer == Layer.SAFETY:
            if not self.components:
                return 1.0
            running = sum(1 for state in self.components.values()
                          if state in ("running", "degraded"))
            return running / len(self.components)
        if layer == Layer.ABILITY:
            if not self.abilities:
                return 1.0
            root = self.annotations.get("main_skill")
            if root and root in self.abilities:
                return self.abilities[root]
            return min(self.abilities.values())
        return 0.0 if self.objective == "safe_stop" else 1.0


class SelfModel:
    """Mutable aggregation point updated by the awareness loop each cycle."""

    def __init__(self, registry: Optional[MetricRegistry] = None) -> None:
        self.registry = registry or MetricRegistry()
        self.ability_graph: Optional[AbilityGraph] = None
        self.objective: str = "drive"
        self._platform_state: Dict[str, Dict[str, float]] = {}
        self._component_state: Dict[str, str] = {}
        self._communication_state: Dict[str, float] = {"health": 1.0}
        self._annotations: Dict[str, Any] = {}
        self.snapshots: List[SelfModelSnapshot] = []

    # -- updates from the layers -------------------------------------------------------

    def attach_ability_graph(self, graph: AbilityGraph) -> None:
        self.ability_graph = graph
        self._annotations["main_skill"] = graph.main_skill

    def update_platform(self, resource: str, **state: float) -> None:
        self._platform_state.setdefault(resource, {}).update(state)

    def update_components(self, states: Dict[str, str]) -> None:
        self._component_state.update(states)

    def update_communication(self, **state: float) -> None:
        self._communication_state.update(state)

    def set_objective(self, objective: str) -> None:
        self.objective = objective

    def annotate(self, key: str, value: Any) -> None:
        self._annotations[key] = value

    def annotation(self, key: str, default: Any = None) -> Any:
        return self._annotations.get(key, default)

    # -- snapshots ------------------------------------------------------------------------

    def snapshot(self, time: float) -> SelfModelSnapshot:
        """Produce (and record) a consistent snapshot of all layers."""
        abilities = self.ability_graph.snapshot() if self.ability_graph else {}
        snapshot = SelfModelSnapshot(
            time=time,
            platform={name: dict(state) for name, state in self._platform_state.items()},
            components=dict(self._component_state),
            communication=dict(self._communication_state),
            abilities=abilities,
            objective=self.objective,
            metrics=self.registry.snapshot(),
            annotations=dict(self._annotations))
        self.snapshots.append(snapshot)
        return snapshot

    def latest(self) -> Optional[SelfModelSnapshot]:
        return self.snapshots[-1] if self.snapshots else None

    def history_of_objective(self) -> List[str]:
        return [snapshot.objective for snapshot in self.snapshots]
