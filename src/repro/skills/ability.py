"""Ability graphs: run-time capability monitoring.

"A skill can be understood as an abstract representation of the driving task
including the conditions necessary to provide it while an ability is derived
from an abstract skill by instantiation and including information about the
ability's current performance." (Section IV)

An :class:`AbilityGraph` mirrors the structure of a :class:`SkillGraph` but
every node carries a current performance score in [0, 1].  Leaf scores
(sensor quality, actuator availability) are set from monitor observations;
skill scores are computed bottom-up through a propagation policy, and the
root score is the vehicle's current ability level for the main driving task,
which "can then guide decision making and the vehicle's behavior execution".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.monitoring.anomaly import Anomaly, AnomalySeverity, AnomalyType
from repro.skills.graph import NodeKind, SkillGraph, SkillGraphError


class AbilityLevel(enum.IntEnum):
    """Discrete ability levels derived from the continuous performance score."""

    UNAVAILABLE = 0
    SEVERELY_DEGRADED = 1
    DEGRADED = 2
    FULLY_AVAILABLE = 3

    @classmethod
    def from_score(cls, score: float) -> "AbilityLevel":
        if score >= 0.9:
            return cls.FULLY_AVAILABLE
        if score >= 0.6:
            return cls.DEGRADED
        if score >= 0.3:
            return cls.SEVERELY_DEGRADED
        return cls.UNAVAILABLE


class PropagationPolicy(enum.Enum):
    """How a skill's score is computed from its own health and its dependencies.

    * ``MIN`` — weakest-link semantics: a skill is only as good as its worst
      dependency (conservative, the default).
    * ``WEIGHTED`` — weighted geometric mean of the dependencies; reflects
      that some dependencies matter more than others and that several mild
      degradations compound.
    """

    MIN = "min"
    WEIGHTED = "weighted"


@dataclass
class Ability:
    """Run-time state of one node of the ability graph.

    Attributes
    ----------
    name:
        Node name (same as the skill-graph node).
    kind:
        Node kind (skill / data source / data sink).
    implementation:
        Name of the software component or device realizing the ability; used
        to join ability state with platform/security observations.
    intrinsic_score:
        The node's own health in [0, 1] before considering dependencies
        (sensor data quality, actuator health, control performance metric).
    score:
        The propagated performance score (equals ``intrinsic_score`` for
        leaves).
    """

    name: str
    kind: NodeKind
    implementation: Optional[str] = None
    intrinsic_score: float = 1.0
    score: float = 1.0

    @property
    def level(self) -> AbilityLevel:
        return AbilityLevel.from_score(self.score)

    @property
    def available(self) -> bool:
        return self.level >= AbilityLevel.DEGRADED


class AbilityGraph:
    """Run-time instantiation of a skill graph with performance propagation."""

    def __init__(self, skill_graph: SkillGraph,
                 policy: PropagationPolicy = PropagationPolicy.MIN,
                 implementations: Optional[Dict[str, str]] = None) -> None:
        problems = skill_graph.validate()
        if problems:
            raise SkillGraphError(
                "cannot instantiate ability graph from invalid skill graph: "
                + "; ".join(problems))
        self.skill_graph = skill_graph
        self.policy = policy
        self._abilities: Dict[str, Ability] = {}
        implementations = implementations or {}
        for node in skill_graph.nodes():
            self._abilities[node.name] = Ability(
                name=node.name, kind=node.kind,
                implementation=implementations.get(node.name))
        self._history: List[Tuple[float, str, float]] = []
        self.propagate()

    # -- accessors ------------------------------------------------------------------

    @property
    def main_skill(self) -> str:
        return self.skill_graph.main_skill

    def ability(self, name: str) -> Ability:
        try:
            return self._abilities[name]
        except KeyError as exc:
            raise SkillGraphError(f"unknown ability {name!r}") from exc

    def abilities(self) -> List[Ability]:
        return list(self._abilities.values())

    def score(self, name: str) -> float:
        return self.ability(name).score

    def level(self, name: str) -> AbilityLevel:
        return self.ability(name).level

    def root_score(self) -> float:
        return self.score(self.main_skill)

    def root_level(self) -> AbilityLevel:
        return self.level(self.main_skill)

    def implementation_of(self, name: str) -> Optional[str]:
        return self.ability(name).implementation

    def abilities_implemented_by(self, implementation: str) -> List[Ability]:
        return [a for a in self._abilities.values() if a.implementation == implementation]

    # -- updates -----------------------------------------------------------------------

    def observe(self, name: str, intrinsic_score: float, time: float = 0.0) -> None:
        """Set the intrinsic score of a node from a monitor observation and
        re-propagate."""
        if not 0.0 <= intrinsic_score <= 1.0:
            raise ValueError("intrinsic score must lie in [0, 1]")
        ability = self.ability(name)
        ability.intrinsic_score = intrinsic_score
        self._history.append((time, name, intrinsic_score))
        self.propagate()

    def fail(self, name: str, time: float = 0.0) -> None:
        """Mark a node as completely failed (score 0)."""
        self.observe(name, 0.0, time=time)

    def restore(self, name: str, time: float = 0.0) -> None:
        """Restore a node to nominal health."""
        self.observe(name, 1.0, time=time)

    def fail_implementation(self, implementation: str, time: float = 0.0) -> List[str]:
        """Fail every ability realized by the given component (used when the
        platform or security layer shuts the component down); returns the
        affected ability names."""
        affected = [a.name for a in self.abilities_implemented_by(implementation)]
        for name in affected:
            self.ability(name).intrinsic_score = 0.0
            self._history.append((time, name, 0.0))
        if affected:
            self.propagate()
        return affected

    # -- propagation -----------------------------------------------------------------------

    def propagate(self) -> float:
        """Recompute all scores bottom-up; returns the root score."""
        for name in self.skill_graph.topological_order():
            ability = self._abilities[name]
            node = self.skill_graph.node(name)
            if node.is_leaf_kind:
                ability.score = ability.intrinsic_score
                continue
            dependencies = self.skill_graph.dependencies_of(name)
            if not dependencies:
                ability.score = ability.intrinsic_score
                continue
            dependency_scores = [self._abilities[dep].score for dep in dependencies]
            if self.policy == PropagationPolicy.MIN:
                combined = min(dependency_scores)
            else:
                weights = [self.skill_graph.dependency_weight(name, dep) for dep in dependencies]
                total_weight = sum(weights)
                combined = 1.0
                for dep_score, weight in zip(dependency_scores, weights):
                    # Weighted geometric mean; a zero dependency forces zero.
                    if dep_score <= 0.0:
                        combined = 0.0
                        break
                    combined *= dep_score ** (weight / total_weight)
            ability.score = min(ability.intrinsic_score, combined)
        return self.root_score()

    # -- diagnostics -------------------------------------------------------------------------

    def degraded_abilities(self, threshold: float = 0.9) -> List[Ability]:
        """All abilities whose score is below the threshold, ordered worst-first."""
        degraded = [a for a in self._abilities.values() if a.score < threshold]
        return sorted(degraded, key=lambda a: (a.score, a.name))

    def root_cause_candidates(self) -> List[Ability]:
        """Degraded leaves / intrinsically degraded skills — the candidates
        the degradation manager should address first.

        Error propagation in the graph means a degraded root usually has a
        small set of intrinsically degraded nodes underneath; this query
        isolates them (the paper's "visualize error propagation" use case).
        """
        candidates = [a for a in self._abilities.values()
                      if a.intrinsic_score < 1.0 - 1e-9]
        return sorted(candidates, key=lambda a: (a.intrinsic_score, a.name))

    def anomalies(self, time: float, threshold: float = 0.9) -> List[Anomaly]:
        """Express current degradations as anomalies on the ability layer."""
        result: List[Anomaly] = []
        for ability in self.degraded_abilities(threshold):
            if ability.level == AbilityLevel.UNAVAILABLE:
                severity = AnomalySeverity.CRITICAL
            elif ability.level == AbilityLevel.SEVERELY_DEGRADED:
                severity = AnomalySeverity.CRITICAL
            else:
                severity = AnomalySeverity.WARNING
            result.append(Anomaly(
                anomaly_type=AnomalyType.CONTROL_PERFORMANCE
                if ability.kind == NodeKind.SKILL else AnomalyType.SENSOR_DEGRADATION,
                subject=ability.name, layer="ability", severity=severity, time=time,
                observed=ability.score, expected=1.0,
                details={"level": ability.level.name,
                         "implementation": ability.implementation}))
        return result

    def history(self) -> List[Tuple[float, str, float]]:
        return list(self._history)

    def snapshot(self) -> Dict[str, float]:
        """Name -> current score for all nodes (for the self-model)."""
        return {name: ability.score for name, ability in self._abilities.items()}
