"""Model-domain formal analyses (Section II.A and V of the paper).

These are the viewpoint-specific analyses the Multi-Change Controller runs
as acceptance tests during the in-field integration process:

* :mod:`repro.analysis.cpa` — compositional performance analysis: busy-window
  worst-case response times, end-to-end latencies, schedulability verdicts.
* :mod:`repro.analysis.dependency` — automated cross-layer dependency
  analysis (the FMEA-like analysis of [23]/[24] cited in Section V).
* :mod:`repro.analysis.threat` — security threat modelling for vehicular
  systems (exposure/reachability of components from external interfaces).
* :mod:`repro.analysis.safety` — safety viewpoint: ASIL consistency,
  redundancy and fail-operational coverage.
* :mod:`repro.analysis.cache` — fingerprint-keyed memoization of WCRT
  analyses, so acceptance-test sweeps stop re-deriving identical busy-window
  fixpoints.
* :mod:`repro.analysis.incremental` — delta-aware incremental WCRT engine:
  priority-pruned reuse, warm-started fixpoints and shared interference
  memoization for near-identical task sets (the dominant acceptance-sweep
  workload).
* :mod:`repro.analysis.compositional` — multi-resource CPA: CAN
  response-time analysis, the system-level event-model propagation fixpoint
  and jitter-aware distributed cause-effect-chain latency bounds.
* :mod:`repro.analysis.batch` — vectorized batch busy-window kernel: solves
  whole congruence groups of task sets in lockstep (numpy or pure-Python),
  bit-identical to the scalar engine.
"""

from repro.analysis.batch import (
    BatchResponseTimeAnalysis,
    congruence_signature,
    numpy_available,
)
from repro.analysis.cpa import (
    EventModel,
    ResponseTimeResult,
    ResponseTimeAnalysis,
    EndToEndPath,
    end_to_end_latency,
)
from repro.analysis.dependency import (
    DependencyKind,
    Dependency,
    DependencyGraph,
    DependencyAnalysis,
    FailureEffect,
)
from repro.analysis.threat import ThreatModel, ThreatAssessment, AttackPath
from repro.analysis.safety import SafetyAnalysis, SafetyFinding
from repro.analysis.cache import (
    AnalysisCache,
    CachedResponseTimeAnalysis,
    SnapshotError,
    fingerprint_taskset,
    taskset_key,
)
from repro.analysis.cache_store import (
    SegmentStore,
    StoreCorruptionError,
    is_segment_store,
)
from repro.analysis.incremental import (
    IncrementalResponseTimeAnalysis,
    InterferenceMemo,
)
from repro.analysis.compositional import (
    CanResponseTimeAnalysis,
    CauseEffectChain,
    EventLink,
    FrameSpec,
    SystemAnalysis,
    SystemAnalysisResult,
    distributed_end_to_end_latency,
)

__all__ = [
    "BatchResponseTimeAnalysis",
    "congruence_signature",
    "numpy_available",
    "EventModel",
    "ResponseTimeResult",
    "ResponseTimeAnalysis",
    "EndToEndPath",
    "end_to_end_latency",
    "DependencyKind",
    "Dependency",
    "DependencyGraph",
    "DependencyAnalysis",
    "FailureEffect",
    "ThreatModel",
    "ThreatAssessment",
    "AttackPath",
    "SafetyAnalysis",
    "SafetyFinding",
    "AnalysisCache",
    "CachedResponseTimeAnalysis",
    "SnapshotError",
    "SegmentStore",
    "StoreCorruptionError",
    "is_segment_store",
    "fingerprint_taskset",
    "taskset_key",
    "IncrementalResponseTimeAnalysis",
    "InterferenceMemo",
    "CanResponseTimeAnalysis",
    "CauseEffectChain",
    "EventLink",
    "FrameSpec",
    "SystemAnalysis",
    "SystemAnalysisResult",
    "distributed_end_to_end_latency",
]
