"""Memoization of busy-window WCRT analyses.

Acceptance-test sweeps (E9, the in-field update campaigns, the experiment
runner's grids) re-analyse the same per-processor task sets over and over:
every MCC change request re-runs the timing viewpoint on *all* processors,
but typically only one processor's task set actually changed.  The busy-window
fixpoint iteration is the dominant cost, and its result depends only on the
task-set parameters, the processor speed factor and the event models — so it
can be memoized on a *fingerprint* of exactly those inputs.

:class:`AnalysisCache` stores whole task-set analyses keyed on
:func:`taskset_key` (the exact parameter tuple — collision-free and cheap to
build on the hot admission path; :func:`fingerprint_taskset` offers a hex
digest of the same identity for logs and records) with true LRU eviction;
:class:`CachedResponseTimeAnalysis` is a drop-in façade over
:class:`~repro.analysis.cpa.ResponseTimeAnalysis` that consults a cache
before iterating.  ``TimingAcceptanceTest`` accepts an optional cache so MCC
sweeps transparently benefit.

Cache misses are computed by an
:class:`~repro.analysis.incremental.IncrementalResponseTimeAnalysis` engine:
a miss on a task set that *almost* matches a recently analysed one (the
dominant change-campaign workload) is answered by delta re-analysis —
unchanged higher-priority tasks are reused and re-analysed fixpoints are
warm-started — instead of a from-scratch busy-window derivation.

One process-local default cache (:func:`default_cache`) is shared by the
in-field scenario and the experiment runner, so every run of a sweep
executed in the same worker process benefits from previously derived
analyses.
"""

from __future__ import annotations

import hashlib
import logging
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.cache_store import SegmentStore, is_segment_store
from repro.analysis.cpa import EventModel, ResponseTimeAnalysis, ResponseTimeResult
from repro.analysis.incremental import IncrementalResponseTimeAnalysis
from repro.platform.tasks import TaskSet

logger = logging.getLogger(__name__)


class SnapshotError(ValueError):
    """A cache snapshot exists but cannot be read (corrupt or foreign).

    Deliberately distinct from a *missing* snapshot: a missing file is the
    normal cold-start case (``missing_ok=True`` covers it), while a corrupt
    one means previously persisted analyses are being silently lost — that
    must surface loudly unless the caller explicitly opts into
    ``repair=True``.
    """


def taskset_key(taskset: TaskSet, speed_factor: float = 1.0,
                event_models: Optional[Dict[str, EventModel]] = None) -> Tuple:
    """Exact, hashable identity of everything the WCRT analysis depends on.

    Two task sets with identical (name, period, wcet, deadline, priority,
    jitter) tuples, the same speed factor and the same event-model overrides
    produce the same key regardless of insertion order.  The key is the
    parameter tuple itself — dictionary lookups compare it by value, so
    collisions are impossible and no serialization/digest cost is paid on
    the hot admission path.
    """
    overrides = event_models or {}
    parts = tuple(sorted(
        (task.name, task.period, task.wcet, task.deadline,
         task.priority, task.jitter,
         ((override.period, override.jitter) if override is not None
          else (task.period, task.jitter)))
        for task in taskset
        for override in (overrides.get(task.name),)))
    return (round(speed_factor, 12), parts)


def fingerprint_taskset(taskset: TaskSet, speed_factor: float = 1.0,
                        event_models: Optional[Dict[str, EventModel]] = None) -> str:
    """Stable hex fingerprint of a task-set analysis input (see
    :func:`taskset_key`); useful for logs, records and cross-process
    comparison, where a compact string beats a nested tuple."""
    text = repr(taskset_key(taskset, speed_factor, event_models)).encode("utf-8")
    return hashlib.sha256(text).hexdigest()


class AnalysisCache:
    """Content-addressed store of task-set WCRT analyses.

    The cache is an LRU mapping fingerprint -> per-task results; it never
    invalidates (fingerprints are content hashes, so a changed task set is a
    different key).  A hit moves the entry to the most-recently-used
    position; when ``max_entries`` is reached the least-recently-used entry
    is evicted, so long sweeps that keep cycling over a working set larger
    than a FIFO window no longer thrash.  ``hits``/``misses``/``evictions``
    counters make cache behaviour observable for tests and benchmark tables.

    Misses are delegated to an incremental engine (shared across all
    entries), so even the *first* analysis of a mutated task set reuses the
    unchanged part of its predecessor.

    Because entries are content-addressed they are also *portable*:
    :meth:`save_snapshot` / :meth:`load_snapshot` persist them across
    processes and runs (the sharded campaign engine warm-starts its workers
    and its re-runs this way), and :meth:`export_entries` /
    :meth:`merge_entries` move them between live caches.  Pickling a cache
    object itself deliberately ships it *empty* (see :meth:`__getstate__`).
    """

    def __init__(self, max_entries: int = 4096,
                 engine: Optional[IncrementalResponseTimeAnalysis] = None,
                 batch_kernel: bool = False) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.max_entries = max_entries
        self.engine = engine if engine is not None else IncrementalResponseTimeAnalysis()
        if batch_kernel:
            self.engine.batch_kernel = True
        self._store: "OrderedDict[Tuple, Dict[str, ResponseTimeResult]]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Optional :class:`~repro.observability.tracer.CampaignTracer` this
        #: cache reports lookup/merge/snapshot events into (set by the
        #: campaign engine when tracing is on).  Pure observation — never
        #: consulted for any decision — and deliberately not pickled:
        #: :meth:`__getstate__` ships capacity only, so a cache arriving in
        #: a shard worker never drags a parent-process tracer along.
        self.tracer = None

    @property
    def batch_kernel(self) -> bool:
        """Whether cold miss batches go through the lockstep batch kernel."""
        return self.engine.batch_kernel

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups answered from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        """Drop all entries (including the engine's delta history) and reset
        the counters."""
        self._store.clear()
        self.engine.clear()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def analyse(self, taskset: TaskSet, speed_factor: float = 1.0,
                event_models: Optional[Dict[str, EventModel]] = None
                ) -> Dict[str, ResponseTimeResult]:
        """Analyse ``taskset``, reusing a memoized result when available.

        Returns the same mapping task name -> :class:`ResponseTimeResult`
        that :meth:`ResponseTimeAnalysis.analyse` produces.  Callers get a
        fresh dict per call (so adding/removing entries cannot poison later
        hits); the :class:`ResponseTimeResult` values themselves are shared
        and must be treated as read-only.
        """
        key = taskset_key(taskset, speed_factor, event_models)
        cached = self._store.get(key)
        if cached is not None:
            self.hits += 1
            self._store.move_to_end(key)
            if self.tracer is not None:
                self.tracer.emit("cache.analyse", hit=True, tasks=len(taskset))
            return dict(cached)
        self.misses += 1
        if self.tracer is not None:
            self.tracer.emit("cache.analyse", hit=False, tasks=len(taskset))
        results = self.engine.analyse(taskset, speed_factor=speed_factor,
                                      event_models=event_models)
        if len(self._store) >= self.max_entries:
            self._store.popitem(last=False)
            self.evictions += 1
        self._store[key] = results
        return dict(results)

    def analyse_many(self, tasksets: Iterable[TaskSet], speed_factor: float = 1.0,
                     event_models: Optional[Dict[str, EventModel]] = None
                     ) -> List[Dict[str, ResponseTimeResult]]:
        """Batched lookup of a whole admission wave, in input order.

        Hits are answered from the store; all misses are forwarded to the
        incremental engine as **one**
        :meth:`~repro.analysis.incremental.IncrementalResponseTimeAnalysis.analyze_many`
        batch, so near-identical task sets within the batch (the fleet-wave
        workload: per-vehicle perturbations of a shared baseline) reuse and
        warm-start each other even on their first analysis.  Results are
        identical to per-task-set :meth:`analyse` calls in the same order.
        """
        ordered = list(tasksets)
        hits_before, misses_before = self.hits, self.misses
        keys = [taskset_key(taskset, speed_factor, event_models)
                for taskset in ordered]
        results: List[Optional[Dict[str, ResponseTimeResult]]] = [None] * len(ordered)
        misses: List[int] = []
        seen_missing: Dict[Tuple, int] = {}
        for position, key in enumerate(keys):
            cached = self._store.get(key)
            if cached is not None:
                self.hits += 1
                self._store.move_to_end(key)
                results[position] = dict(cached)
            elif key in seen_missing:
                # Duplicate within the batch: one engine analysis serves both.
                self.hits += 1
                misses_position = seen_missing[key]
                results[position] = misses_position  # type: ignore[assignment]
            else:
                self.misses += 1
                seen_missing[key] = position
                misses.append(position)
        if misses:
            computed = self.engine.analyze_many([ordered[i] for i in misses],
                                                speed_factor=speed_factor,
                                                event_models=event_models)
            for position, result in zip(misses, computed):
                if len(self._store) >= self.max_entries:
                    self._store.popitem(last=False)
                    self.evictions += 1
                self._store[keys[position]] = result
                results[position] = dict(result)
        # Resolve intra-batch duplicates recorded as back-references.
        for position, value in enumerate(results):
            if isinstance(value, int):
                results[position] = dict(results[value])
        if self.tracer is not None:
            self.tracer.emit("cache.analyse_many", requested=len(ordered),
                             hits=self.hits - hits_before,
                             misses=self.misses - misses_before)
        return results  # type: ignore[return-value]

    def schedulable(self, taskset: TaskSet, speed_factor: float = 1.0,
                    event_models: Optional[Dict[str, EventModel]] = None) -> bool:
        """Cached schedulability verdict for the whole task set."""
        return all(result.schedulable
                   for result in self.analyse(taskset, speed_factor, event_models).values())

    # -- cross-process / cross-run persistence -----------------------------
    #
    # Entries are content-addressed on :func:`taskset_key`, so a snapshot is
    # valid in any process and at any later time: a key either describes the
    # exact same analysis input (same memoized result) or it will simply
    # never be looked up.  Snapshots carry *entries only* — counters and the
    # incremental engine's delta history are execution state, not content.

    _SNAPSHOT_FORMAT = 1

    def keys(self) -> List[Tuple]:
        """The stored :func:`taskset_key` tuples in LRU order.

        A cheap enumeration (no result copies) for callers that only need
        to know *what* is cached — e.g. a shard worker snapshotting its
        warm-start set before a wave so it can export the delta afterwards.
        """
        return list(self._store.keys())

    def export_entries(self, exclude: Optional[Iterable[Tuple]] = None
                       ) -> List[Tuple[Tuple, Dict[str, ResponseTimeResult]]]:
        """The stored entries as ``(taskset_key, results)`` pairs in LRU
        order (least recently used first), minus the keys in ``exclude``.

        Shard workers use the ``exclude`` filter to return only the analyses
        they actually derived (everything beyond the warm-start snapshot
        they were seeded with), keeping the fan-in payload proportional to
        the new work instead of the whole store.
        """
        excluded = set(exclude) if exclude is not None else ()
        return [(key, dict(results)) for key, results in self._store.items()
                if key not in excluded]

    def merge_entries(self, entries: Iterable[Tuple[Tuple, Dict[str, ResponseTimeResult]]]
                      ) -> int:
        """Absorb externally computed entries (e.g. a shard worker's fan-in).

        Already-present keys keep their stored results (content-addressing
        makes both sides identical anyway) but are refreshed to
        most-recently-used; new keys are inserted subject to the LRU bound.
        Merging is not a lookup: ``hits``/``misses`` are untouched, only
        ``evictions`` can grow.  Returns the number of *new* keys inserted.
        """
        inserted = 0
        for key, results in entries:
            if key in self._store:
                self._store.move_to_end(key)
                continue
            if len(self._store) >= self.max_entries:
                self._store.popitem(last=False)
                self.evictions += 1
            self._store[key] = dict(results)
            inserted += 1
        if self.tracer is not None:
            self.tracer.emit("cache.merge", absorbed=inserted)
        return inserted

    def save_snapshot(self, path: str) -> int:
        """Persist the current entries to ``path`` (atomic replace).

        The snapshot is a pickle of the content-addressed entries; loading
        it can never change a verdict, only skip busy-window derivations.
        Returns the number of entries written.
        """
        entries = self.export_entries()
        payload = {"format": self._SNAPSHOT_FORMAT, "entries": entries}
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(payload, stream, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, path)
        except BaseException:
            if os.path.exists(temp_path):
                os.unlink(temp_path)
            raise
        return len(entries)

    def load_snapshot(self, path: str, missing_ok: bool = False,
                      repair: bool = False) -> int:
        """Merge a persisted snapshot — pickle file or segment store — into
        this cache.

        Loaded entries warm-start later lookups exactly like
        :meth:`merge_entries` (no hit/miss accounting, LRU bound respected).
        Returns the number of new entries absorbed.

        *Missing* and *corrupt* are different situations and are treated
        differently: with ``missing_ok`` a missing path is the normal
        cold-start (0 entries, no error), but a snapshot that exists and
        fails to parse raises :class:`SnapshotError` — silently treating it
        as empty would throw persisted analyses away without a trace.
        ``repair=True`` is the explicit escape hatch: damaged segments (or
        the whole pickle snapshot) are skipped, a warning logs how much was
        dropped, and the readable remainder still warm-starts the cache.

        A directory at ``path`` is read as a
        :class:`~repro.analysis.cache_store.SegmentStore` (the concurrent-
        writer format of the sharded engine); anything else as a
        :meth:`save_snapshot` pickle.
        """
        if not os.path.exists(path):
            if missing_ok:
                return 0
            raise FileNotFoundError(f"no cache snapshot at {path!r}")
        if os.path.isdir(path):
            if not is_segment_store(path):
                raise SnapshotError(f"{path!r} is a directory but not an "
                                    "AnalysisCache segment store (no "
                                    "manifest)")
            store = SegmentStore(path)
            return self.merge_entries(store.read_entries(repair=repair))
        try:
            with open(path, "rb") as stream:
                payload = pickle.load(stream)
        except Exception as exc:
            if repair:
                logger.warning("cache snapshot %r is corrupt (%s: %s) — "
                               "repair skipped 1 snapshot, warm-starting "
                               "empty", path, type(exc).__name__, exc)
                return 0
            raise SnapshotError(
                f"cache snapshot {path!r} exists but cannot be unpickled "
                f"({type(exc).__name__}: {exc}); a missing snapshot would "
                "be fine, a corrupt one is not — pass repair=True to "
                "discard it deliberately") from exc
        if not isinstance(payload, dict) \
                or payload.get("format") != self._SNAPSHOT_FORMAT:
            if repair:
                logger.warning("cache snapshot %r has a foreign format — "
                               "repair skipped 1 snapshot, warm-starting "
                               "empty", path)
                return 0
            raise SnapshotError(f"{path!r} is not an AnalysisCache snapshot")
        return self.merge_entries(payload["entries"])

    def __getstate__(self) -> Dict[str, int]:
        """Pickle travel-light: capacity only, no entries, no engine state.

        A cache is pickled when it rides along inside a bigger object graph
        (a fleet vehicle's acceptance tests crossing into a shard worker);
        shipping the whole store with every such payload would dwarf the
        actual work item.  Cross-process warm-starts are explicit instead —
        :meth:`save_snapshot` / :meth:`load_snapshot`.  Verdicts never
        depend on cache contents, so an empty arrival is always sound.
        """
        return {"max_entries": self.max_entries,
                "batch_kernel": self.engine.batch_kernel}

    def __setstate__(self, state: Dict[str, int]) -> None:
        self.__init__(max_entries=state["max_entries"],
                      batch_kernel=bool(state.get("batch_kernel", False)))


#: Lazily created process-local cache shared by sweeps that do not manage
#: their own (the in-field scenario, the experiment runner's workers).
_DEFAULT_CACHE: Optional[AnalysisCache] = None


def default_cache() -> AnalysisCache:
    """The process-local default :class:`AnalysisCache`.

    Results are content-addressed, so sharing one cache across independent
    campaigns/runs cannot change any verdict — it only removes repeated
    busy-window derivations.  Each worker of a multiprocessing sweep gets its
    own instance (module state is per process), keeping the serial/parallel
    byte-identical-records guarantee intact.
    """
    global _DEFAULT_CACHE
    if _DEFAULT_CACHE is None:
        _DEFAULT_CACHE = AnalysisCache()
    return _DEFAULT_CACHE


class CachedResponseTimeAnalysis:
    """Drop-in replacement for :class:`ResponseTimeAnalysis` backed by a cache.

    Only the whole-task-set entry points (:meth:`analyse`,
    :meth:`schedulable`, :meth:`utilization`) are offered — single-task
    queries go through :meth:`analyse` so one fixpoint computation serves
    every task of the set.
    """

    def __init__(self, taskset: TaskSet, cache: AnalysisCache,
                 speed_factor: float = 1.0,
                 event_models: Optional[Dict[str, EventModel]] = None) -> None:
        self.taskset = taskset
        self.cache = cache
        self.speed_factor = speed_factor
        self._event_models = dict(event_models or {})

    def analyse(self) -> Dict[str, ResponseTimeResult]:
        """Per-task WCRT results (memoized)."""
        return self.cache.analyse(self.taskset, self.speed_factor, self._event_models)

    def response_time(self, task_name: str) -> ResponseTimeResult:
        """Memoized WCRT result of one task of the set."""
        return self.analyse()[task_name]

    def schedulable(self) -> bool:
        """Whether every task meets its deadline (memoized)."""
        return all(result.schedulable for result in self.analyse().values())

    def utilization(self) -> float:
        """Speed-adjusted utilization (cheap; computed directly)."""
        return ResponseTimeAnalysis(self.taskset,
                                    speed_factor=self.speed_factor).utilization()
