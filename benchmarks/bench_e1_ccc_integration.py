"""E1 (Fig. 1): automated in-field integration through the MCC.

Regenerates the acceptance behaviour of the CCC integration process: a batch
of change requests (a configurable fraction of them risky) is integrated
against a shared mixed-criticality platform; the table reports acceptance
rate, rejection reasons and deployed configuration growth, plus a mapping-
strategy ablation.

All runs drive through the scenario registry (``repro.experiments``), so the
rows below are exactly the metric records a sweep would produce.
"""

from __future__ import annotations

import pytest

from conftest import print_table
from repro.experiments import run_scenario


@pytest.mark.benchmark(group="e1-ccc-integration")
def test_e1_update_campaign_acceptance(benchmark):
    """Acceptance behaviour over a 30-request campaign with 30% risky updates."""

    def campaign():
        return run_scenario("infield_update", num_requests=30, seed=7,
                            risky_fraction=0.3)

    record = benchmark(campaign)
    rows = [{key: record[key] for key in
             ("total_requests", "accepted", "rejected", "acceptance_rate",
              "unsafe_update_accepted", "final_version", "deployed_components")}]
    print_table("E1: MCC in-field update campaign (30 requests, 30% risky)", rows)
    print_table("E1: rejections by viewpoint",
                [{"viewpoint": vp, "rejections": count}
                 for vp, count in sorted(record["rejected_by_viewpoint"].items())])
    # The MCC must block every unsafe update while accepting a useful share.
    assert not record["unsafe_update_accepted"]
    assert record["rejected"] > 0
    assert record["accepted"] > 0


@pytest.mark.benchmark(group="e1-ccc-integration")
def test_e1_risky_fraction_sweep(benchmark):
    """Acceptance rate as a function of the risky-update fraction."""

    fractions = [0.0, 0.2, 0.4, 0.6]

    def sweep():
        return [run_scenario("infield_update", num_requests=20, seed=11,
                             risky_fraction=f)
                for f in fractions]

    records = benchmark(sweep)
    rows = [{"risky_fraction": f, "accepted": r["accepted"],
             "rejected": r["rejected"], "acceptance_rate": r["acceptance_rate"]}
            for f, r in zip(fractions, records)]
    print_table("E1: acceptance rate vs risky-update fraction", rows)
    rates = [r["acceptance_rate"] for r in records]
    assert rates[0] >= rates[-1]


@pytest.mark.benchmark(group="e1-ccc-integration")
def test_e1_mapping_strategy_ablation(benchmark):
    """Ablation: first-fit vs worst-fit vs best-fit placement heuristics."""

    strategies = ["first_fit", "worst_fit", "best_fit"]

    def sweep():
        return [run_scenario("infield_update", num_requests=25, seed=13,
                             risky_fraction=0.2, mapping_strategy=s, deploy=False)
                for s in strategies]

    records = benchmark(sweep)
    rows = [{"strategy": s, "accepted": r["accepted"],
             "acceptance_rate": r["acceptance_rate"]}
            for s, r in zip(strategies, records)]
    print_table("E1 ablation: mapping strategy", rows)
    assert all(r["accepted"] > 0 for r in records)
