"""Cross-layer arbitration: route every anomaly to the most appropriate layer.

This module implements the decision logic Section V argues for:

* "A self-aware system is ... able to identify the most appropriate layer to
  respond to detected anomalies without the need to anticipate the exact
  situation at design time" — the coordinator asks every layer for proposals
  and prefers the **lowest layer** that offers an *adequate* countermeasure
  (sufficient predicted effectiveness), choosing the cheapest adequate
  proposal on that layer.
* "As the system can propagate detected problems through the layers, it must
  ensure that these also cooperate and avoid situations in which the problem
  is forwarded ad infinitum" — escalation is strictly monotonic (each anomaly
  only moves towards higher layers), bounded by the number of layers, and an
  anomaly that exhausts all layers falls back to the objective-layer
  safe-stop countermeasure instead of cycling.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.countermeasures import Countermeasure, CountermeasureCatalog, Resolution
from repro.core.layers import LAYER_ORDER, Layer, LayerHandler
from repro.core.self_model import SelfModelSnapshot
from repro.monitoring.anomaly import Anomaly, AnomalySeverity


class ArbitrationPolicy(enum.Enum):
    """Which layer gets to resolve an anomaly.

    * ``LOWEST_ADEQUATE`` — the paper's cross-layer policy (default).
    * ``LOCAL_ONLY`` — only the layer that observed the anomaly may react
      (single-layer baseline for E5/E10).
    * ``ALWAYS_ESCALATE`` — every anomaly is resolved on the objective layer
      (the "stop the vehicle for everything" strawman baseline).
    """

    LOWEST_ADEQUATE = "lowest_adequate"
    LOCAL_ONLY = "local_only"
    ALWAYS_ESCALATE = "always_escalate"


@dataclass
class EscalationRecord:
    """Bookkeeping of the escalation performed for one anomaly."""

    anomaly_id: int
    layers_consulted: List[Layer] = field(default_factory=list)
    proposals_seen: int = 0
    exhausted: bool = False


class CrossLayerCoordinator:
    """Selects the resolving layer and countermeasure for each anomaly."""

    def __init__(self, catalog: Optional[CountermeasureCatalog] = None,
                 policy: ArbitrationPolicy = ArbitrationPolicy.LOWEST_ADEQUATE,
                 adequacy_threshold: float = 0.6,
                 severity_boost: float = 0.1) -> None:
        if not 0.0 < adequacy_threshold <= 1.0:
            raise ValueError("adequacy threshold must be in (0, 1]")
        self.catalog = catalog or CountermeasureCatalog()
        self.policy = policy
        self.adequacy_threshold = adequacy_threshold
        self.severity_boost = severity_boost
        self._handlers: Dict[Layer, List[LayerHandler]] = {}
        self.resolutions: List[Resolution] = []
        self.escalations: List[EscalationRecord] = []

    # -- registration --------------------------------------------------------------------

    def register_handler(self, handler: LayerHandler) -> None:
        self._handlers.setdefault(handler.layer, []).append(handler)

    def handlers_of(self, layer: Layer) -> List[LayerHandler]:
        return list(self._handlers.get(layer, []))

    # -- proposal collection ----------------------------------------------------------------

    def _proposals_for(self, layer: Layer, anomaly: Anomaly,
                       snapshot: SelfModelSnapshot) -> List[Countermeasure]:
        proposals: List[Countermeasure] = []
        for handler in self._handlers.get(layer, []):
            if handler.applicable(anomaly, snapshot):
                proposals.extend(handler.propose(anomaly, snapshot))
        proposals.extend(self.catalog.proposals(layer, anomaly))
        return proposals

    def _required_effectiveness(self, anomaly: Anomaly) -> float:
        """More severe anomalies demand more effective countermeasures."""
        boost = self.severity_boost * max(0, int(anomaly.severity) - int(AnomalySeverity.WARNING))
        return min(1.0, self.adequacy_threshold + boost)

    def _candidate_layers(self, anomaly: Anomaly) -> List[Layer]:
        observed = self._observed_layer(anomaly)
        if self.policy == ArbitrationPolicy.LOCAL_ONLY:
            return [observed]
        if self.policy == ArbitrationPolicy.ALWAYS_ESCALATE:
            return [Layer.OBJECTIVE]
        # LOWEST_ADEQUATE: start from the observing layer and walk upwards.
        start_index = LAYER_ORDER.index(observed)
        return LAYER_ORDER[start_index:]

    @staticmethod
    def _observed_layer(anomaly: Anomaly) -> Layer:
        try:
            return Layer.from_label(anomaly.layer)
        except ValueError:
            return Layer.PLATFORM

    # -- decision --------------------------------------------------------------------------------

    def decide(self, anomaly: Anomaly, snapshot: SelfModelSnapshot) -> Resolution:
        """Choose the resolving layer and countermeasure for one anomaly.

        The search is strictly upwards through the layers, so it terminates
        after at most ``len(LAYER_ORDER)`` steps — the formal argument that a
        problem cannot be forwarded forever.
        """
        record = EscalationRecord(anomaly_id=anomaly.anomaly_id)
        required = self._required_effectiveness(anomaly)
        consulted: List[Layer] = []
        best_fallback: Optional[Countermeasure] = None

        for layer in self._candidate_layers(anomaly):
            consulted.append(layer)
            record.layers_consulted.append(layer)
            proposals = self._proposals_for(layer, anomaly, snapshot)
            record.proposals_seen += len(proposals)
            adequate = [p for p in proposals if p.effectiveness >= required]
            if adequate:
                chosen = min(adequate, key=lambda p: (p.cost, -p.effectiveness, p.name))
                resolution = Resolution(anomaly=anomaly, time=anomaly.time,
                                        chosen_layer=layer, countermeasure=chosen,
                                        escalation_path=consulted, resolved=True)
                self.resolutions.append(resolution)
                self.escalations.append(record)
                return resolution
            # Remember the most effective inadequate proposal as a fallback.
            for proposal in proposals:
                if best_fallback is None or proposal.effectiveness > best_fallback.effectiveness:
                    best_fallback = proposal

        record.exhausted = True
        self.escalations.append(record)
        if best_fallback is not None:
            resolution = Resolution(anomaly=anomaly, time=anomaly.time,
                                    chosen_layer=best_fallback.layer,
                                    countermeasure=best_fallback,
                                    escalation_path=consulted, resolved=False,
                                    note="no adequate countermeasure; applying best effort")
        else:
            resolution = Resolution(anomaly=anomaly, time=anomaly.time, chosen_layer=None,
                                    countermeasure=None, escalation_path=consulted,
                                    resolved=False,
                                    note="no layer offered a countermeasure")
        self.resolutions.append(resolution)
        return resolution

    def decide_and_execute(self, anomaly: Anomaly, snapshot: SelfModelSnapshot,
                           time: Optional[float] = None) -> Resolution:
        """Decide and immediately execute the chosen countermeasure."""
        resolution = self.decide(anomaly, snapshot)
        if resolution.countermeasure is not None:
            resolution.executed = resolution.countermeasure.execute(
                anomaly, anomaly.time if time is None else time)
        return resolution

    # -- statistics -------------------------------------------------------------------------------

    def resolution_rate(self) -> float:
        if not self.resolutions:
            return 0.0
        return sum(1 for r in self.resolutions if r.resolved) / len(self.resolutions)

    def cross_layer_rate(self) -> float:
        if not self.resolutions:
            return 0.0
        return sum(1 for r in self.resolutions if r.cross_layer) / len(self.resolutions)

    def escalation_depths(self) -> List[int]:
        return [r.escalation_depth for r in self.resolutions]

    def max_escalation_depth(self) -> int:
        depths = self.escalation_depths()
        return max(depths) if depths else 0

    def resolutions_by_layer(self) -> Dict[Layer, int]:
        counts: Dict[Layer, int] = {}
        for resolution in self.resolutions:
            if resolution.chosen_layer is not None:
                counts[resolution.chosen_layer] = counts.get(resolution.chosen_layer, 0) + 1
        return counts
