"""Declarative experiment specifications.

An :class:`ExperimentSpec` names a registered scenario, a parameter grid
(every combination is one run), and a list of seeds.  ``expand()`` unrolls
the spec into concrete :class:`RunSpec` objects — plain, picklable records
the runner can execute serially or in a process pool.  Specs round-trip
through JSON (``to_dict``/``from_dict``), so sweeps can be stored in files
and replayed from the CLI.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.experiments.registry import SCENARIOS, ScenarioError, ScenarioRegistry
from repro.sim.random import derive_seed


class SpecError(ValueError):
    """Raised for malformed experiment specifications."""


@dataclass(frozen=True)
class RunSpec:
    """One concrete run of a sweep: a scenario plus fully bound parameters.

    ``index`` is the run's position in the expanded sweep and, together with
    the experiment name, determines the derived per-run seed — so the
    identity of a run never depends on execution order.
    """

    experiment: str
    scenario: str
    index: int
    params: Dict[str, Any] = field(default_factory=dict)

    def run_id(self) -> str:
        """Stable identifier of this run within its experiment."""
        return f"{self.experiment}/{self.scenario}#{self.index:04d}"


@dataclass
class ExperimentSpec:
    """A named parameter sweep over one registered scenario.

    Parameters
    ----------
    name:
        Experiment name (used in run ids and result files).
    scenario:
        Name of a scenario in the registry.
    grid:
        Mapping parameter name -> list of values; the cartesian product of
        all lists is swept.  Scalar values are treated as one-element lists.
        An *empty* axis makes the product — and therefore the spec — a
        clean zero-run no-op (programmatically built grids legitimately
        filter an axis down to nothing); the runner returns an empty record
        set for it.
    seeds:
        Seeds to repeat every grid point with.  For scenarios without a seed
        parameter the seeds still multiply the runs (useful for wall-time
        statistics) unless left at the default ``[0]``.
    base_seed:
        When set (not None), per-run seeds are *derived* deterministically
        from ``(base_seed, experiment name, run index)`` via
        :func:`repro.sim.random.derive_seed` instead of taken from ``seeds``.
    description:
        Free-form note carried into result files.
    """

    name: str
    scenario: str
    grid: Dict[str, Any] = field(default_factory=dict)
    seeds: List[int] = field(default_factory=lambda: [0])
    base_seed: Optional[int] = None
    description: str = ""

    def validate(self, registry: Optional[ScenarioRegistry] = None) -> None:
        """Check the spec against the scenario registry; raise on problems."""
        registry = registry or SCENARIOS
        if not self.name or "/" in self.name or "#" in self.name:
            raise SpecError(f"invalid experiment name {self.name!r} "
                            "(must be non-empty, without '/' or '#')")
        if self.scenario not in registry:
            raise SpecError(f"unknown scenario {self.scenario!r}; "
                            f"available: {registry.names()}")
        scenario = registry.get(self.scenario)
        try:
            scenario.validate_params(self.grid)
        except ScenarioError as exc:
            raise SpecError(str(exc)) from exc
        if scenario.seed_param is not None and scenario.seed_param in self.grid:
            raise SpecError(f"parameter {scenario.seed_param!r} is controlled by "
                            f"the spec's seeds, not the grid")
        if not self.seeds:
            raise SpecError("seeds must not be empty")

    def axes(self) -> Dict[str, List[Any]]:
        """The grid with scalar values normalized to one-element lists."""
        return {key: (list(value) if isinstance(value, (list, tuple)) else [value])
                for key, value in self.grid.items()}

    def num_runs(self) -> int:
        """Number of concrete runs this spec expands to."""
        count = 1
        for values in self.axes().values():
            count *= len(values)
        return count * len(self.seeds)

    def expand(self, registry: Optional[ScenarioRegistry] = None) -> List[RunSpec]:
        """Unroll the grid x seeds product into concrete :class:`RunSpec`s.

        Expansion order is deterministic: grid axes in insertion order, seeds
        innermost.  Per-run seeds are attached via the scenario's declared
        seed parameter (scenarios without one simply repeat).
        """
        registry = registry or SCENARIOS
        self.validate(registry)
        scenario = registry.get(self.scenario)
        axes = self.axes()
        names = list(axes)
        combos = itertools.product(*(axes[name] for name in names)) if names else [()]
        runs: List[RunSpec] = []
        index = 0
        for combo in combos:
            for seed in self.seeds:
                params = dict(zip(names, combo))
                if scenario.seed_param is not None:
                    if self.base_seed is not None:
                        params[scenario.seed_param] = derive_seed(
                            self.base_seed, self.name, index)
                    else:
                        params[scenario.seed_param] = seed
                runs.append(RunSpec(experiment=self.name, scenario=self.scenario,
                                    index=index, params=params))
                index += 1
        return runs

    # -- JSON round-trip ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form of the spec."""
        return {
            "name": self.name,
            "scenario": self.scenario,
            "grid": dict(self.grid),
            "seeds": list(self.seeds),
            "base_seed": self.base_seed,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, document: Mapping[str, Any]) -> "ExperimentSpec":
        """Build a spec from a plain dictionary (e.g. parsed JSON)."""
        unknown = set(document) - {"name", "scenario", "grid", "seeds",
                                   "base_seed", "description"}
        if unknown:
            raise SpecError(f"unknown spec fields {sorted(unknown)}")
        try:
            name = document["name"]
            scenario = document["scenario"]
        except KeyError as exc:
            raise SpecError(f"spec is missing required field {exc.args[0]!r}") from exc
        seeds = document.get("seeds", [0])
        if not isinstance(seeds, (list, tuple)):
            raise SpecError("seeds must be a list of integers")
        return cls(name=name, scenario=scenario,
                   grid=dict(document.get("grid", {})),
                   seeds=[int(s) for s in seeds],
                   base_seed=document.get("base_seed"),
                   description=document.get("description", ""))


def builtin_specs() -> List[ExperimentSpec]:
    """The built-in sweep suite (what ``python -m repro.experiments run``
    executes when no spec file is given).

    Spans nine of the ten scenarios with 30 runs total: the E5 arbitration-
    policy comparison over three seeds, the E6 strategy comparison, the E8
    severity sweep, an E1 campaign sweep over the risky-update fraction, an
    E10 fleet-rollout pair (clean vs failure-injected), an E11
    distributed-admission pair over the end-to-end deadline, an E14
    intrusion-campaign pair (IDS discount on vs off), one E15 lossy-OTA
    rollout and one E16 heat-wave rollout.
    """
    return [
        ExperimentSpec(
            name="intrusion-policies",
            scenario="intrusion",
            grid={"policy": ["lowest_adequate", "local_only", "always_escalate"],
                  "attack_time_s": 4.0, "duration_s": 30.0},
            seeds=[0, 1, 2],
            description="E5: arbitration-policy comparison, 3 seeds each"),
        ExperimentSpec(
            name="thermal-strategies",
            scenario="thermal",
            grid={"strategy": ["no_reaction", "platform_only",
                               "function_only", "cross_layer"],
                  "peak_ambient_c": 80.0, "duration_s": 400.0},
            description="E6: reaction-strategy comparison"),
        ExperimentSpec(
            name="routing-severity",
            scenario="weather_routing",
            grid={"severity": [0.0, 0.2, 0.4, 0.6, 0.8]},
            description="E8: route choice vs forecast severity"),
        ExperimentSpec(
            name="update-campaigns",
            scenario="infield_update",
            grid={"num_requests": 20, "risky_fraction": [0.2, 0.4, 0.6]},
            description="E1: acceptance rate vs risky-update fraction"),
        ExperimentSpec(
            name="fleet-campaigns",
            scenario="fleet_update_campaign",
            grid={"fleet_size": 24, "num_variants": 6,
                  "failure_injection_rate": [0.0, 0.5]},
            description="E10: staged fleet rollout, clean vs failure-injected"),
        ExperimentSpec(
            name="distributed-e2e",
            scenario="distributed_e2e_update",
            grid={"num_updates": 10, "chain_deadline_s": [0.03, 0.04]},
            description="E11: cross-ECU admission, tight vs relaxed "
                        "end-to-end deadline"),
        ExperimentSpec(
            name="intrusion-campaigns",
            scenario="intrusion_campaign",
            grid={"fleet_size": 24, "num_variants": 4,
                  "discount_suspected": [True, False]},
            description="E14: campaign under forged deviation reports, "
                        "IDS discount on vs off"),
        ExperimentSpec(
            name="lossy-ota",
            scenario="lossy_ota_campaign",
            grid={"fleet_size": 24, "num_variants": 4, "drop_rate": 0.3},
            description="E15: rollout over a lossy OTA network with "
                        "retry/straggler waves"),
        ExperimentSpec(
            name="thermal-campaigns",
            scenario="thermal_campaign",
            grid={"fleet_size": 24, "num_variants": 4,
                  "peak_ambient_c": 90.0},
            description="E16: rollout through a heat wave — DVFS-inflated "
                        "WCET admission"),
    ]
