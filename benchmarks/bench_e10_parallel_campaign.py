"""E10 (parallel): the sharded campaign engine at a 500-vehicle fleet.

Three claims of the sharded engine are regenerated and asserted:

* **Speedup with identical verdicts.**  The sharded engine (equivalence
  dedupe, shared cache with persistent snapshot, worker pool sized to the
  machine) must admit a 500-vehicle campaign at least 2x faster than the
  sequential per-vehicle baseline, wave records byte-identical.  A forced
  ``workers=4`` multiprocess run is verdict-checked as well on every
  machine (it is only *timed into the assertion* where real cores back it —
  on a single-core runner a process pool cannot beat in-process execution,
  so the timed configuration sizes its pool to ``cpu_count``).
* **Persistent warm-start.**  A re-run over the same fleet warm-starts
  from the previous run's on-disk snapshot: fewer busy-window derivations,
  identical records.
* **Checkpoint/resume.**  A campaign halted mid-rollout by its wave policy
  resumes — after the policy is remediated — from the written checkpoint to
  the exact final result of an uninterrupted campaign.

The measured quantities land in ``BENCH_e10_parallel_campaign.json``.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from typing import Dict, Optional, Tuple

import pytest

from conftest import print_table, quick_mode, write_bench_record
from repro.analysis.cache import AnalysisCache
from repro.fleet.campaign import (Campaign, CampaignCheckpoint,
                                  CampaignResult, WavePolicy)
from repro.fleet.vehicle import FleetSpec, generate_fleet
from repro.mcc.configuration import ChangeKind, ChangeRequest
from repro.scenarios.fleet_campaign import build_update_contract

SEED = 1  # halts at wave >= 1 under the strict policy, at both bench sizes


def _factory():
    contracts: Dict[int, object] = {}

    def factory(vehicle):
        contract = contracts.get(vehicle.variant.index)
        if contract is None:
            contract = build_update_contract(vehicle.wcet_factor)
            contracts[vehicle.variant.index] = contract
        return ChangeRequest(kind=ChangeKind.ADD_COMPONENT,
                             component=contract.component, contract=contract)

    return factory


def _digest(result: CampaignResult) -> Tuple:
    return (result.fleet_size, result.admitted, result.rejected,
            result.deviating, result.refined, result.rolled_back,
            result.halted, result.halted_wave,
            [record.to_dict() for record in result.waves])


def _dimensions() -> Tuple[int, int]:
    quick = quick_mode()
    return (60 if quick else 500), (4 if quick else 8)


def _run(workers: int, batched: bool, cache_path: Optional[str] = None,
         failure_rate: float = 0.0, policy: Optional[WavePolicy] = None,
         checkpoint_path: Optional[str] = None
         ) -> Tuple[float, CampaignResult]:
    """Fresh fleet, one timed campaign run (admission only)."""
    fleet_size, num_variants = _dimensions()
    spec = FleetSpec(size=fleet_size, seed=SEED, num_variants=num_variants)
    cache = AnalysisCache(max_entries=16384) if batched else None
    fleet = generate_fleet(spec, analysis_cache=cache)
    campaign = Campaign(fleet, _factory(), policy=policy,
                        analysis_cache=cache, batch_admission=batched,
                        workers=workers, cache_path=cache_path,
                        failure_injection_rate=failure_rate,
                        feedback_seed=SEED, checkpoint_path=checkpoint_path)
    started = time.perf_counter()
    result = campaign.run()
    return time.perf_counter() - started, result


def _auto_workers() -> int:
    """Pool size of the timed sharded configuration: match the machine.

    Multiprocess sharding pays off when representative integrations can
    run on real parallel cores; on a single-core runner the engine's wins
    come from dedupe and the warm cache, and a pool would only add fork
    and serialization overhead to the measurement.
    """
    return min(4, multiprocessing.cpu_count())


@pytest.mark.benchmark(group="e10-parallel")
def test_e10_sharded_engine_speedup_and_parity(benchmark, tmp_path):
    """Sharded engine >= 2x over sequential admission, verdicts identical.

    min-of-2 timing on both sides; the forced 4-worker multiprocess run is
    verdict-checked against the same digest regardless of core count.
    """
    fleet_size, num_variants = _dimensions()
    workers = _auto_workers()

    sequential_s = float("inf")
    sharded_s = float("inf")
    sequential_result: Optional[CampaignResult] = None
    sharded_result: Optional[CampaignResult] = None
    for repeat in range(2):
        elapsed, sequential_result = _run(workers=1, batched=False)
        sequential_s = min(sequential_s, elapsed)
        cache_path = str(tmp_path / f"timed-{repeat}.pkl")
        elapsed, sharded_result = _run(workers=workers, batched=True,
                                       cache_path=cache_path)
        sharded_s = min(sharded_s, elapsed)
    multiprocess_s, multiprocess_result = _run(
        workers=4, batched=True, cache_path=str(tmp_path / "mp.pkl"))
    benchmark(lambda: _run(workers=workers, batched=True)[1])

    assert _digest(sharded_result) == _digest(sequential_result)
    assert _digest(multiprocess_result) == _digest(sequential_result)
    assert sharded_result.admitted == fleet_size  # clean rollout, whole fleet
    speedup = sequential_s / sharded_s if sharded_s > 0 else float("inf")
    row = {
        "fleet_size": fleet_size,
        "num_variants": num_variants,
        "cpu_count": multiprocessing.cpu_count(),
        "workers_timed": workers,
        "sequential_s": sequential_s,
        "sharded_s": sharded_s,
        "speedup": speedup,
        "multiprocess_workers": 4,
        "multiprocess_s": multiprocess_s,
        "admitted": sharded_result.admitted,
        "waves": len(sharded_result.waves),
    }
    print_table("E10: sharded campaign engine vs sequential admission "
                "(target: >= 2x)", [row])
    write_bench_record("e10_parallel_campaign", row)
    assert speedup >= 2.0


@pytest.mark.benchmark(group="e10-parallel")
def test_e10_persistent_cache_warm_start(benchmark, tmp_path):
    """A re-run over the same fleet warm-starts from the saved snapshot:
    strictly fewer analysis misses, identical campaign records."""
    cache_path = str(tmp_path / "warm.pkl")
    cold_s, cold = _run(workers=1, batched=True, cache_path=cache_path)
    warm_s, warm = _run(workers=1, batched=True, cache_path=cache_path)
    benchmark(lambda: _run(workers=1, batched=True, cache_path=cache_path)[1])

    assert _digest(warm) == _digest(cold)
    assert warm.cache_misses < cold.cache_misses
    assert warm.cache_hits > 0
    rows = [{"run": "cold", "wall_s": cold_s, "cache_hits": cold.cache_hits,
             "cache_misses": cold.cache_misses},
            {"run": "warm", "wall_s": warm_s, "cache_hits": warm.cache_hits,
             "cache_misses": warm.cache_misses}]
    print_table("E10: persistent snapshot warm-start (identical records)",
                rows)


@pytest.mark.benchmark(group="e10-parallel")
def test_e10_checkpoint_resume_roundtrip(benchmark, tmp_path):
    """A halted campaign resumes from its checkpoint — remediated — to the
    same final result as an uninterrupted campaign."""
    fleet_size, num_variants = _dimensions()
    strict = WavePolicy(canary_size=2, wave_fractions=(0.1, 0.3, 1.0),
                        max_failure_rate=0.1)
    tolerant = WavePolicy(canary_size=2, wave_fractions=(0.1, 0.3, 1.0),
                          max_failure_rate=1.0)
    checkpoint_path = str(tmp_path / "halted.ckpt")

    halted_s, halted = _run(workers=1, batched=True, failure_rate=0.3,
                            policy=strict, checkpoint_path=checkpoint_path)
    assert halted.halted and halted.halted_wave >= 1  # a mid-campaign halt
    assert os.path.exists(checkpoint_path)

    _, reference = _run(workers=1, batched=True, failure_rate=0.3,
                        policy=tolerant)

    def resume() -> CampaignResult:
        spec = FleetSpec(size=fleet_size, seed=SEED,
                         num_variants=num_variants)
        cache = AnalysisCache(max_entries=16384)
        fleet = generate_fleet(spec, analysis_cache=cache)
        campaign = Campaign(fleet, _factory(), policy=tolerant,
                            analysis_cache=cache, failure_injection_rate=0.3,
                            feedback_seed=SEED)
        return campaign.run(
            resume_from=CampaignCheckpoint.load(checkpoint_path))

    started = time.perf_counter()
    resumed = resume()
    resume_s = time.perf_counter() - started
    benchmark(resume)

    assert _digest(resumed) == _digest(reference)
    rows = [{"fleet_size": fleet_size, "halted_wave": halted.halted_wave,
             "halted_s": halted_s, "resume_s": resume_s,
             "resumed_admitted": resumed.admitted,
             "reference_admitted": reference.admitted,
             "identical": _digest(resumed) == _digest(reference)}]
    print_table("E10: checkpoint/resume after remediation", rows)
