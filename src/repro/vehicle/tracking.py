"""Object tracking: fuse sensor readings into a target-object estimate.

Implements the "perceive and track dynamic objects" skill of the ACC graph
with a simple constant-velocity Kalman filter over the fused range/range-rate
measurements of the available sensors.  The tracker also exposes a
performance score (innovation-based) that feeds the ability graph, and it
degrades gracefully when individual sensors drop out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.vehicle.sensors import SensorReading


@dataclass
class TrackedObject:
    """State estimate of the closest lead object."""

    time: float
    range_m: float
    range_rate_mps: float
    variance: float
    quality: float
    coasting: bool = False

    @property
    def usable(self) -> bool:
        return self.quality > 0.0 and not math.isnan(self.range_m)


class ObjectTracker:
    """Constant-velocity Kalman filter over fused range measurements.

    Parameters
    ----------
    process_noise:
        Process noise intensity (acceleration variance of the lead object).
    max_coast_cycles:
        How many cycles the track is kept alive ("coasted") without any
        usable measurement before it is dropped.
    """

    def __init__(self, process_noise: float = 2.0, max_coast_cycles: int = 10) -> None:
        if process_noise <= 0:
            raise ValueError("process noise must be positive")
        if max_coast_cycles < 0:
            raise ValueError("max coast cycles must be non-negative")
        self.process_noise = process_noise
        self.max_coast_cycles = max_coast_cycles
        self._state: Optional[np.ndarray] = None  # [range, range_rate]
        self._covariance: Optional[np.ndarray] = None
        self._coast_count = 0
        self._last_time: Optional[float] = None
        self.track_history: List[TrackedObject] = []

    @property
    def has_track(self) -> bool:
        return self._state is not None

    def reset(self) -> None:
        self._state = None
        self._covariance = None
        self._coast_count = 0
        self._last_time = None

    # -- fusion ------------------------------------------------------------------------

    @staticmethod
    def fuse(readings: Sequence[SensorReading]) -> Optional[SensorReading]:
        """Quality-weighted fusion of simultaneous readings into one pseudo
        measurement; returns ``None`` if no reading is usable."""
        usable = [r for r in readings if r.usable and r.range_m is not None]
        if not usable:
            return None
        weights = np.array([max(r.quality, 1e-6) for r in usable])
        weights = weights / weights.sum()
        range_m = float(sum(w * r.range_m for w, r in zip(weights, usable)))
        rates = [(w, r.range_rate_mps) for w, r in zip(weights, usable)
                 if r.range_rate_mps is not None]
        range_rate = (float(sum(w * rate for w, rate in rates) / sum(w for w, _ in rates))
                      if rates else 0.0)
        quality = float(max(r.quality for r in usable))
        return SensorReading(time=usable[0].time, valid=True, range_m=range_m,
                             range_rate_mps=range_rate, quality=quality, sensor="fused")

    # -- filtering ------------------------------------------------------------------------

    def update(self, time: float, readings: Sequence[SensorReading]) -> Optional[TrackedObject]:
        """Run one predict/update cycle; returns the current track (or None)."""
        measurement = self.fuse(readings)
        dt = 0.0 if self._last_time is None else max(0.0, time - self._last_time)
        self._last_time = time

        if self._state is not None and dt > 0.0:
            self._predict(dt)

        if measurement is None or measurement.range_m is None:
            return self._coast(time)

        measurement_noise = self._measurement_noise(measurement.quality)
        if self._state is None:
            self._state = np.array([measurement.range_m,
                                    measurement.range_rate_mps or 0.0], dtype=float)
            self._covariance = np.diag([measurement_noise, 4.0])
        else:
            self._update_filter(measurement, measurement_noise)
        self._coast_count = 0

        track = TrackedObject(time=time,
                              range_m=float(self._state[0]),
                              range_rate_mps=float(self._state[1]),
                              variance=float(self._covariance[0, 0]),
                              quality=measurement.quality,
                              coasting=False)
        self.track_history.append(track)
        return track

    def _predict(self, dt: float) -> None:
        transition = np.array([[1.0, dt], [0.0, 1.0]])
        process = self.process_noise * np.array([[dt ** 4 / 4, dt ** 3 / 2],
                                                 [dt ** 3 / 2, dt ** 2]])
        self._state = transition @ self._state
        self._covariance = transition @ self._covariance @ transition.T + process

    def _update_filter(self, measurement: SensorReading, measurement_noise: float) -> None:
        observation = np.array([[1.0, 0.0], [0.0, 1.0]])
        z = np.array([measurement.range_m, measurement.range_rate_mps or float(self._state[1])])
        noise = np.diag([measurement_noise, 4.0 * measurement_noise])
        innovation = z - observation @ self._state
        innovation_cov = observation @ self._covariance @ observation.T + noise
        gain = self._covariance @ observation.T @ np.linalg.inv(innovation_cov)
        self._state = self._state + gain @ innovation
        identity = np.eye(2)
        self._covariance = (identity - gain @ observation) @ self._covariance

    def _coast(self, time: float) -> Optional[TrackedObject]:
        """Keep predicting without measurements for a bounded number of cycles."""
        if self._state is None:
            return None
        self._coast_count += 1
        if self._coast_count > self.max_coast_cycles:
            self.reset()
            return None
        quality = max(0.0, 0.5 * (1.0 - self._coast_count / max(1, self.max_coast_cycles)))
        track = TrackedObject(time=time,
                              range_m=float(self._state[0]),
                              range_rate_mps=float(self._state[1]),
                              variance=float(self._covariance[0, 0]),
                              quality=quality, coasting=True)
        self.track_history.append(track)
        return track

    @staticmethod
    def _measurement_noise(quality: float) -> float:
        """Map a quality score to a measurement variance (m^2)."""
        quality = min(max(quality, 1e-3), 1.0)
        return 0.25 / quality

    # -- performance assessment ----------------------------------------------------------------

    def performance_score(self, window: int = 20) -> float:
        """Tracking performance in [0, 1] for the ability graph.

        Combines the fraction of non-coasting updates in the recent window
        with the average measurement quality.
        """
        recent = self.track_history[-window:]
        if not recent:
            return 0.0
        fresh = [t for t in recent if not t.coasting]
        freshness = len(fresh) / len(recent)
        quality = sum(t.quality for t in recent) / len(recent)
        return max(0.0, min(1.0, 0.5 * freshness + 0.5 * quality))
