"""MappingEngine coverage: every strategy on contrived platforms.

Exercises first-fit/worst-fit/best-fit on exact-fit, overload and
tie-breaking platforms, plus the redundancy-separation, keep-existing and
priority-assignment rules — and pins mapping determinism across repeated
runs and rebuilt engines.
"""

from __future__ import annotations

import pytest

from repro.contracts.model import (Contract, RealTimeRequirement,
                                   SafetyRequirement)
from repro.mcc.mapping import MappingEngine, MappingError, MappingStrategy
from repro.platform.resources import Platform, ProcessingResource


def contract(name: str, utilization: float, period: float = 0.1,
             deadline: float = None, asil: str = "QM",
             redundancy_group: str = None) -> Contract:
    result = Contract(component=name)
    result.add_requirement(RealTimeRequirement(period=period,
                                               wcet=utilization * period,
                                               deadline=deadline))
    if asil != "QM" or redundancy_group is not None:
        result.add_requirement(SafetyRequirement(asil=asil,
                                                 redundancy_group=redundancy_group))
    return result


def platform_with(capacities) -> Platform:
    platform = Platform(name="map-test")
    for index, capacity in enumerate(capacities):
        platform.add_processor(ProcessingResource(f"cpu{index}", capacity=capacity))
    return platform


ALL_STRATEGIES = [MappingStrategy.FIRST_FIT, MappingStrategy.WORST_FIT,
                  MappingStrategy.BEST_FIT]


class TestExactFit:
    """Platforms whose capacity exactly matches the demand."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_exact_fit_places_everything(self, strategy):
        platform = platform_with([0.5, 0.5])
        contracts = [contract("a", 0.5), contract("b", 0.3), contract("c", 0.2)]
        decision = MappingEngine(platform, strategy=strategy).map(contracts)
        assert set(decision.placement) == {"a", "b", "c"}
        for processor, load in decision.utilization.items():
            assert load <= platform.processor(processor).capacity + 1e-9
        assert sum(decision.utilization.values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_single_component_fills_single_processor(self, strategy):
        platform = platform_with([0.4])
        decision = MappingEngine(platform, strategy=strategy).map(
            [contract("only", 0.4)])
        assert decision.placement == {"only": "cpu0"}


class TestOverload:
    """Demand beyond every capacity bound raises MappingError."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_oversized_component_raises(self, strategy):
        platform = platform_with([0.5, 0.5])
        with pytest.raises(MappingError, match="no processor can host"):
            MappingEngine(platform, strategy=strategy).map([contract("big", 0.6)])

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_aggregate_overload_raises(self, strategy):
        platform = platform_with([0.5, 0.5])
        contracts = [contract(f"c{i}", 0.4) for i in range(3)]
        with pytest.raises(MappingError):
            MappingEngine(platform, strategy=strategy).map(contracts)

    def test_untimed_components_always_fit(self):
        platform = platform_with([0.1])
        decision = MappingEngine(platform).map([Contract(component="stateless")])
        assert decision.placement == {"stateless": "cpu0"}


class TestStrategySemantics:
    """The three heuristics differ exactly as documented."""

    def test_first_fit_packs_in_platform_order(self):
        platform = platform_with([0.9, 0.9, 0.9])
        contracts = [contract("a", 0.4), contract("b", 0.3), contract("c", 0.2)]
        decision = MappingEngine(platform, strategy=MappingStrategy.FIRST_FIT).map(contracts)
        assert decision.placement == {"a": "cpu0", "b": "cpu0", "c": "cpu0"}

    def test_worst_fit_balances_load(self):
        platform = platform_with([0.9, 0.9])
        contracts = [contract("a", 0.4), contract("b", 0.3), contract("c", 0.2)]
        decision = MappingEngine(platform, strategy=MappingStrategy.WORST_FIT).map(contracts)
        # Heaviest first onto the emptiest processor each time.
        assert decision.placement["a"] != decision.placement["b"]
        loads = sorted(decision.utilization.values())
        assert loads == [pytest.approx(0.4), pytest.approx(0.5)]

    def test_best_fit_minimizes_fragmentation(self):
        platform = platform_with([0.9, 0.45])
        contracts = [contract("a", 0.45), contract("b", 0.2)]
        decision = MappingEngine(platform, strategy=MappingStrategy.BEST_FIT).map(contracts)
        # "a" goes to the snug cpu1; "b" then only fits cpu0.
        assert decision.placement == {"a": "cpu1", "b": "cpu0"}

    def test_tie_breaking_is_by_name_for_equal_remaining(self):
        # Two identical processors: worst-fit must break the tie on the name
        # (max of (remaining, name)), best-fit on the min tuple.
        platform = platform_with([0.8, 0.8])
        worst = MappingEngine(platform, strategy=MappingStrategy.WORST_FIT).map(
            [contract("a", 0.1)])
        assert worst.placement == {"a": "cpu1"}
        best = MappingEngine(platform_with([0.8, 0.8]),
                             strategy=MappingStrategy.BEST_FIT).map(
            [contract("a", 0.1)])
        assert best.placement == {"a": "cpu0"}


class TestDeterminism:
    """Identical inputs -> identical decisions, run after run."""

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_repeated_runs_identical(self, strategy):
        contracts = [contract(f"c{i:02d}", u)
                     for i, u in enumerate([0.3, 0.25, 0.2, 0.15, 0.1, 0.05])]
        reference = None
        for _ in range(5):
            engine = MappingEngine(platform_with([0.7, 0.7, 0.7]), strategy=strategy)
            decision = engine.map(contracts)
            snapshot = (decision.placement, decision.priorities, decision.utilization)
            if reference is None:
                reference = snapshot
            assert snapshot == reference

    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_equal_utilization_ties_are_stable(self, strategy):
        # sorted() is stable, so equal-utilization components keep their
        # input order in the placement loop; the decision must not flap.
        contracts = [contract(name, 0.2) for name in ["x", "y", "z"]]
        first = MappingEngine(platform_with([0.5, 0.5]), strategy=strategy).map(contracts)
        second = MappingEngine(platform_with([0.5, 0.5]), strategy=strategy).map(contracts)
        assert first.placement == second.placement


class TestExistingAndRedundancy:
    """Minimal-change integration and redundancy separation."""

    def test_existing_placement_is_kept(self):
        platform = platform_with([0.9, 0.9])
        contracts = [contract("a", 0.3), contract("b", 0.2)]
        decision = MappingEngine(platform).map(contracts,
                                               existing={"a": "cpu1"})
        assert decision.placement["a"] == "cpu1"

    def test_stale_existing_placement_is_dropped(self):
        platform = platform_with([0.9])
        decision = MappingEngine(platform).map([contract("a", 0.3)],
                                               existing={"a": "gone-cpu"})
        assert decision.placement["a"] == "cpu0"

    def test_keep_existing_disabled_repacks(self):
        platform = platform_with([0.9, 0.9])
        engine = MappingEngine(platform, keep_existing=False)
        decision = engine.map([contract("a", 0.3)], existing={"a": "cpu1"})
        assert decision.placement["a"] == "cpu0"  # first fit ignores history

    def test_redundancy_group_members_separated(self):
        platform = platform_with([0.9, 0.9])
        contracts = [contract("brake_a", 0.2, asil="D", redundancy_group="brakes"),
                     contract("brake_b", 0.2, asil="D", redundancy_group="brakes")]
        decision = MappingEngine(platform).map(contracts)
        assert decision.placement["brake_a"] != decision.placement["brake_b"]

    def test_redundancy_falls_back_to_shared_processor(self):
        platform = platform_with([0.9])  # separation impossible
        contracts = [contract("brake_a", 0.2, redundancy_group="brakes"),
                     contract("brake_b", 0.2, redundancy_group="brakes")]
        decision = MappingEngine(platform).map(contracts)
        assert decision.placement["brake_a"] == decision.placement["brake_b"] == "cpu0"


class TestPriorityAssignment:
    """Deadline-monotonic priorities with ASIL/name tie-breaking."""

    def test_deadline_monotonic_per_processor(self):
        platform = platform_with([0.9])
        contracts = [contract("slow", 0.1, period=0.2),
                     contract("fast", 0.1, period=0.02),
                     contract("mid", 0.1, period=0.1)]
        decision = MappingEngine(platform).map(contracts)
        assert decision.priorities["fast.task"] == 0
        assert decision.priorities["mid.task"] == 1
        assert decision.priorities["slow.task"] == 2

    def test_equal_deadline_ties_break_on_asil_then_name(self):
        platform = platform_with([0.9])
        contracts = [contract("qm_app", 0.1, period=0.05, asil="QM"),
                     contract("asil_d", 0.1, period=0.05, asil="D"),
                     contract("asil_b2", 0.1, period=0.05, asil="B"),
                     contract("asil_b1", 0.1, period=0.05, asil="B")]
        decision = MappingEngine(platform).map(contracts)
        ranked = sorted(decision.priorities, key=decision.priorities.get)
        assert ranked == ["asil_d.task", "asil_b1.task", "asil_b2.task",
                         "qm_app.task"]

    def test_priorities_restart_per_processor(self):
        platform = platform_with([0.3, 0.3])
        contracts = [contract("a", 0.3, period=0.05), contract("b", 0.3, period=0.1)]
        decision = MappingEngine(platform).map(contracts)
        assert decision.placement["a"] != decision.placement["b"]
        assert decision.priorities == {"a.task": 0, "b.task": 0}
