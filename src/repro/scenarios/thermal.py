"""Scenario: ambient temperature as a common-cause, cross-layer disturbance (E6).

"Ambient temperatures are a source of common cause faults ... temperature
can alter the physical properties of the system such that the anticipated
plant models for control software no longer apply.  On the other hand, it
can cause performance degradation of the (hardware) platform, which ... may
require voltage or frequency scaling to prevent permanent damage.  This
alone, however, does not fully contain the fault as the deteriorated
hardware performance can still cause deadline misses and other, functional,
faults." (Section V)

The scenario ramps the ambient temperature, lets the platform throttle (or
not), and measures the resulting junction temperature, deadline misses of
the control tasks and the quality of the ACC control loop under four
strategies: no reaction, platform-only (DVFS), function-only (relax the
control, i.e. lower speed / longer headway so the slower control loop still
suffices), and the cross-layer combination of both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.cpa import ResponseTimeAnalysis
from repro.platform.resources import ProcessingResource
from repro.platform.tasks import Task, TaskSet
from repro.platform.thermal import DvfsGovernor, ThermalModel


class ThermalStrategy(enum.Enum):
    """Reaction strategies compared in E6."""

    NO_REACTION = "no_reaction"
    PLATFORM_ONLY = "platform_only"
    FUNCTION_ONLY = "function_only"
    CROSS_LAYER = "cross_layer"


@dataclass
class ThermalScenarioResult:
    """Metrics of one thermal scenario run."""

    strategy: ThermalStrategy
    peak_temperature_c: float
    time_over_critical_s: float
    deadline_miss_intervals: int
    control_quality: float
    final_speed_factor: float
    temperature_trace: List[float] = field(default_factory=list)

    @property
    def hardware_protected(self) -> bool:
        """No time spent above the permanent-damage threshold."""
        return self.time_over_critical_s == 0.0

    @property
    def deadlines_kept(self) -> bool:
        return self.deadline_miss_intervals == 0


def _control_taskset() -> TaskSet:
    """The control-related task set hosted on the hot processor.

    Utilization is ~0.62 at nominal speed, so throttling to 60% speed pushes
    it past 1.0 and produces deadline misses unless the function layer relaxes
    its timing demands.
    """
    return TaskSet([
        Task("acc_control.task", period=0.010, wcet=0.0030, priority=0),
        Task("object_tracking.task", period=0.020, wcet=0.0060, priority=1),
        Task("trajectory.task", period=0.050, wcet=0.0110, priority=2),
    ])


def _relaxed_taskset() -> TaskSet:
    """Function-layer reaction: run the control functions at reduced rates
    (possible because the vehicle simultaneously lowers its speed, so slower
    control still keeps the plant stable)."""
    return TaskSet([
        Task("acc_control.task", period=0.020, wcet=0.0030, priority=0),
        Task("object_tracking.task", period=0.040, wcet=0.0060, priority=1),
        Task("trajectory.task", period=0.200, wcet=0.0110, priority=2),
    ])


def run_thermal_scenario(strategy: ThermalStrategy = ThermalStrategy.CROSS_LAYER,
                         peak_ambient_c: float = 80.0,
                         duration_s: float = 600.0,
                         dt_s: float = 1.0) -> ThermalScenarioResult:
    """Run the thermal-stress scenario under one reaction strategy.

    The ambient temperature ramps linearly from 35 °C to ``peak_ambient_c``
    over the first half of the run and stays there.
    """
    if duration_s <= 0 or dt_s <= 0:
        raise ValueError("duration and dt must be positive")
    processor = ProcessingResource("cpu0", capacity=1.0)
    thermal = ThermalModel(processor, ambient_c=35.0, delta_t_max=55.0, time_constant_s=60.0)
    governor = DvfsGovernor(processor, throttle_threshold_c=92.0, recover_threshold_c=80.0,
                            critical_threshold_c=95.0)

    function_relaxed = strategy in (ThermalStrategy.FUNCTION_ONLY, ThermalStrategy.CROSS_LAYER)
    platform_reacts = strategy in (ThermalStrategy.PLATFORM_ONLY, ThermalStrategy.CROSS_LAYER)
    taskset = _relaxed_taskset() if function_relaxed else _control_taskset()

    peak_temperature = thermal.temperature_c
    time_over_critical = 0.0
    deadline_miss_intervals = 0
    temperature_trace: List[float] = []
    control_penalty = 0.15 if function_relaxed else 0.0  # relaxed control tracks less tightly

    steps = int(round(duration_s / dt_s))
    ramp_steps = max(1, steps // 2)
    for step in range(steps):
        time = step * dt_s
        ambient = 35.0 + (peak_ambient_c - 35.0) * min(1.0, step / ramp_steps)
        utilization = min(1.0, ResponseTimeAnalysis(
            taskset, speed_factor=processor.condition.speed_factor).utilization())
        thermal.step(dt_s, utilization, governor.current.power_factor, ambient_c=ambient)
        temperature = thermal.temperature_c
        temperature_trace.append(temperature)
        peak_temperature = max(peak_temperature, temperature)
        if governor.is_critical(temperature):
            time_over_critical += dt_s
        if platform_reacts:
            governor.update(temperature)
        analysis = ResponseTimeAnalysis(taskset, speed_factor=processor.condition.speed_factor)
        if not analysis.schedulable():
            deadline_miss_intervals += 1
        _ = time

    # Control quality: 1.0 minus penalties for relaxed control and for every
    # interval in which deadlines were missed (missed deadlines translate into
    # stale actuation and degraded tracking).
    miss_fraction = deadline_miss_intervals / steps
    control_quality = max(0.0, 1.0 - control_penalty - 0.8 * miss_fraction)

    return ThermalScenarioResult(
        strategy=strategy,
        peak_temperature_c=peak_temperature,
        time_over_critical_s=time_over_critical,
        deadline_miss_intervals=deadline_miss_intervals,
        control_quality=control_quality,
        final_speed_factor=processor.condition.speed_factor,
        temperature_trace=temperature_trace)


def compare_thermal_strategies(peak_ambient_c: float = 80.0,
                               duration_s: float = 600.0) -> Dict[str, ThermalScenarioResult]:
    """Run all four strategies (E6's table)."""
    return {strategy.value: run_thermal_scenario(strategy, peak_ambient_c, duration_s)
            for strategy in ThermalStrategy}
