"""FPGA resource model of the virtualized CAN controller (experiment E3).

The paper reports that "in terms of FPGA resources, the virtualized solution
breaks even with multiple stand-alone controllers at [a small number of] VMs"
(the published DAC'15 companion paper places the break-even around 3–4 VMs).
We cannot synthesize hardware, so we substitute an analytical cost model
whose structure mirrors the architecture: the virtualized design pays a
fixed cost for the shared protocol layer plus the PF and the TX/RX mux
machinery, and a small incremental cost per VF; the stand-alone alternative
replicates a full controller (protocol layer + host interface) per VM.  The
break-even point is a property of this cost structure, which is what E3
reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class ResourceEstimate:
    """FPGA resource estimate in LUTs and flip-flops."""

    luts: int
    flip_flops: int

    @property
    def total(self) -> int:
        """Scalar cost used for break-even comparisons (LUTs + FFs)."""
        return self.luts + self.flip_flops

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(self.luts + other.luts, self.flip_flops + other.flip_flops)

    def scaled(self, factor: int) -> "ResourceEstimate":
        if factor < 0:
            raise ValueError("factor must be non-negative")
        return ResourceEstimate(self.luts * factor, self.flip_flops * factor)


class FpgaResourceModel:
    """Analytical LUT/FF cost model.

    Default coefficients are loosely based on published soft CAN-controller
    IP footprints (a full CAN controller occupies on the order of 1–2 kLUT)
    and are chosen so the virtualized design breaks even against stand-alone
    replication at 3–4 VMs, matching the paper's claim.
    """

    def __init__(self,
                 protocol_layer: ResourceEstimate = ResourceEstimate(1100, 800),
                 host_interface: ResourceEstimate = ResourceEstimate(350, 250),
                 pf_logic: ResourceEstimate = ResourceEstimate(700, 500),
                 tx_rx_mux: ResourceEstimate = ResourceEstimate(900, 650),
                 per_vf: ResourceEstimate = ResourceEstimate(420, 330)) -> None:
        self.protocol_layer = protocol_layer
        self.host_interface = host_interface
        self.pf_logic = pf_logic
        self.tx_rx_mux = tx_rx_mux
        self.per_vf = per_vf

    # -- design alternatives -------------------------------------------------------------

    def standalone(self, num_controllers: int) -> ResourceEstimate:
        """N independent CAN controllers, each with its own host interface."""
        if num_controllers < 0:
            raise ValueError("number of controllers must be non-negative")
        one = self.protocol_layer + self.host_interface
        return one.scaled(num_controllers)

    def virtualized(self, num_vfs: int) -> ResourceEstimate:
        """One shared protocol layer + PF + mux machinery + per-VF logic."""
        if num_vfs < 0:
            raise ValueError("number of VFs must be non-negative")
        base = self.protocol_layer + self.host_interface + self.pf_logic + self.tx_rx_mux
        return base + self.per_vf.scaled(num_vfs)

    # -- comparisons ------------------------------------------------------------------------

    def overhead_ratio(self, num_vms: int) -> float:
        """Virtualized cost relative to stand-alone replication for num_vms."""
        if num_vms <= 0:
            raise ValueError("need at least one VM")
        return self.virtualized(num_vms).total / self.standalone(num_vms).total

    def sweep(self, max_vms: int) -> List[Dict[str, float]]:
        """Cost table over 1..max_vms VMs (one row per point, E3's series)."""
        rows: List[Dict[str, float]] = []
        for vms in range(1, max_vms + 1):
            virt = self.virtualized(vms)
            stand = self.standalone(vms)
            rows.append({
                "vms": vms,
                "virtualized_luts": virt.luts,
                "virtualized_ffs": virt.flip_flops,
                "standalone_luts": stand.luts,
                "standalone_ffs": stand.flip_flops,
                "virtualized_total": virt.total,
                "standalone_total": stand.total,
                "ratio": virt.total / stand.total if stand.total else float("inf"),
            })
        return rows


def break_even_vms(model: FpgaResourceModel, max_vms: int = 32) -> int:
    """Smallest number of VMs for which the virtualized design is no more
    expensive than stand-alone replication; returns ``max_vms + 1`` if the
    break-even is never reached within the sweep."""
    for vms in range(1, max_vms + 1):
        if model.virtualized(vms).total <= model.standalone(vms).total:
            return vms
    return max_vms + 1
