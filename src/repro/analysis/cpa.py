"""Compositional performance analysis (CPA): worst-case response times.

The paper names "a worst-case response time analysis [that] can check
real-time constraints based on a timing model of the system" as the
archetypal acceptance test of the MCC (Section II.A).  This module implements
the classic busy-window analysis for static-priority preemptive scheduling
with release jitter (Lehoczky / Tindell), plus periodic-with-jitter event
models and a simple end-to-end latency composition over task chains — the
building blocks of CPA as used in the automotive timing-analysis literature.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, MutableMapping, Optional, Sequence, Tuple

from repro.platform.tasks import Task, TaskSet

_EPS = 1e-12


@dataclass(frozen=True)
class EventModel:
    """Periodic-with-jitter event model.

    ``eta_plus(dt)`` bounds the maximum number of activations in any window
    of length ``dt``; ``delta_min(n)`` bounds the minimum distance between
    ``n`` consecutive activations.
    """

    period: float
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.period <= 0:
            raise ValueError("event-model period must be positive")
        if self.jitter < 0:
            raise ValueError("event-model jitter must be non-negative")

    def eta_plus(self, dt: float) -> int:
        """Maximum activations in a half-open window of length ``dt``."""
        if dt <= 0:
            return 0
        return int(math.ceil((dt + self.jitter) / self.period - _EPS))

    def delta_min(self, n: int) -> float:
        """Minimum distance between the first and the n-th activation."""
        if n <= 1:
            return 0.0
        return max(0.0, (n - 1) * self.period - self.jitter)

    @classmethod
    def from_task(cls, task: Task) -> "EventModel":
        return cls(period=task.period, jitter=task.jitter)

    def with_jitter(self, jitter: float) -> "EventModel":
        return EventModel(period=self.period, jitter=jitter)


@dataclass
class ResponseTimeResult:
    """Result of the WCRT analysis for one task."""

    task: Task
    wcrt: Optional[float]
    converged: bool
    schedulable: bool
    busy_window: float = 0.0
    iterations: int = 0
    #: Per-activation busy-window completion times (the fixpoints of jobs
    #: q = 1..Q).  Excluded from equality: warm-started re-analyses reproduce
    #: the same fixpoints but may record fewer of them on divergent tasks.
    completions: Tuple[float, ...] = field(default=(), compare=False)

    @property
    def slack(self) -> Optional[float]:
        if self.wcrt is None or self.task.deadline is None:
            return None
        return self.task.deadline - self.wcrt


class ResponseTimeAnalysis:
    """Busy-window WCRT analysis for static-priority preemptive scheduling.

    Parameters
    ----------
    taskset:
        Tasks sharing one processing resource.  Lower priority number means
        higher priority.
    speed_factor:
        Processor speed relative to nominal; WCETs are divided by it, which
        is how the analysis is re-run for throttled operating points.
    max_iterations:
        Safety bound on the fixed-point iteration.
    interference_memo:
        Optional shared mapping ``(hp_signature, window) -> interference``.
        The interference term is a pure function of the higher-priority tasks'
        event models/WCETs and the candidate window, so memoized values are
        exact; sharing the mapping across the analyses of a sweep (see
        :class:`repro.analysis.incremental.IncrementalResponseTimeAnalysis`)
        lets task sets that share a priority-level prefix skip re-deriving
        identical interference sums.
    """

    def __init__(self, taskset: TaskSet, speed_factor: float = 1.0,
                 event_models: Optional[Dict[str, EventModel]] = None,
                 max_iterations: int = 10_000,
                 interference_memo: Optional[MutableMapping] = None) -> None:
        if speed_factor <= 0:
            raise ValueError("speed factor must be positive")
        self.taskset = taskset
        self.speed_factor = speed_factor
        self.max_iterations = max_iterations
        self._event_models = dict(event_models or {})
        self._interference_memo = interference_memo

    def _wcet(self, task: Task) -> float:
        return task.wcet / self.speed_factor

    def _event_model(self, task: Task) -> EventModel:
        return self._event_models.get(task.name, EventModel.from_task(task))

    # -- single-task analysis --------------------------------------------------

    def response_time(self, task: Task,
                      warm_start: Optional[Sequence[float]] = None) -> ResponseTimeResult:
        """Compute the worst-case response time of ``task``.

        Uses the multiple-activation busy-window formulation so it remains
        correct when the WCRT exceeds the period (needed to detect overload
        created by throttling).

        ``warm_start`` optionally seeds the fixpoint iteration of job ``q``
        with a previously computed completion time (``warm_start[q - 1]``).
        The caller must guarantee every seed is a *lower bound* on the new
        least fixpoint (e.g. the previous fixpoint when interference only
        grew); the monotone iteration then converges to the identical least
        fixpoint in fewer steps, so results are bit-identical to a cold
        start.
        """
        if task.name not in self.taskset:
            raise ValueError(f"task {task.name!r} is not part of the analysed task set")
        higher = self.taskset.higher_priority_than(task)
        overrides = self._event_models
        own_override = overrides.get(task.name)
        own_period = own_override.period if own_override is not None else task.period
        own_jitter = own_override.jitter if own_override is not None else task.jitter
        speed = self.speed_factor
        wcet = task.wcet / speed
        deadline = task.deadline if task.deadline is not None else task.period

        # Hot path: the fixpoint below evaluates the interference sum once
        # per iteration.  Pre-resolve each higher-priority task's event-model
        # period/jitter and speed-scaled WCET so the loop touches plain
        # floats instead of constructing EventModel objects per term (the
        # dominant cost of the original formulation).  Summation order
        # matches ``higher``.
        hp_params = []
        for t in higher:
            override = overrides.get(t.name)
            if override is not None:
                hp_params.append((override.period, override.jitter, t.wcet / speed))
            else:
                hp_params.append((t.period, t.jitter, t.wcet / speed))
        memo = self._interference_memo
        hp_key = None
        if memo is not None:
            # Intern the higher-priority signature to a small integer when the
            # memo supports it, so the per-iteration lookup hashes (int, float)
            # instead of a nested float tuple.
            signature = tuple(hp_params)
            intern = getattr(memo, "intern", None)
            hp_key = signature if intern is None else intern(signature)
        ceil = math.ceil

        busy_window_limit = max(deadline, task.period) * 64
        warm = warm_start or ()

        worst_response: float = 0.0
        iterations_total = 0
        q = 1
        busy_window = 0.0
        completions: List[float] = []
        while True:
            # Fixed-point iteration for the completion time of the q-th job.
            completion = q * wcet
            if q <= len(warm) and warm[q - 1] > completion:
                completion = warm[q - 1]
            for _ in range(self.max_iterations):
                if memo is not None:
                    interference = memo.get((hp_key, completion))
                    if interference is None:
                        interference = sum(
                            int(ceil((completion + jitter) / period - _EPS)) * hp_wcet
                            for period, jitter, hp_wcet in hp_params)
                        memo[(hp_key, completion)] = interference
                else:
                    interference = sum(
                        int(ceil((completion + jitter) / period - _EPS)) * hp_wcet
                        for period, jitter, hp_wcet in hp_params)
                new_completion = q * wcet + interference
                if abs(new_completion - completion) <= _EPS:
                    completion = new_completion
                    break
                completion = new_completion
                iterations_total += 1
                if completion > busy_window_limit:
                    return ResponseTimeResult(task=task, wcrt=None, converged=False,
                                              schedulable=False,
                                              busy_window=completion,
                                              iterations=iterations_total)
            # delta_min(q) of the periodic-with-jitter model, inlined.
            release = max(0.0, (q - 1) * own_period - own_jitter) if q > 1 else 0.0
            response = completion - release + own_jitter
            worst_response = max(worst_response, response)
            busy_window = completion
            completions.append(completion)
            # Stop once the busy window closes before the next activation.
            if completion <= max(0.0, q * own_period - own_jitter) + _EPS:
                break
            q += 1
            if q * wcet > busy_window_limit:
                return ResponseTimeResult(task=task, wcrt=None, converged=False,
                                          schedulable=False, busy_window=busy_window,
                                          iterations=iterations_total)

        schedulable = worst_response <= deadline + _EPS
        return ResponseTimeResult(task=task, wcrt=worst_response, converged=True,
                                  schedulable=schedulable, busy_window=busy_window,
                                  iterations=iterations_total,
                                  completions=tuple(completions))

    # -- whole task set -----------------------------------------------------------

    def analyse(self) -> Dict[str, ResponseTimeResult]:
        """Analyse every task; returns a mapping task name -> result."""
        return {task.name: self.response_time(task) for task in self.taskset}

    def schedulable(self) -> bool:
        """Whether every task meets its deadline.

        Evaluates tasks lazily and stops at the first deadline violation —
        the verdict is identical to analysing every task, but acceptance
        sweeps over overloaded candidates skip the remaining (typically
        divergent, and therefore most expensive) busy windows.
        """
        return all(self.response_time(task).schedulable for task in self.taskset)

    def utilization(self) -> float:
        return sum(self._wcet(t) / t.period for t in self.taskset)


@dataclass
class EndToEndPath:
    """A cause-effect chain of tasks spanning one or more resources."""

    name: str
    tasks: List[Task] = field(default_factory=list)
    communication_delays: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.tasks:
            # An empty chain has no latency to bound; silently reporting 0.0
            # (and therefore "schedulable") hid configuration errors.
            raise ValueError(f"path {self.name!r}: task chain must not be empty")
        if self.communication_delays and len(self.communication_delays) != len(self.tasks) - 1:
            raise ValueError("need exactly one communication delay per hop")


def end_to_end_latency(path: EndToEndPath,
                       results_per_resource: Sequence[Dict[str, ResponseTimeResult]]) -> Optional[float]:
    """Compose a worst-case end-to-end latency along a task chain.

    Uses the simple (pessimistic) summation of per-task WCRTs plus
    caller-supplied communication delays, which corresponds to an
    asynchronous register-sampling chain.  Returns ``None`` if any hop is
    unschedulable.

    This helper is kept as the *pessimistic fallback* for chains whose
    resources were analysed in isolation.  For distributed chains, prefer
    the jitter-aware bound of
    :meth:`repro.analysis.compositional.SystemAnalysisResult.chain_latency`:
    it derives the communication hop from the CAN response-time analysis
    instead of a constant and does not re-pay the upstream jitter at every
    hop, so it is never larger than this summation.
    """
    total = 0.0
    for index, task in enumerate(path.tasks):
        result: Optional[ResponseTimeResult] = None
        for results in results_per_resource:
            if task.name in results:
                result = results[task.name]
                break
        if result is None or result.wcrt is None:
            return None
        total += result.wcrt
        if index < len(path.tasks) - 1 and path.communication_delays:
            total += path.communication_delays[index]
    return total
