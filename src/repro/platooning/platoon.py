"""Platoon formation and operation.

The fog scenario of Section V: "driving in dense fog with inappropriate or
broken sensors will not be possible by a single autonomous vehicle.
Nevertheless, building a platoon with better equipped vehicles could still be
a viable option."  A :class:`Platoon` collects members with heterogeneous
sensor capabilities, uses the consensus protocol to agree on a common
velocity and minimum gap, and computes the speed each member can sustain —
standalone versus inside the platoon — under the current weather.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.platooning.consensus import ConsensusProtocol, ConsensusResult
from repro.platooning.trust import TrustModel
from repro.vehicle.environment import Weather


class PlatoonError(RuntimeError):
    """Raised for invalid platoon operations."""


@dataclass
class PlatoonMember:
    """One vehicle participating in (or considering) a platoon.

    Attributes
    ----------
    name:
        Vehicle identifier.
    sensor_visibility_m:
        Range up to which the member's own sensors work in clear conditions.
    sensor_fog_capability:
        Fraction of the sensor range retained in dense fog (radar-equipped
        vehicles retain much more than camera-only vehicles).
    preferred_speed_mps:
        The speed the member would like to drive.
    malicious:
        If True, the member does not follow the agreement protocol (its
        broadcasts are arbitrary) — the trust/consensus machinery must cope.
    """

    name: str
    sensor_visibility_m: float = 150.0
    sensor_fog_capability: float = 0.3
    preferred_speed_mps: float = 25.0
    reaction_time_s: float = 0.8
    max_deceleration_mps2: float = 6.0
    malicious: bool = False

    def effective_sight_m(self, weather: Weather) -> float:
        """Sight distance available to this member under the given weather."""
        weather_limited = weather.visibility_m
        own_limit = self.sensor_visibility_m
        if weather.visibility_m < 1000.0:
            own_limit = self.sensor_visibility_m * max(self.sensor_fog_capability,
                                                       weather.visibility_m / 1000.0)
        return min(weather_limited if self.sensor_fog_capability < 1.0 else own_limit,
                   own_limit)

    def safe_standalone_speed(self, weather: Weather) -> float:
        """Maximum speed at which the member can stop within its own sight
        distance (v^2 / (2 a) + v t_r <= sight)."""
        sight = self.effective_sight_m(weather)
        a = self.max_deceleration_mps2 * weather.friction_factor
        t_r = self.reaction_time_s
        # Solve v^2/(2a) + v*t_r - sight = 0 for v >= 0.
        discriminant = (a * t_r) ** 2 + 2.0 * a * sight
        speed = -a * t_r + discriminant ** 0.5
        return max(0.0, min(speed, self.preferred_speed_mps))


class Platoon:
    """A platoon of cooperating vehicles.

    Parameters
    ----------
    leader:
        Name of the leading member (must be added as a member); the leader's
        sensing effectively extends to all followers.
    """

    def __init__(self, leader: str, trust: Optional[TrustModel] = None,
                 protocol: Optional[ConsensusProtocol] = None) -> None:
        self.leader = leader
        self.trust = trust or TrustModel()
        self.protocol = protocol or ConsensusProtocol(trust=self.trust)
        self._members: Dict[str, PlatoonMember] = {}
        self.agreed_speed_mps: Optional[float] = None
        self.agreed_gap_m: Optional[float] = None

    # -- membership -----------------------------------------------------------------------

    def add_member(self, member: PlatoonMember) -> PlatoonMember:
        if member.name in self._members:
            raise PlatoonError(f"duplicate member {member.name!r}")
        self._members[member.name] = member
        return member

    def remove_member(self, name: str) -> PlatoonMember:
        if name == self.leader:
            raise PlatoonError("cannot remove the platoon leader")
        try:
            return self._members.pop(name)
        except KeyError as exc:
            raise PlatoonError(f"unknown member {name!r}") from exc

    def member(self, name: str) -> PlatoonMember:
        try:
            return self._members[name]
        except KeyError as exc:
            raise PlatoonError(f"unknown member {name!r}") from exc

    def members(self) -> List[PlatoonMember]:
        return list(self._members.values())

    def size(self) -> int:
        return len(self._members)

    def honest_members(self) -> List[PlatoonMember]:
        return [m for m in self._members.values() if not m.malicious]

    # -- capability assessment ----------------------------------------------------------------

    def best_sight_m(self, weather: Weather) -> float:
        """The best sensing available in the platoon (normally the leader's)."""
        if not self._members:
            return 0.0
        return max(m.effective_sight_m(weather) for m in self.honest_members() or self.members())

    def platoon_speed_bound(self, member: PlatoonMember, weather: Weather,
                            gap_m: float) -> float:
        """Speed a follower can sustain inside the platoon.

        Inside a platoon the follower only needs to react to the preceding
        vehicle at the agreed gap (cooperative sensing / coordinated braking)
        instead of stopping within its own sight distance.
        """
        a = member.max_deceleration_mps2 * weather.friction_factor
        t_r = member.reaction_time_s
        effective_distance = max(gap_m, 2.0) + 0.5 * self.best_sight_m(weather)
        discriminant = (a * t_r) ** 2 + 2.0 * a * effective_distance
        speed = -a * t_r + discriminant ** 0.5
        return max(0.0, min(speed, member.preferred_speed_mps))

    # -- agreement ------------------------------------------------------------------------------

    def agree_on_speed_and_gap(self, weather: Weather,
                               min_gap_m: float = 10.0) -> ConsensusResult:
        """Agree on the common platoon velocity (and derive the gap).

        Honest members propose the speed they can sustain inside the platoon;
        malicious members broadcast inflated values (they want the platoon to
        go dangerously fast) — the consensus protocol must keep the agreed
        speed close to what the honest members can support.
        """
        if self.leader not in self._members:
            raise PlatoonError(f"leader {self.leader!r} is not a platoon member")
        if self.size() < 2:
            raise PlatoonError("a platoon needs at least two members")

        initial: Dict[str, float] = {}
        faulty: Dict[str, Callable[[int], float]] = {}
        for member in self._members.values():
            bound = self.platoon_speed_bound(member, weather, min_gap_m)
            initial[member.name] = bound
            if member.malicious:
                faulty[member.name] = (
                    lambda round_index, base=member.preferred_speed_mps:
                    base * 2.0 + 5.0 * round_index)
        result = self.protocol.agree(initial, faulty_behaviour=faulty)
        if result.converged and result.value is not None:
            honest_bounds = [initial[m.name] for m in self.honest_members()]
            # Never agree on a speed above what the slowest honest member supports.
            self.agreed_speed_mps = min(result.value, min(honest_bounds))
            self.agreed_gap_m = max(min_gap_m,
                                    self.agreed_speed_mps * 0.6)  # ~0.6 s time gap in platoon
        return result

    def standalone_speeds(self, weather: Weather) -> Dict[str, float]:
        """Member -> speed achievable without the platoon (for comparison)."""
        return {m.name: m.safe_standalone_speed(weather) for m in self._members.values()}

    def speed_benefit(self, member_name: str, weather: Weather) -> Optional[float]:
        """Speed gained by the member from joining the platoon (m/s)."""
        if self.agreed_speed_mps is None:
            return None
        member = self.member(member_name)
        return self.agreed_speed_mps - member.safe_standalone_speed(weather)
