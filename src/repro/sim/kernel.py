"""Discrete-event simulation kernel.

The kernel models time as a float (seconds by convention, although callers
may use any consistent unit).  Events are callbacks scheduled at absolute
times; ties are broken first by an integer priority (lower runs first) and
then by insertion order, which keeps runs fully deterministic.

Two usage styles are supported:

* **Callback style** -- ``sim.schedule(t, fn)`` or ``sim.schedule_in(dt, fn)``.
* **Process style** -- subclasses of :class:`Process` implement ``step`` and
  are re-scheduled periodically; this is how periodic tasks, monitors and
  controllers are expressed throughout the library.

Fast path
---------
The event calendar stores plain ``(time, priority, seq, event)`` tuples in a
``heapq`` — tuple comparison stops at the unique ``seq``, so the
:class:`Event` handles (``__slots__`` objects, not dataclasses) never take
part in heap ordering and carry only the callback and its metadata.  The
event-dense benchmarks (E2 CAN round trips, E6 thermal closed loops, the E9
validation simulations) execute millions of events; avoiding per-event
dataclass comparisons and dictionary traffic in :meth:`Simulator.run` is
what keeps them at interactive speeds.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class SimulationError(RuntimeError):
    """Raised for invalid kernel operations (e.g. scheduling in the past)."""


class Event:
    """A single scheduled event.

    The event calendar orders entries by ``(time, priority, seq)``; the
    :class:`Event` object itself is a light ``__slots__`` handle that carries
    the callback and its metadata and supports cancellation.
    """

    __slots__ = ("time", "priority", "seq", "callback", "name", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 callback: Callable[["Simulator"], None], name: str = "") -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(time={self.time!r}, priority={self.priority!r}, "
                f"seq={self.seq!r}, name={self.name!r}, "
                f"cancelled={self.cancelled!r})")


#: A heap entry: ``(time, priority, seq, event)``.  ``seq`` is unique, so
#: tuple comparison never reaches the event handle.
_Entry = Tuple[float, int, int, Event]


class EventQueue:
    """A cancellable priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[_Entry] = []
        self._counter = itertools.count()
        self._live = 0

    def push(self, time: float, callback: Callable[["Simulator"], None],
             priority: int = 0, name: str = "") -> Event:
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at time NaN")
        event = Event(time, priority, next(self._counter), callback, name)
        heapq.heappush(self._heap, (time, priority, event.seq, event))
        self._live += 1
        return event

    def push_many(self, items: Iterable[Tuple[float, Callable[["Simulator"], None],
                                              int, str]]) -> List[Event]:
        """Bulk insertion: validate, append all entries, restore the heap once.

        ``items`` yields ``(time, callback, priority, name)`` tuples.  For a
        batch of *m* events over a heap of *n* this is ``O(n + m)`` instead of
        ``O(m log n)``, and it skips the per-call Python overhead — the win
        for workloads that pre-load release calendars.
        """
        batch = list(items)
        # Validate the whole batch before touching the heap, so a failing
        # item cannot leave earlier ones half-inserted (appended but not
        # heapified/counted).
        for time, _callback, _priority, _name in batch:
            if math.isnan(time):
                raise SimulationError("cannot schedule an event at time NaN")
        heap = self._heap
        counter = self._counter
        created: List[Event] = []
        for time, callback, priority, name in batch:
            event = Event(time, priority, next(counter), callback, name)
            heap.append((time, priority, event.seq, event))
            created.append(event)
        if created:
            heapq.heapify(heap)
            self._live += len(created)
        return created

    def pop(self) -> Optional[Event]:
        """Pop the next non-cancelled event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[3]
            if event.cancelled:
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap and heap[0][3].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """Discrete-event simulator with a monotonic clock.

    Parameters
    ----------
    start_time:
        Initial simulation time (default 0.0).

    Attributes
    ----------
    truncated:
        ``True`` when the most recent :meth:`run` stopped because
        ``max_events`` was exhausted while runnable events (within the
        requested horizon) were still pending — i.e. the clock may be behind
        ``until`` even though the call returned.  Reset by the next ``run``.
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self._queue = EventQueue()
        self._now = start_time
        self._running = False
        self._stopped = False
        self._processes: List[Process] = []
        self.truncated = False
        self.stats: Dict[str, Any] = {"events_executed": 0}

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    # -- scheduling -------------------------------------------------------

    def schedule(self, time: float, callback: Callable[["Simulator"], None],
                 priority: int = 0, name: str = "") -> Event:
        """Schedule ``callback`` at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before current time {self._now}")
        # Inlined EventQueue.push: scheduling is the kernel's hottest entry
        # point, so skip the extra call frame.
        if math.isnan(time):
            raise SimulationError("cannot schedule an event at time NaN")
        queue = self._queue
        event = Event(time, priority, next(queue._counter), callback, name)
        heapq.heappush(queue._heap, (time, priority, event.seq, event))
        queue._live += 1
        return event

    def schedule_in(self, delay: float, callback: Callable[["Simulator"], None],
                    priority: int = 0, name: str = "") -> Event:
        """Schedule ``callback`` at ``now + delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self._now + delay, callback, priority=priority, name=name)

    def schedule_many(self, items: Iterable[Sequence]) -> List[Event]:
        """Bulk-schedule many events in one call.

        Each item is ``(time, callback)``, ``(time, callback, priority)`` or
        ``(time, callback, priority, name)``.  Semantically identical to
        calling :meth:`schedule` per item (same validation, same
        deterministic tie-breaking by insertion order) but the calendar is
        restored once instead of per event.
        """
        now = self._now
        normalized: List[Tuple[float, Callable[["Simulator"], None], int, str]] = []
        for item in items:
            time, callback = item[0], item[1]
            priority = item[2] if len(item) > 2 else 0
            name = item[3] if len(item) > 3 else ""
            if time < now:
                raise SimulationError(
                    f"cannot schedule event at {time} before current time {now}")
            normalized.append((time, callback, priority, name))
        return self._queue.push_many(normalized)

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)

    def add_process(self, process: "Process") -> None:
        """Register a process and schedule its first activation."""
        self._processes.append(process)
        process.bind(self)
        self.schedule(max(self._now, process.start_time), process._activate,
                      priority=process.priority, name=process.name)

    # -- execution --------------------------------------------------------

    def stop(self) -> None:
        """Request the run loop to stop after the current event."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> float:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the final simulation time.

        When the run stops because ``max_events`` was exhausted while
        runnable events remained within the horizon, :attr:`truncated` is set
        (and mirrored into ``stats["truncated_runs"]``): the clock is then
        *behind* ``until`` and the caller must not treat the horizon as
        simulated.

        A horizon in the past (``until < now``) runs nothing and leaves the
        clock untouched — the clock never rewinds.  A non-positive
        ``max_events`` budget likewise runs nothing; it still reports
        truncation when runnable events are pending within the horizon.
        """
        self._running = True
        self._stopped = False
        self.truncated = False
        queue = self._queue
        if until is not None and until < self._now:
            self._running = False
            return self._now
        if max_events is not None and max_events <= 0:
            next_time = queue.peek_time()
            if next_time is not None and (until is None or next_time <= until):
                self.truncated = True
                self.stats["truncated_runs"] = self.stats.get("truncated_runs", 0) + 1
            elif until is not None and self._now < until:
                # Nothing runnable inside the horizon: the horizon *was*
                # simulated (same as a plain `run(until)`), advance the clock.
                self._now = until
            self._running = False
            return self._now
        heap = queue._heap
        heappop = heapq.heappop
        executed = 0
        try:
            while heap and not self._stopped:
                entry = heap[0]
                event = entry[3]
                if event.cancelled:
                    heappop(heap)
                    continue
                event_time = entry[0]
                if until is not None and event_time > until:
                    self._now = until
                    break
                heappop(heap)
                queue._live -= 1
                self._now = event_time
                event.callback(self)
                executed += 1
                if max_events is not None and executed >= max_events:
                    next_time = queue.peek_time()
                    if next_time is not None and (until is None or next_time <= until):
                        self.truncated = True
                        self.stats["truncated_runs"] = \
                            self.stats.get("truncated_runs", 0) + 1
                    break
        finally:
            self.stats["events_executed"] += executed
            self._running = False
        if until is not None and not queue and self._now < until and not self._stopped:
            # advance the clock even if nothing else happens
            self._now = until
        return self._now


class Process:
    """Base class for periodically activated simulation processes.

    Subclasses implement :meth:`step`, which is called at every activation.
    If ``period`` is ``None``, the process runs exactly once; otherwise it is
    re-activated every ``period`` time units until :meth:`deactivate` is
    called or the simulation ends.
    """

    def __init__(self, name: str, period: Optional[float] = None,
                 start_time: float = 0.0, priority: int = 0) -> None:
        if period is not None and period <= 0:
            raise SimulationError(f"process period must be positive, got {period}")
        self.name = name
        self.period = period
        self.start_time = start_time
        self.priority = priority
        self.activations = 0
        self.active = True
        self._sim: Optional[Simulator] = None

    def bind(self, sim: Simulator) -> None:
        self._sim = sim

    @property
    def sim(self) -> Simulator:
        if self._sim is None:
            raise SimulationError(f"process {self.name!r} is not bound to a simulator")
        return self._sim

    def deactivate(self) -> None:
        """Stop future activations of this process."""
        self.active = False

    def _activate(self, sim: Simulator) -> None:
        if not self.active:
            return
        self.activations += 1
        self.step(sim)
        if self.period is not None and self.active:
            sim.schedule_in(self.period, self._activate,
                            priority=self.priority, name=self.name)

    def step(self, sim: Simulator) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
