"""Differential-oracle tests for the vectorized batch busy-window kernel.

The contract of :class:`~repro.analysis.batch.BatchResponseTimeAnalysis` is
*byte-identity*: for any grid of task sets, the lockstep kernel — numpy or
pure-Python path — must produce field-for-field the results of a cold
:class:`~repro.analysis.cpa.ResponseTimeAnalysis` per lane, and the
``batch_kernel``-enabled incremental engine must stay verdict-identical to
its scalar self.  The suites below drive randomized UUniFast grids
(hypothesis plus seeded sweeps), adversarial fixpoint edge cases, and the
engine/scenario wiring through the shared ``tests/harness.py`` oracle.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from harness import assert_equivalent, cold_results, make_taskset, rebuild
from repro.analysis.batch import (BatchResponseTimeAnalysis,
                                  congruence_signature, numpy_available)
from repro.analysis.cpa import EventModel, ResponseTimeAnalysis
from repro.analysis.incremental import IncrementalResponseTimeAnalysis
from repro.platform.tasks import Task, TaskSet
from repro.sim.random import SeededRNG

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KERNEL_PATHS = ([False, True] if numpy_available() else [False])


def kernel(use_numpy: bool) -> BatchResponseTimeAnalysis:
    return BatchResponseTimeAnalysis(use_numpy=use_numpy)


def assert_byte_identical(batched, cold, context: str) -> None:
    """Full-field equality: wcrt, schedulable, converged, busy_window,
    iterations — plus the completions trace, which ``__eq__`` excludes."""
    assert set(batched) == set(cold), context
    for name in cold:
        a, b = batched[name], cold[name]
        assert a == b, (f"{context}: {name} {a.wcrt, a.schedulable, a.converged, a.busy_window, a.iterations} "
                        f"!= {b.wcrt, b.schedulable, b.converged, b.busy_window, b.iterations}")
        assert a.completions == b.completions, f"{context}: {name} completions"


def perturbed_grid(seed: int, n: int, utilization: float, variants: int,
                   low: float = 0.7, high: float = 1.35):
    """An acceptance-sweep grid: one base set plus WCET-perturbed variants
    (same congruence group by construction)."""
    base = make_taskset(seed, n, utilization).tasks()
    rng = SeededRNG(seed + 10_000)
    grid = [rebuild(base)]
    for _ in range(variants - 1):
        grid.append(rebuild([t.scaled(rng.uniform(low, high)) for t in base]))
    return grid


class TestCongruenceSignature:
    def test_dense_rank_of_priorities(self):
        taskset = TaskSet([Task("a", period=1.0, wcet=0.1, priority=7),
                           Task("b", period=1.0, wcet=0.1, priority=3),
                           Task("c", period=1.0, wcet=0.1, priority=7),
                           Task("d", period=1.0, wcet=0.1, priority=9)])
        assert congruence_signature(taskset) == (1, 0, 1, 2)

    def test_parameters_do_not_matter(self):
        a = make_taskset(0, 6, 0.6)
        b = rebuild([t.scaled(1.4) for t in a.tasks()])
        assert congruence_signature(a) == congruence_signature(b)

    def test_structure_does_matter(self):
        a = TaskSet([Task("a", period=1.0, wcet=0.1, priority=0),
                     Task("b", period=1.0, wcet=0.1, priority=1)])
        b = TaskSet([Task("a", period=1.0, wcet=0.1, priority=1),
                     Task("b", period=1.0, wcet=0.1, priority=0)])
        assert congruence_signature(a) != congruence_signature(b)

    def test_empty_taskset(self):
        assert congruence_signature(TaskSet()) == ()


class TestBatchEqualsColdOracle:
    """The kernel is byte-identical to per-lane from-scratch analysis."""

    @pytest.mark.parametrize("use_numpy", KERNEL_PATHS)
    @pytest.mark.parametrize("utilization", [0.5, 0.75, 0.9, 1.05])
    def test_perturbed_grids(self, use_numpy, utilization):
        for seed in (0, 1, 2):
            grid = perturbed_grid(seed, 8, utilization, variants=12)
            solved = kernel(use_numpy).analyse_many(grid)
            for lane, taskset in enumerate(grid):
                assert_byte_identical(solved[lane], cold_results(taskset),
                                      f"seed={seed} u={utilization} lane={lane}")

    @pytest.mark.parametrize("use_numpy", KERNEL_PATHS)
    def test_mixed_congruence_grid_preserves_input_order(self, use_numpy):
        grid = []
        for seed in range(3):
            grid.extend(perturbed_grid(seed, 5 + seed, 0.7, variants=4))
        rng = SeededRNG(99)
        rng.shuffle(grid)
        solved = kernel(use_numpy).analyse_many(grid)
        assert len(solved) == len(grid)
        for lane, taskset in enumerate(grid):
            assert set(solved[lane]) == {t.name for t in taskset}
            assert_byte_identical(solved[lane], cold_results(taskset),
                                  f"mixed lane={lane}")

    @pytest.mark.parametrize("use_numpy", KERNEL_PATHS)
    def test_divergent_lanes(self, use_numpy):
        """Over-utilized lanes diverge identically (verdict, busy window,
        iteration count) without disturbing schedulable neighbours."""
        grid = (perturbed_grid(4, 6, 1.3, variants=4)
                + perturbed_grid(5, 6, 0.5, variants=4))
        solved = kernel(use_numpy).analyse_many(grid)
        diverged = 0
        for lane, taskset in enumerate(grid):
            cold = cold_results(taskset)
            assert_byte_identical(solved[lane], cold, f"divergent lane={lane}")
            diverged += sum(1 for r in cold.values() if not r.converged)
        assert diverged > 0, "the grid must actually exercise divergence"

    @pytest.mark.parametrize("use_numpy", KERNEL_PATHS)
    def test_speed_factors_and_event_models(self, use_numpy):
        grid = perturbed_grid(7, 7, 0.65, variants=6)
        for speed in (1.0, 0.8, 0.4):
            solved = kernel(use_numpy).analyse_many(grid, speed_factor=speed)
            for lane, taskset in enumerate(grid):
                assert_byte_identical(
                    solved[lane], cold_results(taskset, speed_factor=speed),
                    f"speed={speed} lane={lane}")
        models = {"t0": EventModel(period=grid[0].get("t0").period, jitter=0.002),
                  "t3": EventModel(period=grid[0].get("t3").period * 0.9,
                                   jitter=0.001)}
        solved = kernel(use_numpy).analyse_many(grid, event_models=models)
        for lane, taskset in enumerate(grid):
            assert_byte_identical(
                solved[lane], cold_results(taskset, event_models=models),
                f"event models lane={lane}")

    @pytest.mark.parametrize("use_numpy", KERNEL_PATHS)
    def test_empty_and_degenerate_batches(self, use_numpy):
        k = kernel(use_numpy)
        assert k.analyse_many([]) == []
        assert k.analyse_many([TaskSet()]) == [{}]
        single = make_taskset(3, 5, 0.6)
        assert_byte_identical(k.analyse_many([single])[0], cold_results(single),
                              "single lane")

    def test_analyse_group_rejects_mixed_signatures(self):
        a = make_taskset(0, 4, 0.5)
        b = make_taskset(0, 5, 0.5)
        with pytest.raises(ValueError):
            BatchResponseTimeAnalysis().analyse_group([a, b])

    def test_rejects_nonpositive_speed_factor(self):
        with pytest.raises(ValueError):
            BatchResponseTimeAnalysis().analyse_many([make_taskset(0, 4, 0.5)],
                                                     speed_factor=0.0)

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=2, max_value=10),
           utilization=st.floats(min_value=0.3, max_value=1.2),
           variants=st.integers(min_value=2, max_value=8))
    def test_randomized_grids_hypothesis(self, seed, n, utilization, variants):
        """Property: any UUniFast grid — batch == incremental == cold."""
        grid = perturbed_grid(seed, n, utilization, variants)
        batched = BatchResponseTimeAnalysis().analyse_many(grid)
        engine = IncrementalResponseTimeAnalysis(batch_kernel=True)
        engine_results = engine.analyze_many(grid)
        for lane, taskset in enumerate(grid):
            cold = cold_results(taskset)
            assert_byte_identical(batched[lane], cold, f"batch lane={lane}")
            assert_equivalent(engine_results[lane], cold, f"engine lane={lane}")


@pytest.mark.skipif(not numpy_available(), reason="numpy unavailable")
class TestNumpyPurePathParity:
    """The two kernel paths are interchangeable down to the last field."""

    def test_paths_agree_on_mixed_grid(self):
        grid = (perturbed_grid(11, 9, 0.8, variants=10)
                + perturbed_grid(12, 6, 1.25, variants=5)
                + [TaskSet(), make_taskset(13, 3, 0.4)])
        vec = kernel(True).analyse_many(grid)
        pure = kernel(False).analyse_many(grid)
        for lane in range(len(grid)):
            assert set(vec[lane]) == set(pure[lane])
            for name in vec[lane]:
                assert vec[lane][name] == pure[lane][name], f"lane={lane} {name}"
                assert vec[lane][name].completions == pure[lane][name].completions

    def test_paths_agree_under_iteration_caps(self):
        grid = perturbed_grid(17, 8, 0.95, variants=8)
        for cap in (1, 2, 3, 5):
            vec = BatchResponseTimeAnalysis(max_iterations=cap,
                                            use_numpy=True).analyse_many(grid)
            pure = BatchResponseTimeAnalysis(max_iterations=cap,
                                             use_numpy=False).analyse_many(grid)
            for lane in range(len(grid)):
                for name in vec[lane]:
                    assert vec[lane][name] == pure[lane][name], f"cap={cap}"

    def test_tail_handoff_and_blocking_do_not_change_results(self):
        """Degenerate tuning knobs force the scalar tail continuation and
        per-block solving on every lane; results must not move."""
        grid = perturbed_grid(19, 8, 0.85, variants=12)
        reference = kernel(True).analyse_many(grid)
        tweaked = kernel(True)
        tweaked.numpy_tail_lanes = 10_000      # hand off immediately
        tweaked.numpy_block_columns = 8        # one-lane blocks
        other = tweaked.analyse_many(grid)
        for lane in range(len(grid)):
            for name in reference[lane]:
                assert reference[lane][name] == other[lane][name]
                assert (reference[lane][name].completions
                        == other[lane][name].completions)

    def test_use_numpy_flag_and_vectorized_property(self):
        assert kernel(True).vectorized
        assert not kernel(False).vectorized


class TestForcePureEnvironment:
    def test_force_pure_batch_disables_numpy_path(self):
        """REPRO_FORCE_PURE_BATCH=1 must route through the pure path and
        still match the cold oracle (the CI matrix leg relies on this)."""
        script = (
            "from harness import cold_results, make_taskset\n"
            "from repro.analysis.batch import BatchResponseTimeAnalysis, numpy_available\n"
            "assert not numpy_available()\n"
            "kernel = BatchResponseTimeAnalysis()\n"
            "assert not kernel.vectorized\n"
            "grid = [make_taskset(s, 6, 0.8) for s in range(3)]\n"
            "for lane, solved in enumerate(kernel.analyse_many(grid)):\n"
            "    cold = cold_results(grid[lane])\n"
            "    assert all(solved[n] == cold[n] for n in cold)\n"
            "print('pure-ok')\n")
        env = dict(os.environ, REPRO_FORCE_PURE_BATCH="1",
                   PYTHONPATH=os.pathsep.join(
                       [os.path.join(REPO_ROOT, "src"),
                        os.path.join(REPO_ROOT, "tests")]))
        completed = subprocess.run([sys.executable, "-c", script], env=env,
                                   capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0, completed.stderr
        assert "pure-ok" in completed.stdout

    def test_use_numpy_true_raises_when_forced_pure(self):
        script = (
            "from repro.analysis.batch import BatchResponseTimeAnalysis\n"
            "try:\n"
            "    BatchResponseTimeAnalysis(use_numpy=True)\n"
            "except RuntimeError:\n"
            "    print('raised')\n")
        env = dict(os.environ, REPRO_FORCE_PURE_BATCH="1",
                   PYTHONPATH=os.path.join(REPO_ROOT, "src"))
        completed = subprocess.run([sys.executable, "-c", script], env=env,
                                   capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0, completed.stderr
        assert "raised" in completed.stdout


class TestFixpointEdgeCases:
    """Adversarial busy-window shapes, asserted identically against all
    three engines (cold, incremental, batch) via the shared harness."""

    def _check_all_engines(self, tasksets, context, max_iterations=10_000,
                           fresh_incremental=False):
        """``fresh_incremental`` gives each lane its own engine: a truncated
        (cap-starved) fixpoint depends on its starting iterate, so a warm
        history legitimately lands elsewhere than a cold run — only the
        cold-history engine is bound to byte-identical truncation."""
        tasksets = list(tasksets)
        batched = BatchResponseTimeAnalysis(
            max_iterations=max_iterations).analyse_many(tasksets)
        incremental = IncrementalResponseTimeAnalysis(
            max_iterations=max_iterations)
        for lane, taskset in enumerate(tasksets):
            cold = ResponseTimeAnalysis(
                taskset, max_iterations=max_iterations).analyse()
            assert_byte_identical(batched[lane], cold, f"{context} lane={lane}")
            if fresh_incremental:
                incremental = IncrementalResponseTimeAnalysis(
                    max_iterations=max_iterations)
            assert_equivalent(incremental.analyse(taskset), cold,
                              f"{context} incremental lane={lane}")
        return batched

    def test_vanishing_wcet_tasks(self):
        """WCETs at the validation floor (1e-12) neither divide away nor
        perturb neighbours."""
        grids = []
        for seed in range(3):
            tasks = make_taskset(seed, 6, 0.6).tasks()
            tasks[0] = Task(tasks[0].name, period=tasks[0].period, wcet=1e-12,
                            priority=tasks[0].priority)
            tasks[3] = Task(tasks[3].name, period=tasks[3].period, wcet=1e-12,
                            priority=tasks[3].priority)
            grids.append(rebuild(tasks))
        self._check_all_engines(grids, "vanishing wcet")

    def test_equal_priority_ties_do_not_interfere(self):
        """Tied priorities: strictly-higher only — the tie partner must not
        appear in the interference sum (matches the scalar engine)."""
        grid = []
        for seed in range(3):
            rng = SeededRNG(seed)
            periods = rng.log_uniform_periods(6, 0.01, 0.2)
            grid.append(TaskSet([
                Task(f"t{i}", period=p, wcet=p * 0.12, priority=i // 2)
                for i, p in enumerate(periods)]))
        solved = self._check_all_engines(grid, "priority ties")
        # Sanity: with 3 tied pairs the signature has only 3 distinct ranks.
        assert congruence_signature(grid[0]) == (0, 0, 1, 1, 2, 2)
        assert all(solved)

    def test_busy_window_exactly_touching_deadline(self):
        """WCRT == deadline is schedulable (<= deadline + eps); one epsilon
        of extra WCET flips it.  Integer-ratio periods make the fixpoint
        land exactly on the deadline."""
        exact = TaskSet([Task("hi", period=4.0, wcet=1.0, priority=0),
                         Task("lo", period=16.0, wcet=3.0, deadline=4.0,
                              priority=1)])
        over = TaskSet([Task("hi", period=4.0, wcet=1.0, priority=0),
                        Task("lo", period=16.0, wcet=3.0 + 1e-6, deadline=4.0,
                             priority=1)])
        batched = self._check_all_engines([exact, over], "deadline touch")
        assert batched[0]["lo"].wcrt == 4.0
        assert batched[0]["lo"].schedulable
        assert not batched[1]["lo"].schedulable

    @pytest.mark.parametrize("cap", [1, 2, 3, 5])
    def test_iteration_cap_divergence(self, cap):
        """A starved iteration budget truncates the fixpoint identically:
        same final iterate, same iteration count, same (non-)verdict."""
        grids = [make_taskset(seed, 7, u) for seed in range(2)
                 for u in (0.9, 1.2)]
        self._check_all_engines(grids, f"cap={cap}", max_iterations=cap,
                                fresh_incremental=True)


class TestEngineWiring:
    """batch_kernel routing inside IncrementalResponseTimeAnalysis."""

    def test_cold_batches_route_through_kernel(self):
        grid = perturbed_grid(21, 7, 0.75, variants=8)
        engine = IncrementalResponseTimeAnalysis(batch_kernel=True)
        results = engine.analyze_many(grid)
        assert engine.batch_groups == 1
        assert engine.tasks_batched == sum(len(r) for r in results)
        for lane, taskset in enumerate(grid):
            assert_equivalent(results[lane], cold_results(taskset),
                              f"wired lane={lane}")

    def test_default_engine_never_batches(self):
        engine = IncrementalResponseTimeAnalysis()
        engine.analyze_many(perturbed_grid(22, 6, 0.7, variants=6))
        assert engine.batch_groups == 0
        assert engine.tasks_batched == 0

    def test_sub_minimum_groups_stay_scalar(self):
        """A grid of singleton congruence groups gains nothing from lockstep;
        the engine must fall back to per-set analysis."""
        grid = [make_taskset(seed, 4 + seed, 0.6) for seed in range(4)]
        engine = IncrementalResponseTimeAnalysis(batch_kernel=True)
        results = engine.analyze_many(grid)
        assert engine.batch_groups == 0
        for lane, taskset in enumerate(grid):
            assert_equivalent(results[lane], cold_results(taskset),
                              f"scalar fallback lane={lane}")

    def test_warm_sets_use_incremental_path(self):
        """Once history exists, repeated sets warm-start instead of
        re-entering the kernel — and verdicts still match cold."""
        grid = perturbed_grid(23, 7, 0.7, variants=6)
        engine = IncrementalResponseTimeAnalysis(batch_kernel=True)
        engine.analyze_many(grid)
        groups_after_cold = engine.batch_groups
        again = engine.analyze_many([rebuild(ts.tasks()) for ts in grid])
        assert engine.batch_groups == groups_after_cold
        assert engine.tasks_warm_started + engine.tasks_reused > 0
        for lane, taskset in enumerate(grid):
            assert_equivalent(again[lane], cold_results(taskset),
                              f"warm lane={lane}")

    def test_batched_results_seed_warm_history(self):
        """Kernel lanes are remembered: a follow-up perturbation of a batched
        set must hit the delta machinery, not a cold full analysis."""
        grid = perturbed_grid(24, 6, 0.7, variants=5)
        engine = IncrementalResponseTimeAnalysis(batch_kernel=True)
        engine.analyze_many(grid)
        assert len(engine._history) > 0
        victim = grid[-1].tasks()
        mutated = rebuild([t.scaled(1.05) if i == 2 else t
                           for i, t in enumerate(victim)])
        results = engine.analyse(mutated)
        assert engine.delta_analyses > 0
        assert_equivalent(results, cold_results(mutated), "post-batch delta")

    def test_batch_and_scalar_engines_agree(self):
        grid = (perturbed_grid(25, 8, 0.85, variants=7)
                + perturbed_grid(26, 5, 1.1, variants=4))
        scalar = IncrementalResponseTimeAnalysis().analyze_many(grid)
        batched = IncrementalResponseTimeAnalysis(
            batch_kernel=True).analyze_many(grid)
        for lane in range(len(grid)):
            assert_equivalent(batched[lane], scalar[lane], f"lane={lane}")

    def test_clear_resets_batch_counters(self):
        engine = IncrementalResponseTimeAnalysis(batch_kernel=True)
        engine.analyze_many(perturbed_grid(27, 6, 0.7, variants=4))
        assert engine.tasks_batched > 0
        engine.clear()
        assert engine.batch_groups == 0
        assert engine.tasks_batched == 0
        assert engine.tasks_analysed == 0


class TestScenarioParity:
    """The batch_kernel knob is verdict-invisible end to end."""

    def test_fleet_campaign_records_identical(self):
        from repro.scenarios.fleet_campaign import run_fleet_campaign_scenario
        base = run_fleet_campaign_scenario(fleet_size=14, seed=2,
                                           num_variants=4, extra_components=6)
        batched = run_fleet_campaign_scenario(fleet_size=14, seed=2,
                                              num_variants=4,
                                              extra_components=6,
                                              batch_kernel=True)
        assert batched == base

    def test_fleet_campaign_guard(self):
        from repro.scenarios.fleet_campaign import run_fleet_campaign_scenario
        with pytest.raises(ValueError):
            run_fleet_campaign_scenario(fleet_size=6, batch_admission=False,
                                        batch_kernel=True)

    def test_infield_update_records_identical(self):
        from repro.scenarios.infield_update import run_infield_update_scenario
        base = run_infield_update_scenario(num_requests=10, seed=4,
                                           deploy=False)
        batched = run_infield_update_scenario(num_requests=10, seed=4,
                                              deploy=False, batch_kernel=True)
        assert batched == base

    def test_infield_update_guard(self):
        from repro.scenarios.infield_update import run_infield_update_scenario
        with pytest.raises(ValueError):
            run_infield_update_scenario(num_requests=4,
                                        use_analysis_cache=False,
                                        batch_kernel=True)
