"""Structured event tracing for fleet update campaigns.

:class:`CampaignTracer` is a structured event sink: every call to
:meth:`~CampaignTracer.emit` appends one flat JSON-serializable event with a
process-wide monotonic sequence number, an optional monotonic wall-clock
offset, and whatever wave/shard/vehicle context the call site carries.  The
campaign engine (:class:`~repro.fleet.campaign.Campaign`), the shard
executor (:func:`~repro.fleet.shard.execute_shard`), the adversity seams and
the analysis cache all report into one tracer, so a single JSONL file tells
the whole story of a rollout — which wave staged whom, which deliveries
dropped, which admissions replayed a precedent and which ran a full
integration, where the cache hit and where the segment store carried an
analysis across processes.

Design constraints, in order:

* **Zero overhead when disabled.**  Tracing is off by default
  (``Campaign(tracer=None)``); every instrumentation site is a plain
  ``if tracer is not None`` guard around an attribute access, so an
  untraced campaign executes exactly the pre-tracing code path.
* **Read-only.**  The tracer observes; it never feeds back into any
  decision.  Traced and untraced campaigns produce field-for-field
  identical :class:`~repro.fleet.campaign.CampaignResult` records at any
  worker count (pinned by ``tests/test_observability.py``).
* **Deterministic mode.**  ``deterministic=True`` suppresses every
  wall-clock-derived field (:data:`WALL_CLOCK_FIELDS`: timestamps, elapsed
  times, process ids), so a trace becomes a pure function of the campaign
  parameters — two ``workers=1`` runs of the same campaign write
  byte-identical trace files.  (Pooled traces remain complete but their
  *shard* events arrive in completion order, which the pool scheduler
  owns; only the campaign result is order-independent.)
* **Cross-process events without cross-process writers.**  Shard workers
  do not write trace files.  :func:`~repro.fleet.shard.execute_shard`
  collects its per-item events into the returned
  :class:`~repro.fleet.shard.ShardResult` and the campaign parent folds
  them into the tracer post-join (:meth:`~CampaignTracer.ingest`), so the
  JSONL file always has exactly one writer and needs no locking.

Events are buffered in memory and written on :meth:`flush`/:meth:`close`
(the campaign flushes once per run); an enabled tracer therefore costs one
dict per event plus a single file write, which the E10 overhead benchmark
pins below 5% of campaign wall time.
"""

from __future__ import annotations

import json
import os
import time
from typing import Any, Dict, Iterable, List, Optional

#: Event fields derived from wall clocks or process identity — everything a
#: deterministic trace must not contain.  ``emit`` and ``ingest`` drop these
#: in deterministic mode; the metrics bridge treats them as optional.
WALL_CLOCK_FIELDS = frozenset({"t_s", "pid", "elapsed_s", "worker_pid"})


class TraceError(ValueError):
    """Raised for invalid tracer configuration or unreadable trace files."""


class CampaignTracer:
    """A buffered, single-writer structured event sink.

    Parameters
    ----------
    path:
        Optional JSONL destination.  Events are buffered in memory and
        written by :meth:`flush` (and :meth:`close`, which the campaign
        calls at run end); ``None`` keeps the trace purely in memory.
    deterministic:
        Suppress the wall-clock fields (:data:`WALL_CLOCK_FIELDS`) so the
        trace is a pure function of the traced computation.
    keep_events:
        Retain emitted events on :attr:`events` after a flush.  Defaults to
        ``True`` so in-process consumers (the metrics bridge, tests) can
        read the trace without re-parsing the file; long-running services
        streaming to disk can turn it off to bound memory.
    """

    def __init__(self, path: Optional[str] = None, deterministic: bool = False,
                 keep_events: bool = True) -> None:
        self.path = path
        self.deterministic = deterministic
        self.keep_events = keep_events
        #: Every event emitted so far (when ``keep_events``), oldest first.
        self.events: List[Dict[str, Any]] = []
        self._pending: List[Dict[str, Any]] = []
        self._seq = 0
        self._origin = time.perf_counter()
        self._started_stream = False

    # -- emission ----------------------------------------------------------

    def emit(self, event: str, wave: Optional[int] = None,
             shard: Optional[int] = None, vehicle: Optional[str] = None,
             **fields: Any) -> Dict[str, Any]:
        """Record one event and return the stored record.

        ``event`` names the span (dotted taxonomy, e.g. ``"wave.end"`` —
        see ``docs/OBSERVABILITY.md``); ``wave``/``shard``/``vehicle`` are
        the standard context keys and further keyword fields travel
        verbatim.  Outside deterministic mode every event also carries
        ``t_s`` (monotonic seconds since the tracer was created) and
        ``pid``.
        """
        record: Dict[str, Any] = {"seq": self._seq, "event": event}
        self._seq += 1
        if not self.deterministic:
            record["t_s"] = time.perf_counter() - self._origin
            record["pid"] = os.getpid()
        if wave is not None:
            record["wave"] = wave
        if shard is not None:
            record["shard"] = shard
        if vehicle is not None:
            record["vehicle"] = vehicle
        for key, value in fields.items():
            if self.deterministic and key in WALL_CLOCK_FIELDS:
                continue
            record[key] = value
        self._store(record)
        return record

    def ingest(self, events: Iterable[Dict[str, Any]],
               wave: Optional[int] = None) -> int:
        """Fold worker-collected event dicts into this trace.

        Shard workers return their per-item events inside the
        :class:`~repro.fleet.shard.ShardResult`; the parent ingests them
        post-join.  Each ingested event gets a fresh parent-side sequence
        number (and timestamp, outside deterministic mode) — the worker's
        own field values are preserved except for wall-clock fields in
        deterministic mode.  Returns the number of events ingested.
        """
        count = 0
        for source in events:
            fields = {key: value for key, value in source.items()
                      if key not in ("event", "seq")}
            if wave is not None:
                fields.setdefault("wave", wave)
            self.emit(str(source.get("event", "event")), **fields)
            count += 1
        return count

    def _store(self, record: Dict[str, Any]) -> None:
        if self.keep_events:
            self.events.append(record)
        if self.path is not None:
            self._pending.append(record)

    # -- persistence -------------------------------------------------------

    def flush(self) -> int:
        """Append all buffered events to :attr:`path`; returns the count.

        The first flush truncates a pre-existing file (one trace per tracer
        lifetime); later flushes append, so periodic flushing streams.  A
        pathless tracer flushes to nowhere and returns 0.
        """
        if self.path is None or not self._pending:
            return 0
        mode = "a" if self._started_stream else "w"
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        with open(self.path, mode, encoding="utf-8") as handle:
            for record in self._pending:
                handle.write(json.dumps(record, sort_keys=True))
                handle.write("\n")
        self._started_stream = True
        flushed = len(self._pending)
        self._pending = []
        return flushed

    def close(self) -> None:
        """Flush any buffered events (idempotent)."""
        self.flush()

    def __enter__(self) -> "CampaignTracer":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        return self._seq

    def select(self, event: str) -> List[Dict[str, Any]]:
        """Retained events with exactly this event name (emission order)."""
        return [record for record in self.events if record["event"] == event]


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace written by :class:`CampaignTracer`.

    Raises :class:`TraceError` on unparseable lines or non-object records —
    a trace is written by exactly one process in one format, so damage
    means the file is not a trace (unlike the accumulate-forever benchmark
    records directory, where foreign files are expected and skipped).
    """
    events: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(
                        f"{path}:{number}: unparseable trace line ({exc})"
                    ) from exc
                if not isinstance(record, dict) or "event" not in record:
                    raise TraceError(
                        f"{path}:{number}: not a trace event record")
                events.append(record)
    except OSError as exc:
        raise TraceError(f"cannot read trace {path!r}: {exc}") from exc
    return events


__all__ = ["CampaignTracer", "TraceError", "WALL_CLOCK_FIELDS", "load_trace"]
